//! Crawl-store throughput: appending a 1k-visit crawl across four
//! segments (fsync'd batches + manifest checkpoints) and streaming it
//! back through the rank-ordered k-way merge — once per segment format.
//! The JSONL-vs-binary scan pair is the microbenchmark behind the
//! repo-root `BENCH_crawlstore.json` replay-speedup number.

use cg_browser::{crawl_range, VisitConfig};
use cg_crawlstore::{CrawlReader, CrawlWriter, Fingerprint, SegmentFormat, SegmentWriter};
use cg_instrument::VisitLog;
use cg_webgen::{GenConfig, WebGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const STORE_VISITS: usize = 1_000;
const SEGMENTS: usize = 4;

/// 1k distinct visit logs with realistic event payloads: a real 250-site
/// crawl tiled four times under fresh ranks.
fn visit_logs() -> Vec<VisitLog> {
    let gen = WebGenerator::new(GenConfig::small(250), 0xBE_AC);
    let (outcomes, _) = crawl_range(&gen, &VisitConfig::regular(), 1, 250, 4);
    let base: Vec<VisitLog> = outcomes.into_iter().map(|o| o.log).collect();
    let mut logs = Vec::with_capacity(STORE_VISITS);
    for tile in 0..STORE_VISITS.div_ceil(base.len()) {
        for log in &base {
            if logs.len() == STORE_VISITS {
                break;
            }
            let mut log = log.clone();
            log.rank += tile * base.len();
            logs.push(log);
        }
    }
    logs
}

fn fingerprint(format: SegmentFormat) -> Fingerprint {
    Fingerprint::new(
        0xBE_AC,
        1,
        STORE_VISITS,
        &VisitConfig::regular(),
        &GenConfig::small(250),
    )
    .with_format(format)
}

fn fill(dir: &std::path::Path, logs: &[VisitLog], format: SegmentFormat) {
    let store = CrawlWriter::open(dir, fingerprint(format)).expect("open store");
    let mut segs: Vec<SegmentWriter> = (0..SEGMENTS)
        .map(|_| store.segment().expect("segment"))
        .collect();
    for (i, log) in logs.iter().enumerate() {
        segs[i % SEGMENTS].record(log).expect("record");
    }
    for seg in segs {
        seg.finish().expect("finish");
    }
}

fn bench_store(c: &mut Criterion) {
    let logs = visit_logs();
    let root = std::env::temp_dir().join(format!("cg-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mut group = c.benchmark_group("store_roundtrip");
    group.sample_size(10);

    for format in [SegmentFormat::Jsonl, SegmentFormat::Binary] {
        let append_dir = root.join(format!("append-{format}"));
        group.bench_function(format!("append_1k_{format}"), |b| {
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&append_dir);
                fill(&append_dir, &logs, format);
            })
        });

        let scan_dir = root.join(format!("scan-{format}"));
        fill(&scan_dir, &logs, format);
        group.bench_function(format!("merge_scan_1k_{format}"), |b| {
            b.iter(|| {
                let reader = CrawlReader::open(&scan_dir).expect("open reader");
                let mut records = 0usize;
                let mut last_rank = 0usize;
                for log in reader {
                    let log = log.expect("log");
                    assert!(log.rank > last_rank, "merge must be rank-ordered");
                    last_rank = log.rank;
                    records += 1;
                }
                black_box(records)
            })
        });
    }
    group.finish();

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
