//! The compiled decision path vs the string oracle — the per-operation
//! policy check is the hottest code in a guarded crawl, and this bench
//! holds the ISSUE's bar: the id-compiled path must beat the retained
//! string-path oracle by ≥ 5× on a mixed workload.
//!
//! Also measures the per-visit costs that bound crawl throughput when
//! the entity map is large: engine compilation (once per deployment)
//! and session open (once per visit).

use cg_entity::EntityMap;
use cg_url::DomainId;
use cookieguard_core::{Caller, GuardConfig, GuardEngine};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

/// A mixed decision workload: site-owner, creator hit, whitelist hit,
/// same-entity hit, cross-domain block, and inline — roughly the blend
/// a guarded page produces.
const WORKLOAD: &[(Option<&str>, Option<&str>)] = &[
    (Some("site.com"), Some("tracker.com")),    // site owner
    (Some("tracker.com"), Some("tracker.com")), // creator
    (Some("partner.io"), Some("anyone.net")),   // whitelisted
    (Some("fbcdn.net"), Some("facebook.net")),  // same entity
    (Some("criteo.com"), Some("facebook.net")), // blocked
    (Some("stranger.net"), None),               // unattributed → blocked
    (None, Some("tracker.com")),                // inline → strict block
    (Some("ads.example.net"), Some("cdn.io")),  // blocked
];

fn engine() -> Arc<GuardEngine> {
    GuardEngine::shared(
        GuardConfig::strict()
            .with_whitelisted("partner.io")
            .with_entity_grouping(cg_entity::builtin_entity_map()),
    )
}

fn big_entity_map(domains: usize) -> EntityMap {
    let mut map = EntityMap::new();
    for i in 0..domains {
        map.insert(&format!("domain-{i}.example"), &format!("Org-{}", i % 97));
    }
    map
}

fn bench_decide(c: &mut Criterion) {
    let engine = engine();
    let site = cg_url::intern("site.com");
    // Ids resolved once, as attribution does in the real pipeline.
    let compiled_workload: Vec<(Caller, Option<DomainId>)> = WORKLOAD
        .iter()
        .map(|(caller, creator)| {
            (
                match caller {
                    Some(d) => Caller::external(d),
                    None => Caller::inline(),
                },
                creator.map(cg_url::intern),
            )
        })
        .collect();

    let mut group = c.benchmark_group("decide_mixed");
    group.bench_function("compiled_ids", |b| {
        let compiled = engine.compiled();
        b.iter(|| {
            let mut allowed = 0usize;
            for (caller, creator) in &compiled_workload {
                if compiled.check(site, caller, *creator).is_allow() {
                    allowed += 1;
                }
            }
            black_box(allowed)
        });
    });
    group.bench_function("string_oracle", |b| {
        b.iter(|| {
            let mut allowed = 0usize;
            for (caller, creator) in WORKLOAD {
                if engine
                    .check_str_oracle("site.com", *caller, *creator)
                    .is_allow()
                {
                    allowed += 1;
                }
            }
            black_box(allowed)
        });
    });
    group.finish();
}

fn bench_session_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_session_open");
    // Session open must stay O(1) in entity-map size: the map compiles
    // into the shared engine, not into the per-visit session.
    for &n in &[0usize, 1_000, 20_000] {
        let config = if n == 0 {
            GuardConfig::strict()
        } else {
            GuardConfig::strict().with_entity_grouping(big_entity_map(n))
        };
        let engine = GuardEngine::shared(config);
        group.bench_function(format!("entity_map_{n}"), |b| {
            b.iter(|| black_box(engine.session("bench-visit-site.com")));
        });
    }
    group.finish();
}

fn bench_engine_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide_engine_compile");
    group.sample_size(10);
    let config = GuardConfig::strict().with_entity_grouping(big_entity_map(20_000));
    group.bench_function("entity_map_20000", |b| {
        b.iter(|| black_box(GuardEngine::new(config.clone())));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decide,
    bench_session_open,
    bench_engine_compile
);
criterion_main!(benches);
