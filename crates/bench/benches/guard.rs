//! CookieGuard mechanism benchmarks: the intrinsic per-operation cost of
//! the defense (the real-measurement complement to Table 4's modeled
//! page-level overhead) plus the DESIGN.md ablations — strict vs relaxed
//! inline policy, entity grouping on/off, and metadata-store size.

use cg_cookiejar::CookieJar;
use cg_url::Url;
use cookieguard_core::{Caller, CookieGuard, GuardConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn guard_with(n: usize, config: GuardConfig) -> CookieGuard {
    let mut g = CookieGuard::new(config, "site.com");
    for i in 0..n {
        let creator = format!("vendor{}.com", i % 12);
        g.authorize_write(&Caller::external(&creator), &format!("cookie_{i}"));
    }
    g
}

fn cookies(n: usize) -> Vec<cg_cookiejar::Cookie> {
    let url = Url::parse("https://www.site.com/").unwrap();
    let mut jar = CookieJar::new();
    for i in 0..n {
        jar.set_document_cookie(&format!("cookie_{i}=v{i}"), &url, i as i64)
            .unwrap();
    }
    jar.cookies_for_document(&url, 1_000)
}

fn bench_filter_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_filter_read");
    for &n in &[5usize, 20, 60, 180] {
        let jar = cookies(n);
        group.bench_with_input(BenchmarkId::new("strict", n), &n, |b, _| {
            let mut g = guard_with(n, GuardConfig::strict());
            let caller = Caller::external("vendor3.com");
            b.iter(|| black_box(g.filter_read(&caller, jar.clone())));
        });
        group.bench_with_input(BenchmarkId::new("entity_grouped", n), &n, |b, _| {
            let mut g = guard_with(
                n,
                GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
            );
            let caller = Caller::external("vendor3.com");
            b.iter(|| black_box(g.filter_read(&caller, jar.clone())));
        });
        group.bench_with_input(BenchmarkId::new("site_owner_fast_path", n), &n, |b, _| {
            let mut g = guard_with(n, GuardConfig::strict());
            let caller = Caller::external("site.com");
            b.iter(|| black_box(g.filter_read(&caller, jar.clone())));
        });
    }
    group.finish();
}

fn bench_authorize_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("guard_authorize_write");
    group.bench_function("creator", |b| {
        let mut g = guard_with(60, GuardConfig::strict());
        let caller = Caller::external("vendor3.com");
        b.iter(|| black_box(g.authorize_write(&caller, "cookie_3")));
    });
    group.bench_function("cross_domain_blocked", |b| {
        let mut g = guard_with(60, GuardConfig::strict());
        let caller = Caller::external("attacker.net");
        b.iter(|| black_box(g.authorize_write(&caller, "cookie_3")));
    });
    group.bench_function("relaxed_inline", |b| {
        let mut g = guard_with(60, GuardConfig::relaxed());
        let caller = Caller::inline();
        b.iter(|| black_box(g.authorize_write(&caller, "cookie_3")));
    });
    group.finish();
}

/// Per-visit attach cost: compiling config + entity map per site (the
/// pre-split behaviour) vs opening a session on one shared engine.
fn bench_engine_setup(c: &mut Criterion) {
    use cookieguard_core::GuardEngine;
    let entities = cg_entity::builtin_entity_map();
    let config = GuardConfig::strict().with_entity_grouping(entities);
    let mut group = c.benchmark_group("guard_setup");
    group.bench_function("rebuild_per_visit", |b| {
        b.iter(|| black_box(CookieGuard::new(config.clone(), "site.com")));
    });
    let engine = GuardEngine::shared(config.clone());
    group.bench_function("shared_engine_session", |b| {
        b.iter(|| black_box(CookieGuard::with_engine(engine.clone(), "site.com")));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_filter_read, bench_authorize_write, bench_engine_setup
}
criterion_main!(benches);
