//! Filter-list engine benchmarks: the §4.3 classification cost (each
//! third-party script occurrence is matched against the nine combined
//! lists during the measurement).

use cg_filterlist::{FilterEngine, MatchContext, ResourceType};
use cg_webgen::VendorRegistry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn engine() -> FilterEngine {
    cg_analysis::build_filter_engine(&VendorRegistry::new(
        cg_webgen::longtail::generate_longtail(7, 800),
    ))
}

fn bench_classification(c: &mut Criterion) {
    let engine = engine();
    let ctx = MatchContext {
        page_domain: "dailynews-17.com".into(),
        resource: ResourceType::Script,
        third_party: true,
    };
    let urls = [
        "https://www.googletagmanager.com/gtm.js?id=GTM-XYZ",
        "https://cdn.pixelads1.io/t/1.js",
        "https://static.benign-widgets.org/carousel.min.js",
        "https://connect.facebook.net/en_US/fbevents.js",
        "https://www.dailynews-17.com/static/app.js",
    ];
    c.bench_function("filter_classify_mixed_urls", |b| {
        b.iter(|| {
            for url in &urls {
                black_box(engine.classify(url, &ctx));
            }
        });
    });
    c.bench_function("filter_classify_no_match", |b| {
        b.iter(|| {
            black_box(engine.classify("https://static.benign-widgets.org/carousel.min.js", &ctx))
        });
    });
}

fn bench_compilation(c: &mut Criterion) {
    c.bench_function("filter_engine_compile_9_lists", |b| {
        b.iter(|| black_box(engine().len()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classification, bench_compilation
}
criterion_main!(benches);
