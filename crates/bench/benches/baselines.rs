//! Baseline-defense benchmarks: what each alternative mechanism costs
//! per operation, next to CookieGuard's (see `guard.rs`).
//!
//! * blocklist classification (the per-fetch cost of a content blocker)
//!   and whole-site pruning;
//! * CSP parsing and per-load `allows_external` checks;
//! * CookieGraph-lite feature extraction, forest training, and
//!   inference;
//! * partitioned-store jar resolution.

use cg_baselines::{
    extract_samples, label_samples, BlocklistDefense, CookieGraphLite, ForestConfig,
    PartitionedStore, PartitioningModel,
};
use cg_browser::{visit_site, VisitConfig};
use cg_http::CspPolicy;
use cg_url::Url;
use cg_webgen::{csp_for_site, CspStyle, GenConfig, WebGenerator};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn generator() -> WebGenerator {
    WebGenerator::new(GenConfig::small(400), 0xC00C1E)
}

fn bench_blocklist(c: &mut Criterion) {
    let gen = generator();
    let defense = BlocklistDefense::from_registry(gen.registry());
    let site = (1..=200)
        .map(|r| gen.blueprint(r))
        .find(|b| b.spec.crawl_ok)
        .unwrap();

    c.bench_function("baseline_blocklist/classify_url", |b| {
        b.iter(|| {
            black_box(defense.blocks(
                black_box("https://cdn.tracker-like.com/analytics.js"),
                "site.com",
            ))
        })
    });
    c.bench_function("baseline_blocklist/prune_site", |b| {
        b.iter(|| black_box(defense.prune_site(&site)))
    });
}

fn bench_csp(c: &mut Criterion) {
    let gen = generator();
    let site = (1..=200)
        .map(|r| gen.blueprint(r))
        .find(|b| b.spec.crawl_ok && !b.injectables.is_empty())
        .unwrap();
    let header = csp_for_site(&site, CspStyle::FullStack);
    let policy = CspPolicy::parse(&header);
    let doc = Url::parse(&site.landing_url()).unwrap();
    let script = Url::parse("https://cdn.some-vendor.net/tag.js").unwrap();

    c.bench_function("baseline_csp/parse_header", |b| {
        b.iter(|| black_box(CspPolicy::parse(black_box(&header))))
    });
    c.bench_function("baseline_csp/allows_external", |b| {
        b.iter(|| black_box(policy.allows_external(black_box(&script), &doc, None)))
    });
}

fn bench_classifier(c: &mut Criterion) {
    let gen = generator();
    // Build a training corpus once.
    let mut train = Vec::new();
    let mut one_log = None;
    for rank in 1..=120 {
        let site = gen.blueprint(rank);
        if !site.spec.crawl_ok {
            continue;
        }
        let log = visit_site(&site, &VisitConfig::regular(), gen.site_seed(rank)).log;
        let mut samples = extract_samples(&log);
        label_samples(&mut samples, gen.registry());
        train.extend(samples);
        one_log.get_or_insert(log);
    }
    let log = one_log.expect("at least one complete site");
    let (clf, _) = CookieGraphLite::train(&train, &ForestConfig::default(), 42);
    let sample = train.first().unwrap().clone();

    c.bench_function("baseline_cookiegraph/extract_features_per_site", |b| {
        b.iter(|| black_box(extract_samples(black_box(&log))))
    });
    let mut group = c.benchmark_group("baseline_cookiegraph/train");
    group.sample_size(10);
    for &trees in &[5usize, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(trees), &trees, |b, &trees| {
            let cfg = ForestConfig {
                n_trees: trees,
                ..ForestConfig::default()
            };
            b.iter(|| black_box(CookieGraphLite::train(black_box(&train), &cfg, 42)))
        });
    }
    group.finish();
    c.bench_function("baseline_cookiegraph/predict", |b| {
        b.iter(|| black_box(clf.classify(black_box(&sample))))
    });
}

fn bench_partitioning(c: &mut Criterion) {
    c.bench_function("baseline_partitioning/jar_resolution", |b| {
        let mut store = PartitionedStore::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let top = ["a.com", "b.com", "c.com", "d.com"][(i % 4) as usize];
            black_box(
                store
                    .embedded_jar(PartitioningModel::FirefoxTcp, top, "tracker.com", false)
                    .len(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_blocklist,
    bench_csp,
    bench_classifier,
    bench_partitioning
);
criterion_main!(benches);
