//! Parsing micro-benchmarks: the per-event costs on the measurement's
//! hot paths — every intercepted write parses a Set-Cookie string, every
//! attribution parses a URL and derives an eTLD+1, every inclusion is
//! classified against the filter lists.

use cg_filterlist::FilterRule;
use cg_http::parse_set_cookie;
use cg_url::{psl, Url};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_set_cookie_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_cookie_parse");
    let simple = "_ga=GA1.1.444332364.1746838827";
    let full = "_fbp=fb.1.1746746266109.868308499845957651; Domain=shop.example; \
                Path=/; Max-Age=7776000; Secure; SameSite=None; HttpOnly";
    let expires = "sid=abc; Expires=Wed, 08 Jun 2026 12:00:00 GMT; Path=/account";
    group.bench_function("simple_pair", |b| {
        b.iter(|| black_box(parse_set_cookie(black_box(simple))))
    });
    group.bench_function("all_attributes", |b| {
        b.iter(|| black_box(parse_set_cookie(black_box(full))))
    });
    group.bench_function("expires_date", |b| {
        b.iter(|| black_box(parse_set_cookie(black_box(expires))))
    });
    group.finish();
}

fn bench_url_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("url_parse");
    let script = "https://www.googletagmanager.com/gtm.js?id=GTM-ABCD12";
    let exfil = "https://px.ads.linkedin.com/attribution_trigger?pid=621340&time=1746838846149\
                 &url=www.optimonk.com&_ga=NDQ0MzMyMzY0LjE3NDY4Mzg4Mjc";
    group.bench_function("script_url", |b| {
        b.iter(|| black_box(Url::parse(black_box(script))))
    });
    group.bench_function("long_query", |b| {
        b.iter(|| black_box(Url::parse(black_box(exfil))))
    });
    group.finish();
}

fn bench_psl(c: &mut Criterion) {
    let mut group = c.benchmark_group("psl");
    for host in [
        "www.site.com",
        "a.b.c.shop.example.co.uk",
        "cdn.shopifycloud.com",
    ] {
        group.bench_function(host, |b| {
            b.iter(|| black_box(psl::registrable_domain(black_box(host))))
        });
    }
    group.finish();
}

fn bench_rule_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter_rule_parse");
    let host_anchor = "||googletagmanager.com^$third-party,script";
    let exception = "@@||analytics.site.com/allowed.js";
    let wildcard = "/ads/*/banner$image,domain=~news.example";
    group.bench_function("host_anchor", |b| {
        b.iter(|| black_box(FilterRule::parse(black_box(host_anchor))))
    });
    group.bench_function("exception", |b| {
        b.iter(|| black_box(FilterRule::parse(black_box(exception))))
    });
    group.bench_function("wildcard_options", |b| {
        b.iter(|| black_box(FilterRule::parse(black_box(wildcard))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_set_cookie_parse, bench_url_parse, bench_psl, bench_rule_parse
}
criterion_main!(benches);
