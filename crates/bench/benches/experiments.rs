//! Experiment-regeneration benchmarks: one benchmark per paper artifact
//! group, each running the corresponding pipeline end-to-end at reduced
//! scale. These are the "regenerate Table N / Figure N" entry points in
//! bench form; the `cg-experiments` binary runs them at paper scale.

use cg_experiments::{run_fig5, run_table3, run_table4_and_figs, CrawlContext, ExperimentOptions};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn opts(n: usize) -> ExperimentOptions {
    ExperimentOptions {
        sites: n,
        seed: 0xC00C1E,
        threads: 2,
        ..ExperimentOptions::default()
    }
}

fn bench_measurement_tables(c: &mut Criterion) {
    // Tables 1/2/5, Figures 2/8, §5.1–§5.6, §8 pilot — one crawl feeds
    // them all, so the group benches the crawl + full analysis stack.
    c.bench_function("tables_1_2_5_figs_2_8_pipeline_100_sites", |b| {
        b.iter(|| {
            let ctx = CrawlContext::collect(&opts(100));
            black_box(cg_experiments::run_measurement_experiments(&ctx, &[]))
        });
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_paired_crawl_80_sites", |b| {
        b.iter(|| black_box(run_fig5(&opts(80))));
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_breakage_60_sites", |b| {
        b.iter(|| black_box(run_table3(&opts(60))));
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4_figs_6_7_9_10_perf_100_sites", |b| {
        b.iter(|| black_box(run_table4_and_figs(&opts(100), &[])));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_measurement_tables, bench_fig5, bench_table3, bench_table4
}
criterion_main!(benches);
