//! Guard-service microbenchmarks: the serving-layer costs `cg-service`
//! adds on top of the engine's 77 ns decision — the cached session-open
//! fast path, the slot read after a swap, the hot-swap itself (compile
//! vs install), and the per-op replay path.

use cg_service::{EngineCache, EpochSlot, GuardService, LatencyHistogram};
use cookieguard_core::{Caller, GuardConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_session_open(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_session_open");
    let mut svc = GuardService::new();
    let tenant = svc.register("bench", GuardConfig::strict());

    group.bench_function("cached_fast_path", |b| {
        // Steady state: epoch unchanged, so each open is one atomic
        // load + one Arc clone + session init.
        let mut cache = EngineCache::new(svc.slot(tenant));
        b.iter(|| black_box(svc.open_session_cached(tenant, &mut cache, "site.com")));
    });

    group.bench_function("uncached_slot_read", |b| {
        // Every open goes through the RwLock read path.
        b.iter(|| black_box(svc.open_session(tenant, "site.com")));
    });
    group.finish();
}

fn bench_hot_swap(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_hot_swap");
    group.bench_function("swap_strict", |b| {
        let slot = EpochSlot::new(GuardConfig::strict());
        b.iter(|| black_box(slot.swap(GuardConfig::strict())));
        // Nothing pinned the retired engines: all freed.
        assert!(slot.undrained().is_empty());
    });
    group.bench_function("swap_entity_grouped", |b| {
        // The expensive compile: a full entity map lowered to interned
        // ids, still entirely outside the install lock.
        let slot = EpochSlot::new(GuardConfig::strict());
        b.iter(|| {
            black_box(
                slot.swap(
                    GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
                ),
            )
        });
    });
    group.finish();
}

fn bench_decision_under_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_decision");
    let mut svc = GuardService::new();
    let tenant = svc.register("bench", GuardConfig::strict());
    let mut cache = EngineCache::new(svc.slot(tenant));

    group.bench_function("open_write_read_close", |b| {
        // The whole per-visit service path for a two-op visit.
        let writer = Caller::external("vendor3.com");
        b.iter(|| {
            let mut session = svc.open_session_cached(tenant, &mut cache, "site.com");
            session.authorize_write(&writer, "c");
            black_box(session.filter_names(&writer, &["c"]));
        });
    });
    group.finish();
}

fn bench_latency_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_histogram");
    group.bench_function("record", |b| {
        let mut h = LatencyHistogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 34));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_session_open,
    bench_hot_swap,
    bench_decision_under_service,
    bench_latency_histogram
);
criterion_main!(benches);
