//! Cookie-jar micro-benchmarks: the raw cost of the operations the
//! paper's extension intercepts (`document.cookie` get/set, CookieStore
//! get/getAll) at realistic jar sizes.

use cg_cookiejar::{CookieJar, CookieStore};
use cg_url::Url;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn jar_with(n: usize) -> (CookieJar, Url) {
    let url = Url::parse("https://www.site.com/").unwrap();
    let mut jar = CookieJar::new();
    for i in 0..n {
        jar.set_document_cookie(&format!("cookie_{i}=value_{i:08x}; Max-Age=86400"), &url, i as i64)
            .unwrap();
    }
    (jar, url)
}

fn bench_document_cookie(c: &mut Criterion) {
    let mut group = c.benchmark_group("document_cookie");
    for &n in &[5usize, 20, 60] {
        let (jar, url) = jar_with(n);
        group.bench_with_input(BenchmarkId::new("get", n), &n, |b, _| {
            b.iter(|| black_box(jar.document_cookie(&url, 1_000)));
        });
        group.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            let mut jar = jar.clone();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                jar.set_document_cookie(&format!("hot={i}"), &url, i as i64).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_cookie_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("cookie_store");
    for &n in &[5usize, 20, 60] {
        let (mut jar, url) = jar_with(n);
        group.bench_with_input(BenchmarkId::new("get_all", n), &n, |b, _| {
            let store = CookieStore::open(&mut jar, &url).unwrap();
            b.iter(|| black_box(store.get_all(1_000)));
        });
    }
    group.finish();
}

fn bench_request_header(c: &mut Criterion) {
    let (jar, url) = jar_with(30);
    c.bench_function("cookie_header_for_request/30", |b| {
        b.iter(|| black_box(jar.cookie_header_for_request(&url, 1_000)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_document_cookie, bench_cookie_store, bench_request_header
}
criterion_main!(benches);
