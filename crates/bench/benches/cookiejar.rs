//! Cookie-jar micro-benchmarks: the raw cost of the operations the
//! paper's extension intercepts (`document.cookie` get/set, CookieStore
//! get/getAll) at realistic jar sizes.

use cg_cookiejar::{CookieJar, CookieStore, FlatJar};
use cg_url::Url;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn jar_with(n: usize) -> (CookieJar, Url) {
    let url = Url::parse("https://www.site.com/").unwrap();
    let mut jar = CookieJar::new();
    for i in 0..n {
        jar.set_document_cookie(
            &format!("cookie_{i}=value_{i:08x}; Max-Age=86400"),
            &url,
            i as i64,
        )
        .unwrap();
    }
    (jar, url)
}

fn bench_document_cookie(c: &mut Criterion) {
    let mut group = c.benchmark_group("document_cookie");
    for &n in &[5usize, 20, 60] {
        let (jar, url) = jar_with(n);
        group.bench_with_input(BenchmarkId::new("get", n), &n, |b, _| {
            b.iter(|| black_box(jar.document_cookie(&url, 1_000)));
        });
        group.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            let mut jar = jar.clone();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                jar.set_document_cookie(&format!("hot={i}"), &url, i as i64)
                    .unwrap();
            });
        });
    }
    group.finish();
}

fn bench_cookie_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("cookie_store");
    for &n in &[5usize, 20, 60] {
        let (mut jar, url) = jar_with(n);
        group.bench_with_input(BenchmarkId::new("get_all", n), &n, |b, _| {
            let store = CookieStore::open(&mut jar, &url).unwrap();
            b.iter(|| black_box(store.get_all(1_000)));
        });
    }
    group.finish();
}

fn bench_request_header(c: &mut Criterion) {
    let (jar, url) = jar_with(30);
    c.bench_function("cookie_header_for_request/30", |b| {
        b.iter(|| black_box(jar.cookie_header_for_request(&url, 1_000)));
    });
}

/// Builds matched sharded/flat jars holding `total` cookies spread over
/// `domains` eTLD+1s (a Cookieverse-scale crawl profile), plus one
/// lookup URL per domain.
fn multi_domain_jars(total: usize, domains: usize) -> (CookieJar, FlatJar, Vec<Url>) {
    let urls: Vec<Url> = (0..domains)
        .map(|d| Url::parse(&format!("https://www.crawl-site-{d}.com/")).unwrap())
        .collect();
    let mut sharded = CookieJar::new();
    let mut flat = FlatJar::new();
    for i in 0..total {
        let url = &urls[i % domains];
        let raw = format!("cookie_{}=value_{i:08x}; Max-Age=86400", i / domains);
        sharded.set_document_cookie(&raw, url, i as i64).unwrap();
        flat.set_document_cookie(&raw, url, i as i64).unwrap();
    }
    (sharded, flat, urls)
}

/// The tentpole comparison: jar lookups on a 500-cookie / 50-domain jar.
/// The sharded index touches one ~10-cookie bucket per lookup; the flat
/// jar domain-matches all 500 cookies every time.
fn bench_sharded_vs_flat(c: &mut Criterion) {
    let (sharded, flat, urls) = multi_domain_jars(500, 50);
    let mut group = c.benchmark_group("jar_500c_50d");
    group.bench_function("sharded/document_cookie", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % urls.len();
            black_box(sharded.document_cookie(&urls[i], 1_000))
        });
    });
    group.bench_function("flat/document_cookie", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % urls.len();
            black_box(flat.document_cookie(&urls[i], 1_000))
        });
    });
    group.bench_function("sharded/request_header", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % urls.len();
            black_box(sharded.cookie_header_for_request(&urls[i], 1_000))
        });
    });
    group.bench_function("flat/request_header", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % urls.len();
            black_box(flat.cookie_header_for_request(&urls[i], 1_000))
        });
    });
    // Steady-state write path: the `hot` cookie is pre-seeded on every
    // domain, so each measured write replaces an existing cookie — the
    // identity-lookup scan (one ~10-cookie bucket vs the whole
    // 500-cookie jar).
    let (sharded_warm, flat_warm) = {
        let (mut s, mut f) = (sharded.clone(), flat.clone());
        for (d, url) in urls.iter().enumerate() {
            s.set_document_cookie("hot=0", url, d as i64).unwrap();
            f.set_document_cookie("hot=0", url, d as i64).unwrap();
        }
        (s, f)
    };
    group.bench_function("sharded/set_replace", |b| {
        let mut jar = sharded_warm.clone();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            jar.set_document_cookie(
                &format!("hot={i}"),
                &urls[(i as usize) % urls.len()],
                i as i64,
            )
            .unwrap();
        });
    });
    group.bench_function("flat/set_replace", |b| {
        let mut jar = flat_warm.clone();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            jar.set_document_cookie(
                &format!("hot={i}"),
                &urls[(i as usize) % urls.len()],
                i as i64,
            )
            .unwrap();
        });
    });
    // Eviction pressure: one domain held at the 180-cookie cap, every
    // insert a fresh name, so the cap check + oldest-victim scan runs
    // on each write. The sharded jar reads one bucket's length and
    // scans that bucket; the flat jar recomputes eTLD+1 for every
    // cookie in the jar to recount the domain, then again to pick the
    // victim.
    let full_url = Url::parse("https://www.crawl-site-0.com/").unwrap();
    let (sharded_full, flat_full) = {
        let (mut s, mut f) = (sharded.clone(), flat.clone());
        for i in 0..180usize {
            let raw = format!("fill_{i}=v; Max-Age=86400");
            s.set_document_cookie(&raw, &full_url, i as i64).unwrap();
            f.set_document_cookie(&raw, &full_url, i as i64).unwrap();
        }
        (s, f)
    };
    group.bench_function("sharded/set_evict", |b| {
        let mut jar = sharded_full.clone();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            jar.set_document_cookie(&format!("fresh_{i}=v"), &full_url, 1_000_000 + i as i64)
                .unwrap();
        });
    });
    group.bench_function("flat/set_evict", |b| {
        let mut jar = flat_full.clone();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            jar.set_document_cookie(&format!("fresh_{i}=v"), &full_url, 1_000_000 + i as i64)
                .unwrap();
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_document_cookie, bench_cookie_store, bench_request_header, bench_sharded_vs_flat
}
criterion_main!(benches);
