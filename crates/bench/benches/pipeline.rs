//! End-to-end pipeline benchmarks: full site visits (regular and
//! guarded) and the exfiltration-detection analysis — the per-site costs
//! behind every §5/§7 experiment.

use cg_analysis::Dataset;
use cg_browser::{visit_site, VisitConfig};
use cg_webgen::{GenConfig, WebGenerator};
use cookieguard_core::GuardConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_site_visit(c: &mut Criterion) {
    let gen = WebGenerator::new(GenConfig::small(300), 0xC00C1E);
    let site = (1..=300)
        .map(|r| gen.blueprint(r))
        .find(|b| b.spec.crawl_ok)
        .unwrap();
    c.bench_function("visit_site_regular", |b| {
        b.iter(|| black_box(visit_site(&site, &VisitConfig::regular(), 42)));
    });
    c.bench_function("visit_site_guarded", |b| {
        b.iter(|| {
            black_box(visit_site(
                &site,
                &VisitConfig::guarded(GuardConfig::strict()),
                42,
            ))
        });
    });
    c.bench_function("visit_site_guarded_entity_grouped", |b| {
        let cfg = VisitConfig::guarded(
            GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
        );
        b.iter(|| black_box(visit_site(&site, &cfg, 42)));
    });
}

fn bench_blueprint_generation(c: &mut Criterion) {
    let gen = WebGenerator::new(GenConfig::small(300), 0xC00C1E);
    c.bench_function("blueprint_generation", |b| {
        let mut rank = 0usize;
        b.iter(|| {
            rank = rank % 300 + 1;
            black_box(gen.blueprint(rank));
        });
    });
}

fn bench_exfil_detection(c: &mut Criterion) {
    let gen = WebGenerator::new(GenConfig::small(120), 0xC00C1E);
    let logs: Vec<_> = (1..=120)
        .map(|r| visit_site(&gen.blueprint(r), &VisitConfig::regular(), gen.site_seed(r)).log)
        .collect();
    let entities = cg_entity::builtin_entity_map();
    c.bench_function("exfiltration_detection_120_sites", |b| {
        b.iter(|| {
            let ds = Dataset::from_logs(logs.clone());
            black_box(cg_analysis::detect_exfiltration(&ds, &entities))
        });
    });
    c.bench_function("manipulation_detection_120_sites", |b| {
        b.iter(|| {
            let ds = Dataset::from_logs(logs.clone());
            black_box(cg_analysis::detect_manipulation(&ds, &entities))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_site_visit, bench_blueprint_generation, bench_exfil_detection
}
criterion_main!(benches);
