//! Hash/encoding benchmarks: the §4.4 identifier-encoding pipeline
//! (every candidate identifier gets Base64 + MD5 + SHA-1 forms, and each
//! form is substring-matched against outbound URLs).

use cg_hash::{b64encode, md5_hex, sha1_hex, EncodedForms};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_primitives(c: &mut Criterion) {
    let id = b"868308499845957651";
    c.bench_function("md5_18_bytes", |b| b.iter(|| black_box(md5_hex(id))));
    c.bench_function("sha1_18_bytes", |b| b.iter(|| black_box(sha1_hex(id))));
    c.bench_function("base64_18_bytes", |b| b.iter(|| black_box(b64encode(id))));
    let big = vec![0xA5u8; 4096];
    c.bench_function("md5_4k", |b| b.iter(|| black_box(md5_hex(&big))));
    c.bench_function("sha1_4k", |b| b.iter(|| black_box(sha1_hex(&big))));
}

fn bench_encoded_forms(c: &mut Criterion) {
    c.bench_function("encoded_forms_of_identifier", |b| {
        b.iter(|| black_box(EncodedForms::of("444332364")));
    });
    let forms = EncodedForms::of("444332364");
    let url = "https://px.ads.linkedin.com/attribution_trigger?pid=621340&url=www.optimonk.com&_ga=NDQ0MzMyMzY0LjE3NDY4Mzg4Mjc";
    c.bench_function("forms_match_against_url", |b| {
        b.iter(|| black_box(forms.appears_in(url)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_primitives, bench_encoded_forms
}
criterion_main!(benches);
