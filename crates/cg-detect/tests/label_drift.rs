//! Label-drift guard: every cookie a catalog scenario can write that
//! belongs to the scored universe (registry-vendor programs plus
//! name-keyed overrides) must resolve through
//! [`CookieLabels::require`], which panics with context on a miss.
//!
//! This is the PR 5 fixtures pattern extended to ground truth: a
//! registry rename, a scenario rewrite, or a dropped override cannot
//! silently strand a scored cookie — the walk below fails the build
//! instead.

use cg_scenarios::{catalog, Fixtures};
use cg_script::ScriptOp;
use cg_webgen::{CookieLabels, PageBlueprint, SiteBlueprint};
use std::collections::BTreeSet;

/// Collects every cookie name an op tree can write, recursing into all
/// nested program slots so a new recursion point shows up as a missed
/// name (and a compile error here when a variant is added).
fn written_names(ops: &[ScriptOp], out: &mut BTreeSet<String>) {
    for op in ops {
        match op {
            ScriptOp::SetCookie { name, .. } | ScriptOp::CookieStoreSet { name, .. } => {
                out.insert(name.clone());
            }
            ScriptOp::CopyCookie { to, .. } => {
                out.insert(to.clone());
            }
            ScriptOp::Defer { ops, .. }
            | ScriptOp::Microtask { ops }
            | ScriptOp::OnCookieChange { ops, .. } => written_names(ops, out),
            ScriptOp::IfCookieVisible {
                then_ops, else_ops, ..
            } => {
                written_names(then_ops, out);
                written_names(else_ops, out);
            }
            _ => {}
        }
    }
}

/// `(cookie name, owner eTLD+1)` pairs a page can produce: server
/// `Set-Cookie` headers are owned by the site, scripts by their URL's
/// registrable domain (inline scripts by the site).
fn page_pairs(site: &str, page: &PageBlueprint, out: &mut BTreeSet<(String, String)>) {
    for header in &page.server_cookies {
        let name = header.split('=').next().unwrap_or("").trim().to_string();
        assert!(
            !name.is_empty(),
            "malformed Set-Cookie in scenario: {header}"
        );
        out.insert((name, site.to_string()));
    }
    for script in &page.scripts {
        let owner = script
            .url
            .as_deref()
            .and_then(cg_url::url_domain)
            .unwrap_or_else(|| site.to_string());
        let mut names = BTreeSet::new();
        written_names(&script.ops, &mut names);
        out.extend(names.into_iter().map(|n| (n, owner.clone())));
    }
}

fn site_pairs(site: &SiteBlueprint) -> BTreeSet<(String, String)> {
    let domain = &site.spec.domain;
    let mut out = BTreeSet::new();
    page_pairs(domain, &site.landing, &mut out);
    for page in &site.subpages {
        page_pairs(domain, page, &mut out);
    }
    for (url, ops) in &site.injectables {
        let owner = cg_url::url_domain(url).unwrap_or_else(|| domain.clone());
        let mut names = BTreeSet::new();
        written_names(ops, &mut names);
        out.extend(names.into_iter().map(|n| (n, owner.clone())));
    }
    out
}

#[test]
fn every_scored_scenario_cookie_has_a_ground_truth_label() {
    let fixtures = Fixtures::new();
    let labels = CookieLabels::derive(fixtures.registry());
    let vendor_domains: BTreeSet<&str> = fixtures
        .registry()
        .all()
        .iter()
        .map(|v| v.domain.as_str())
        .collect();
    let overridden: BTreeSet<&str> = labels.name_overrides().map(|(n, _)| n).collect();

    let mut required = BTreeSet::new();
    for scenario in catalog() {
        for (name, owner) in site_pairs(&scenario.site) {
            // The scored universe: registry vendor programs, plus the
            // name-keyed overrides that label scenario-posed cookies
            // regardless of observed owner. Site-local state
            // (session_id, prefs, …) is unlabeled by design.
            if vendor_domains.contains(owner.as_str()) || overridden.contains(name.as_str()) {
                labels.require(&name, &owner); // panics on drift
                required.insert(name);
            }
        }
    }

    // The scenario-critical cookies must all have been walked — if a
    // catalog rewrite renames one, this list is the tripwire.
    for name in ["_dcid", "_cc_ga", "idp_session", "_fbp", "_uetsid", "_ga"] {
        assert!(
            required.contains(name),
            "scenario cookie {name} no longer reaches the label walk; walked: {required:?}"
        );
    }
}
