//! Differential guarantees of the detection pipeline over a real
//! generated crawl:
//!
//! * the streaming fold over the binary store serializes a report
//!   byte-identical to the resident fold, at every thread count and
//!   read backend (the commutative-monoid invariant, end to end);
//! * per-visit feature extraction is order-independent — any
//!   interleaving of the same visits produces the same report
//!   (property-tested over sampled permutations);
//! * label coverage: every registry-labeled cookie observed in the
//!   crawl appears in the scored key set, and nothing is scored that
//!   was never observed as labeled — no silent drops either way.

use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store, par_fold_with, ReadBackend};
use cg_detect::{DetectConfig, DetectEngine, DetectReport, DetectStats, Stages};
use cg_instrument::VisitLog;
use cg_webgen::{CookieLabels, GenConfig, WebGenerator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::OnceLock;

const SEED: u64 = 0xD1FF;
const SITES: usize = 160;

struct Crawl {
    dir: PathBuf,
    engine: DetectEngine,
    /// The resident copy of the crawl, in store order.
    logs: Vec<VisitLog>,
}

/// Crawls once into a shared temp store; every test reads from it.
fn crawl() -> &'static Crawl {
    static CRAWL: OnceLock<Crawl> = OnceLock::new();
    CRAWL.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("cg-detect-diff-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gen = WebGenerator::new(GenConfig::small(SITES), SEED);
        let cfg = VisitConfig::regular();
        crawl_to_store(&dir, &gen, &cfg, 1, SITES, 4, |_| {}).expect("crawl");
        let engine = DetectEngine::compile(
            &CookieLabels::derive(gen.registry()),
            cg_entity::builtin_entity_map(),
            DetectConfig::default(),
        );
        let logs: Vec<VisitLog> = par_fold_with(&dir, 1, ReadBackend::Buffered, |chunk| {
            chunk.collect::<Result<Vec<_>, _>>()
        })
        .expect("drain store")
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(logs.len(), SITES, "store holds the whole crawl");
        Crawl { dir, engine, logs }
    })
}

fn resident_json() -> String {
    let c = crawl();
    let stats = DetectStats::from_logs(&c.engine, Stages::Full, c.logs.iter());
    DetectReport::from_stats(&stats).to_json()
}

#[test]
fn streaming_report_is_byte_identical_to_resident() {
    let c = crawl();
    let resident = resident_json();
    for backend in [ReadBackend::Mmap, ReadBackend::Pread] {
        for threads in [1, 2, 8] {
            let stats =
                DetectStats::from_store_with(&c.engine, Stages::Full, &c.dir, threads, backend)
                    .expect("streaming fold");
            let streamed = DetectReport::from_stats(&stats).to_json();
            assert_eq!(
                streamed, resident,
                "streaming {backend:?} x{threads} diverged from resident"
            );
        }
    }
}

proptest! {
    /// Any interleaving of the same visits folds to the same report:
    /// the fold is a commutative monoid and extraction is per-visit
    /// pure, so visit order cannot leak into a single byte.
    #[test]
    fn visit_order_does_not_change_the_report(seed in any::<u64>()) {
        let c = crawl();
        let mut order: Vec<usize> = (0..c.logs.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let stats = DetectStats::from_logs(
            &c.engine,
            Stages::Full,
            order.iter().map(|&i| &c.logs[i]),
        );
        prop_assert_eq!(DetectReport::from_stats(&stats).to_json(), resident_json());
    }
}

#[test]
fn every_labeled_cookie_observed_is_scored() {
    let c = crawl();
    // Ground truth side: every cookie name whose (name, writing actor)
    // pair carries a registry label in some complete visit.
    let mut labeled_observed: BTreeSet<&str> = BTreeSet::new();
    for log in c.logs.iter().filter(|l| l.complete) {
        for ev in log.sets.iter().filter(|e| !e.blocked) {
            let actor = ev.actor.as_deref().unwrap_or(&log.site_domain);
            if c.engine.label_for(&ev.name, actor).is_some() {
                labeled_observed.insert(&ev.name);
            }
        }
    }
    assert!(
        labeled_observed.len() >= 10,
        "crawl too small to exercise coverage: {labeled_observed:?}"
    );
    // Detector side: the scored key set.
    let stats = DetectStats::from_logs(&c.engine, Stages::Full, c.logs.iter());
    let scored: BTreeSet<&str> = stats.keys.keys().map(|k| k.name.as_str()).collect();
    for name in &labeled_observed {
        assert!(
            scored.contains(name),
            "labeled cookie {name} observed in the crawl but silently dropped from scoring"
        );
    }
    // And the converse: nothing is scored that was never observed as a
    // labeled write.
    for name in &scored {
        assert!(
            labeled_observed.contains(name),
            "scored cookie {name} never observed as a labeled write"
        );
    }
}

#[test]
fn sets_only_stage_is_a_prefix_of_the_full_pipeline() {
    let c = crawl();
    // The cheap stage must agree with the full pipeline on everything
    // it computes: same key universe, same set-derived evidence.
    let cheap = DetectStats::from_logs(&c.engine, Stages::SetsOnly, c.logs.iter());
    let full = DetectStats::from_logs(&c.engine, Stages::Full, c.logs.iter());
    let cheap_keys: Vec<_> = cheap.keys.keys().collect();
    let full_keys: Vec<_> = full.keys.keys().collect();
    assert_eq!(cheap_keys, full_keys);
    for (key, agg) in &cheap.keys {
        let f = &full.keys[key];
        assert_eq!(agg.sites_seen, f.sites_seen, "{key:?}");
        assert_eq!(agg.id_sites, f.id_sites, "{key:?}");
        assert_eq!(agg.persistent_sites, f.persistent_sites, "{key:?}");
        assert_eq!(agg.respawn_sites, f.respawn_sites, "{key:?}");
        // Ship evidence only exists in the full pipeline.
        assert_eq!(agg.self_ship_sites, 0, "{key:?}");
        assert!(agg.foreign.is_empty(), "{key:?}");
    }
}
