//! The nine cg-scenarios blueprints as named detector test cases.
//!
//! Each adversarial scenario is visited unguarded (the detector is a
//! measurement consumer — it sees what a vanilla crawl sees) and folded
//! through the detection pipeline with `min_support: 1`, since a posed
//! scenario is a single site. The hard requirements:
//!
//! * respawn-on-delete and the cookie-sync chain MUST be detected;
//! * the whitelist-boundary SSO session cookie MUST NOT be flagged,
//!   even though it is a persistent UUID (no shipping evidence exists);
//! * verdicts agree with the checked-in golden scenario matrix (the
//!   catalog cannot drift under the detector silently).

use cg_browser::{visit_site, VisitConfig};
use cg_detect::{
    DetectConfig, DetectEngine, DetectKey, DetectReport, DetectStats, FlagReason, KeyRow, Owner,
    Stages,
};
use cg_scenarios::{catalog, Fixtures, Scenario};
use cg_webgen::CookieLabels;
use std::sync::OnceLock;

const SEED: u64 = 0xC00C1E;

fn engine() -> &'static DetectEngine {
    static ENGINE: OnceLock<DetectEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let labels = CookieLabels::derive(Fixtures::new().registry());
        DetectEngine::compile(
            &labels,
            cg_entity::builtin_entity_map(),
            DetectConfig {
                min_support: 1,
                ..DetectConfig::default()
            },
        )
    })
}

/// Folds one scenario's vanilla visit and returns the report.
fn detect(scenario: &Scenario) -> DetectReport {
    let outcome = visit_site(&scenario.site, &VisitConfig::regular(), SEED);
    let stats = DetectStats::from_logs(engine(), Stages::Full, [&outcome.log]);
    DetectReport::from_stats(&stats)
}

fn scenario(name: &str) -> Scenario {
    catalog()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing from catalog"))
}

fn row<'r>(report: &'r DetectReport, name: &str, owner: &str) -> &'r KeyRow {
    report
        .keys
        .iter()
        .find(|r| r.name == name && r.owner == owner)
        .unwrap_or_else(|| {
            panic!(
                "key ({name}, {owner}) not scored; scored keys: {:?}",
                report
                    .keys
                    .iter()
                    .map(|r| (r.name.as_str(), r.owner.as_str()))
                    .collect::<Vec<_>>()
            )
        })
}

// ---- the two MUST-detect cases -------------------------------------------

#[test]
fn respawn_on_delete_is_detected() {
    let report = detect(&scenario("cookie-respawn-on-delete"));
    let fbp = row(&report, "_fbp", "Meta");
    assert_eq!(fbp.label, "tracker");
    assert!(fbp.flagged, "respawning _fbp must be flagged");
    assert_eq!(
        fbp.reason,
        Some(FlagReason::Respawn),
        "the foreign-delete-then-owner-recreate sequence is the evidence"
    );
    assert_eq!(fbp.respawn_sites, 1);
}

#[test]
fn sync_chain_is_detected() {
    let report = detect(&scenario("cookie-sync-chain"));
    // The adoptive copy: Lotame's own namespace, shipped by Lotame.
    let cc = row(&report, "_cc_ga", "Lotame");
    assert_eq!(cc.label, "tracker");
    assert!(cc.flagged, "the sync-chain copy must be flagged");
    assert_eq!(cc.reason, Some(FlagReason::SelfShip));
    // The minted original: GTM ships its own identifier.
    let ga = row(&report, "_ga", "Google");
    assert!(ga.flagged, "the minted _ga must be flagged");
    assert!(ga.self_ship_sites >= 1);
}

// ---- the MUST-NOT-flag case ----------------------------------------------

#[test]
fn sso_whitelist_boundary_session_is_not_flagged() {
    let report = detect(&scenario("sso-whitelist-boundary"));
    // The session cookie is scored (persistent UUID — it passes the
    // value/lifetime gates) but no one ever ships it, so no rule fires.
    let sess = row(&report, "idp_session", "idp-login.net");
    assert_eq!(sess.label, "functional");
    assert!(
        !sess.flagged,
        "SSO session token must not be flagged: {sess:?}"
    );
    assert_eq!(sess.self_ship_sites, 0);
    // And nothing else on the page produced a false positive.
    assert_eq!(report.instance_scores.fp, 0, "report: {}", report.render());
}

// ---- the remaining six blueprints ----------------------------------------

#[test]
fn cname_cloaked_identifier_is_detected_as_site_owned() {
    let report = detect(&scenario("cname-cloaked-set-cookie"));
    // The HTTP cookie arrives first-party and the cloaked script ships
    // it: a self-ship by the "site" — the guard-blind cell.
    let dcid = row(&report, "_dcid", "(site)");
    assert_eq!(dcid.label, "tracker");
    assert!(dcid.flagged);
    assert_eq!(dcid.reason, Some(FlagReason::SelfShip));
    // Site-owned and flagged = the detector-only cell of the matrix.
    assert!(report.guard_matrix.detector_only >= 1);
}

#[test]
fn contention_overwrite_alone_is_not_shipping_evidence() {
    let report = detect(&scenario("cross-entity-overwrite-contention"));
    // cto_bundle is ground-truth tracker, but this page shows only the
    // overwrite/delete war — no exfiltration, no respawn (the deleted
    // cookie is never re-created). A context-limited miss by design.
    let cto = row(&report, "cto_bundle", "Criteo");
    assert_eq!(cto.label, "tracker");
    assert!(!cto.flagged, "no shipping evidence on this page: {cto:?}");
    assert_eq!(cto.respawn_sites, 0);
}

#[test]
fn ghost_write_free_rider_is_foreign_harvest_evidence() {
    let report = detect(&scenario("subdomain-ghost-write"));
    let fbp = row(&report, "_fbp", "Meta");
    assert!(fbp.flagged);
    // Meta ships its own cookie AND LinkedIn free-rides: the self-ship
    // rule fires first, and the foreign evidence is recorded.
    assert_eq!(fbp.reason, Some(FlagReason::SelfShip));
    let (entity, ships, co) = fbp
        .top_foreign
        .clone()
        .expect("licdn's free-ride must be recorded");
    assert_eq!(entity, "Microsoft");
    assert_eq!((ships, co), (1, 1));
}

#[test]
fn consent_gated_setter_is_detected_once_the_gate_opens() {
    let report = detect(&scenario("consent-gated-late-setter"));
    // Unguarded, the gate opens: bing mints and ships its identifier.
    let uet = row(&report, "_uetsid", "Microsoft");
    assert_eq!(uet.label, "tracker");
    assert!(uet.flagged);
    // The CMP's consent record is id-free and stays clean.
    let consent = row(&report, "OptanonConsent", "OneTrust");
    assert_eq!(consent.label, "functional");
    assert!(!consent.flagged, "consent string must not be flagged");
    assert_eq!(consent.id_sites, 0, "ConsentString has no id segments");
}

#[test]
fn inline_impersonation_is_scored_as_site_owned() {
    let report = detect(&scenario("first-party-impersonation"));
    // The inline GTM copy has no attributable origin: the write lands
    // as the site's own, and the inline exfil is a site self-ship —
    // exactly the first-party collection the detector exists to catch.
    let ga = row(&report, "_ga", "(site)");
    assert_eq!(ga.label, "tracker");
    assert!(ga.flagged);
    assert_eq!(ga.reason, Some(FlagReason::SelfShip));
    // The genuine external tag's cookie stays attributed to Google.
    let gcl = row(&report, "_gcl_au", "Google");
    assert_eq!(gcl.label, "tracker");
}

#[test]
fn mixed_burst_scores_every_registry_tracker_present() {
    let report = detect(&scenario("mixed-burst-stress"));
    for (name, owner) in [
        ("_ga", "Google"),
        ("_gid", "Google"),
        ("_fbp", "Meta"),
        ("cto_bundle", "Criteo"),
        ("ajs_anonymous_id", "Segment.io"),
    ] {
        let r = row(&report, name, owner);
        assert_eq!(r.label, "tracker", "({name}, {owner})");
    }
    // The shipped identifiers are flagged; the page's own server
    // cookies stay out of the scored universe entirely (`session_id`
    // is HttpOnly and never even reaches the scripted surface).
    assert!(row(&report, "_ga", "Google").flagged);
    assert!(row(&report, "_fbp", "Meta").flagged);
    assert!(!report.keys.iter().any(|r| r.name == "session_id"));
    assert!(report.unlabeled_pairs >= 1, "the site's own prefs cookie");
}

// ---- golden-matrix agreement ---------------------------------------------

#[test]
fn catalog_agrees_with_golden_matrix() {
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../cg-scenarios/golden/scenario_matrix.json"
    ))
    .expect("golden scenario matrix is checked in");
    let matrix: serde_json::Value = serde_json::from_str(&golden).expect("golden parses");
    let rows = matrix["rows"].as_array().expect("rows");
    let golden_names: Vec<&str> = rows
        .iter()
        .map(|r| r["scenario"].as_str().expect("scenario name"))
        .collect();
    let catalog_names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
    assert_eq!(
        golden_names, catalog_names,
        "detector test cases and golden matrix must cover the same catalog"
    );
    for r in rows {
        assert_eq!(
            r["verdict"],
            serde_json::Value::Bool(true),
            "golden scenario {} no longer passes",
            r["scenario"]
        );
    }
}

// ---- determinism across scenario folds -----------------------------------

#[test]
fn scenario_fold_order_does_not_change_the_report() {
    let logs: Vec<_> = catalog()
        .iter()
        .map(|s| visit_site(&s.site, &VisitConfig::regular(), SEED).log)
        .collect();
    let forward = DetectStats::from_logs(engine(), Stages::Full, logs.iter());
    let reverse = DetectStats::from_logs(engine(), Stages::Full, logs.iter().rev());
    assert_eq!(
        DetectReport::from_stats(&forward).to_json(),
        DetectReport::from_stats(&reverse).to_json(),
        "visit order must not leak into the report"
    );
}

// ---- the cloaked owner key under DNS-resolving attribution ---------------

#[test]
fn resolve_cnames_collapses_cloaked_writes_into_one_key() {
    let s = scenario("cname-cloaked-set-cookie");
    let cfg = VisitConfig {
        resolve_cnames: true,
        ..VisitConfig::regular()
    };
    let outcome = visit_site(&s.site, &cfg, SEED);
    // Under DNS-aware attribution the cloaked script's writes resolve
    // to the foreign vendor while the script URL stays first-party —
    // any such write lands under the single `(cloaked)` owner key
    // rather than fragmenting across per-site alias targets.
    let stats = DetectStats::from_logs(engine(), Stages::Full, [&outcome.log]);
    let cloaked_owner_keys: Vec<&DetectKey> = stats
        .keys
        .keys()
        .filter(|k| k.owner == Owner::Cloaked)
        .collect();
    // The posed scenario's only script-written cookies come from the
    // cloaked tracker reading the jar; the HTTP `_dcid` stays
    // site-owned in both modes (servers are not uncloaked).
    let report = DetectReport::from_stats(&stats);
    let dcid = row(&report, "_dcid", "(site)");
    assert!(dcid.flagged, "cloak detection must not regress under DNS");
    assert!(
        cloaked_owner_keys.is_empty() || cloaked_owner_keys.iter().all(|k| k.name != "_dcid"),
        "_dcid is written by the server, never by the cloaked script"
    );
}
