//! Per-visit feature extraction: one `VisitLog` in, bounded
//! [`VisitFacts`] out.
//!
//! Implements the COOKIEGRAPH-style per-cookie feature set over the
//! instrumentation this repo already records:
//!
//! * **setter identity** — ownership replay (create wins, overwrites
//!   keep the original owner), with the actor collapsed to its
//!   organization and CNAME cloaking surfaced: a write whose script URL
//!   is first-party but whose attributed actor is foreign (the
//!   `resolve_cnames` crawl uncloaks attribution) is an
//!   [`Owner::Cloaked`] write.
//! * **identifier value** — §4.4 segment extraction with
//!   timestamp/counter segments removed and structured consent strings
//!   excluded wholesale.
//! * **lifetime** — the `max_age_s` the write requested.
//! * **read/exfil fan-out** — which organizations ship the value
//!   off-site, split into the owner's own beacons (self-ship) and
//!   foreign harvest (discounted when the carrying request is a bulk
//!   beacon), plus the co-presence denominators the rate features
//!   need.
//! * **respawn** — a foreign delete followed by the original owner
//!   re-creating the same cookie within the visit.
//!
//! Only registry-labeled pairs get per-key state, so per-visit memory
//! is bounded by the (finite) label table, never by crawl size.

use crate::engine::DetectEngine;
use cg_hash::EncodedForms;
use cg_instrument::{VisitLog, WriteKind};
use cg_script::value::split_segments;
use cg_webgen::CookieLabel;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Who owns a cookie pair, at aggregation granularity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Owner {
    /// Created by the site itself (inline or first-party script).
    Site,
    /// Created through a CNAME cloak: the script URL was first-party
    /// but attribution resolved to a foreign organization.
    Cloaked,
    /// Created by a third-party organization (canonical entity name).
    Entity(String),
}

impl Owner {
    /// Stable rendering for reports (`(site)`, `(cloaked)`, or the
    /// entity name).
    pub fn as_str(&self) -> &str {
        match self {
            Owner::Site => "(site)",
            Owner::Cloaked => "(cloaked)",
            Owner::Entity(e) => e,
        }
    }
}

/// The detector's aggregation key: cookie name plus owner class. Same
/// name under different organizations stays distinct (the paper's pair
/// definition); the same behaviour across sites folds together.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DetectKey {
    /// Cookie name.
    pub name: String,
    /// Owner class.
    pub owner: Owner,
}

/// What one visit contributed to one labeled key.
#[derive(Debug, Clone, Default)]
pub struct KeyVisitFacts {
    /// Ground-truth label (Tracker wins if owners disagree on merge).
    pub label: Option<CookieLabel>,
    /// A written value carried an identifier segment.
    pub id_value: bool,
    /// A write requested a persistent lifetime.
    pub persistent: bool,
    /// Foreign delete followed by owner re-create.
    pub respawned: bool,
    /// The owner shipped the value to a non-site destination.
    pub self_ship: bool,
    /// Foreign organizations that shipped the value (non-bulk).
    pub foreign_ships: BTreeSet<String>,
    /// Distinct values written this visit (value-stability sketching).
    pub values: Vec<String>,
}

/// Everything one visit contributes to the fold.
#[derive(Debug, Clone, Default)]
pub struct VisitFacts {
    /// Per labeled key.
    pub keys: BTreeMap<DetectKey, KeyVisitFacts>,
    /// Foreign organizations whose scripts were included on the page —
    /// the co-presence denominator for foreign-harvest rates.
    pub foreign_present: BTreeSet<String>,
    /// Unlabeled pairs observed, as `(name, owner-domain)` (folded into
    /// a distinct sketch, never retained).
    pub unlabeled_pairs: Vec<(String, String)>,
    /// Unblocked set events on unlabeled pairs.
    pub unlabeled_sets: u64,
    /// Every cookie name each organization shipped off-site this visit
    /// (bulk included) — feeds the global breadth profile that
    /// separates fixed-list harvesters from jar samplers.
    pub shipped_names: BTreeMap<String, BTreeSet<String>>,
}

/// Which extraction stages to run — the bench harness times the set
/// replay and the request-matching stage separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stages {
    /// Ownership replay + value/lifetime features only.
    SetsOnly,
    /// Everything, including exfil matching over requests.
    Full,
}

/// Whether `seg` looks like a minted identifier rather than a
/// timestamp or counter. Pure-decimal segments need ≥ 9 digits (8-digit
/// counters stay out, GA's 9-digit client id stays in) and must not
/// sit in the epoch-seconds or epoch-milliseconds ranges.
fn id_segment(seg: &str) -> bool {
    if !seg.bytes().all(|b| b.is_ascii_digit()) {
        return true; // hex/uuid/alpha segments of ≥8 chars are ids
    }
    if seg.len() < 9 {
        return false; // short counters
    }
    match seg.parse::<u64>() {
        // epoch seconds (2001–2039) or epoch millis (2001–2096).
        Ok(n) => {
            !(1_000_000_000..2_200_000_000).contains(&n)
                && !(1_000_000_000_000..4_000_000_000_000).contains(&n)
        }
        Err(_) => true, // > u64: a long numeric id
    }
}

/// Structured values (consent strings: `k=v&k=v`) are settings blobs,
/// not identifiers — even though they may embed id-shaped segments.
fn structured_value(value: &str) -> bool {
    value.contains('=') && value.contains('&')
}

/// The identifier candidates of one cookie value.
fn id_segments(value: &str) -> Vec<&str> {
    if structured_value(value) {
        return Vec::new();
    }
    split_segments(value)
        .into_iter()
        .filter(|s| id_segment(s))
        .collect()
}

/// Extracts one visit's facts. Pure: same log + engine → same facts,
/// independent of any other visit (the order-independence property the
/// proptest pins).
pub fn extract(engine: &DetectEngine, log: &VisitLog, stages: Stages) -> VisitFacts {
    let site = log.site_domain.as_str();
    let site_entity = engine.entity_of(site);
    let mut out = VisitFacts::default();

    // -- set replay: ownership, labels, value/lifetime features -------
    // live owner per cookie name: (actor domain, key when labeled)
    let mut live: HashMap<&str, (String, Option<DetectKey>)> = HashMap::new();
    // names a foreign actor deleted, with the original owner domain
    let mut foreign_deleted: HashMap<&str, String> = HashMap::new();
    let mut unlabeled_seen: BTreeSet<(String, String)> = BTreeSet::new();

    for ev in &log.sets {
        if ev.blocked {
            continue;
        }
        let actor = ev.actor.as_deref().unwrap_or(site);
        match ev.kind {
            WriteKind::Create => {
                let owner = classify_owner(engine, actor, ev.actor_url.as_deref(), site);
                let label = match &owner {
                    Owner::Site => engine.label_for(&ev.name, site),
                    _ => engine.label_for(&ev.name, actor),
                };
                let key = label.map(|_| DetectKey {
                    name: ev.name.clone(),
                    owner: owner.clone(),
                });
                if let Some(key) = &key {
                    let facts = out.keys.entry(key.clone()).or_default();
                    facts.label = max_label(facts.label, label);
                    facts.id_value |= !id_segments(&ev.value).is_empty();
                    facts.persistent |= ev
                        .max_age_s
                        .is_some_and(|a| a >= engine.config().persist_cutoff_s);
                    facts.values.push(ev.value.clone());
                    // respawn: this create resurrects a foreign-deleted
                    // cookie under its original owner
                    if let Some(orig) = foreign_deleted.get(ev.name.as_str()) {
                        if engine.same_entity(orig, actor) {
                            facts.respawned = true;
                        }
                    }
                } else {
                    out.unlabeled_sets += 1;
                    unlabeled_seen.insert((ev.name.clone(), actor.to_string()));
                }
                live.insert(&ev.name, (actor.to_string(), key));
            }
            WriteKind::Overwrite => {
                match live.get(ev.name.as_str()) {
                    Some((_, Some(key))) => {
                        // ownership is sticky: the overwrite feeds the
                        // original pair's features
                        let facts = out.keys.entry(key.clone()).or_default();
                        facts.id_value |= !id_segments(&ev.value).is_empty();
                        facts.persistent |= ev
                            .max_age_s
                            .is_some_and(|a| a >= engine.config().persist_cutoff_s);
                        facts.values.push(ev.value.clone());
                    }
                    Some((_, None)) => out.unlabeled_sets += 1,
                    None => {
                        // blind overwrite of an invisible cookie:
                        // treat as a create by this actor
                        let owner = classify_owner(engine, actor, ev.actor_url.as_deref(), site);
                        let label = match &owner {
                            Owner::Site => engine.label_for(&ev.name, site),
                            _ => engine.label_for(&ev.name, actor),
                        };
                        let key = label.map(|_| DetectKey {
                            name: ev.name.clone(),
                            owner,
                        });
                        if let Some(key) = &key {
                            let facts = out.keys.entry(key.clone()).or_default();
                            facts.label = max_label(facts.label, label);
                            facts.id_value |= !id_segments(&ev.value).is_empty();
                            facts.persistent |= ev
                                .max_age_s
                                .is_some_and(|a| a >= engine.config().persist_cutoff_s);
                            facts.values.push(ev.value.clone());
                        } else {
                            out.unlabeled_sets += 1;
                            unlabeled_seen.insert((ev.name.clone(), actor.to_string()));
                        }
                        live.insert(&ev.name, (actor.to_string(), key));
                    }
                }
            }
            WriteKind::Delete => {
                if let Some((owner_domain, _)) = live.get(ev.name.as_str()) {
                    if !engine.same_entity(owner_domain, actor) {
                        foreign_deleted.insert(&ev.name, owner_domain.clone());
                    }
                }
            }
        }
    }
    out.unlabeled_pairs = unlabeled_seen.into_iter().collect();

    if stages == Stages::SetsOnly {
        return out;
    }

    // -- co-presence: which foreign organizations ran scripts here ----
    for inc in &log.inclusions {
        if let Some(d) = &inc.domain {
            let e = engine.entity_of(d);
            if e != site_entity {
                out.foreign_present.insert(e);
            }
        }
    }

    // -- exfil matching: who ships which key's value where ------------
    let mut forms: Vec<(&DetectKey, EncodedForms)> = Vec::new();
    for (key, facts) in &out.keys {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for value in &facts.values {
            for seg in id_segments(value) {
                if seen.insert(seg) {
                    forms.push((key, EncodedForms::of(seg)));
                }
            }
        }
    }
    if forms.is_empty() {
        return out;
    }
    let id_keys_in_visit = forms
        .iter()
        .map(|(key, _)| *key)
        .collect::<BTreeSet<_>>()
        .len();

    let mut ships: Vec<(DetectKey, String, bool)> = Vec::new(); // (key, initiator entity, bulk)
    for req in &log.requests {
        let Some(dest) = &req.dest_domain else {
            continue;
        };
        if dest.eq_ignore_ascii_case(site) {
            continue; // first-party traffic is not exfiltration
        }
        let initiator = req.initiator.as_deref().unwrap_or(site);
        let init_entity = engine.entity_of(initiator);
        let mut matched: BTreeSet<&DetectKey> = BTreeSet::new();
        for (key, form) in &forms {
            if form.appears_in(&req.url) {
                matched.insert(key);
            }
        }
        // Bulk = many keys in absolute terms, or most of what this
        // visit's jar had to offer (samplers empty small jars without
        // ever hitting the absolute threshold).
        let bulk = matched.len() >= engine.config().bulk_distinct_keys
            || (matched.len() >= 2
                && matched.len() as f64
                    >= engine.config().bulk_jar_fraction * id_keys_in_visit as f64);
        for key in matched {
            out.shipped_names
                .entry(init_entity.clone())
                .or_default()
                .insert(key.name.clone());
            ships.push((key.clone(), init_entity.clone(), bulk));
        }
    }
    for (key, init_entity, bulk) in ships {
        let owner_is_initiator = match &key.owner {
            Owner::Site | Owner::Cloaked => init_entity == site_entity,
            Owner::Entity(e) => *e == init_entity,
        };
        let facts = out.keys.get_mut(&key).expect("key came from out.keys");
        if owner_is_initiator {
            // The owner shipping its own cookie off-site is always
            // deliberate — bulk or not (self-hosted analytics ships the
            // whole jar).
            facts.self_ship = true;
        } else if !bulk {
            facts.foreign_ships.insert(init_entity);
        }
    }
    out
}

/// Owner classification for one write.
fn classify_owner(
    engine: &DetectEngine,
    actor: &str,
    actor_url: Option<&str>,
    site: &str,
) -> Owner {
    if actor.eq_ignore_ascii_case(site) {
        return Owner::Site;
    }
    // Foreign attribution from a first-party script URL = the
    // `resolve_cnames` crawl uncloaked a CNAME alias.
    let url_domain = actor_url.and_then(cg_url::url_domain);
    if url_domain
        .as_deref()
        .is_some_and(|d| d.eq_ignore_ascii_case(site))
    {
        return Owner::Cloaked;
    }
    Owner::Entity(engine.entity_of(actor))
}

/// Tracker wins when two owners of a merged key disagree.
fn max_label(a: Option<CookieLabel>, b: Option<CookieLabel>) -> Option<CookieLabel> {
    match (a, b) {
        (Some(CookieLabel::Tracker), _) | (_, Some(CookieLabel::Tracker)) => {
            Some(CookieLabel::Tracker)
        }
        (Some(l), _) => Some(l),
        (None, l) => l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_segment_rejects_timestamps_and_counters() {
        assert!(id_segment("444332364")); // GA 9-digit client id
        assert!(!id_segment("1746838827")); // epoch seconds
        assert!(!id_segment("1746746266109")); // epoch millis
        assert!(!id_segment("12345678")); // 8-digit counter
        assert!(id_segment("868308499845957651")); // FBP 18-digit id
        assert!(id_segment("deadbeefcafe")); // hex
    }

    #[test]
    fn consent_strings_have_no_candidates() {
        let v = "isGpcEnabled=0&datestamp=99&consentId=aaaabbbb-cccc-dddd-eeee-ffff00001111";
        assert!(id_segments(v).is_empty());
        assert_eq!(id_segments("GA1.1.444332364.1746838827"), vec!["444332364"]);
    }
}
