//! First-party tracking-cookie detection (the COOKIEGRAPH-style
//! classifier this reproduction scores against generator ground truth).
//!
//! CookieGuard *partitions* cookies by owner; this crate *classifies*
//! them. Each first-party cookie observed in a crawl is reduced to the
//! feature set the detection literature uses — setter identity
//! (organization-resolved, CNAME-uncloaked), identifier-shaped values,
//! requested lifetime, value stability, respawn behaviour, and
//! read/exfil fan-out (who ships the value off-site, owner vs foreign
//! organizations) — and a small compiled decision-rule classifier
//! flags the tracking identifiers. Ground truth comes from
//! [`cg_webgen::CookieLabels`], which derives every generated cookie's
//! intent from realized vendor behaviour, so precision/recall are exact
//! rather than sampled.
//!
//! The pipeline consumes crawls in both of the repo's modes: resident
//! ([`DetectStats::from_logs`] over a
//! [`Dataset`](cg_analysis::Dataset)) and streaming
//! ([`DetectStats::from_store_with`] over the binary store's parallel
//! per-chunk folds). Per-key state exists only for labeled pairs, so
//! the streaming path is flat-RSS in crawl size.
//!
//! **Layer:** analysis (consumes `cg-instrument` logs and
//! `cg-crawlstore` streams; compiled from `cg-webgen` ground truth;
//! never touches the simulator).
//! **Invariants:** the fold is a commutative monoid and every ratio is
//! derived once at report time, so resident, streamed, and parallel
//! folds serialize byte-identical reports at any thread count or read
//! backend; per-visit extraction is pure (visit-order independent).
//! **Entry points:** [`DetectEngine::compile`], [`DetectStats`],
//! [`DetectReport::from_stats`].

#![warn(missing_docs)]

pub mod engine;
pub mod features;
pub mod report;
pub mod stats;

pub use engine::{DetectConfig, DetectEngine};
pub use features::{DetectKey, Owner, Stages, VisitFacts};
pub use report::{DetectReport, FlagReason, KeyRow, Scores, Verdict};
pub use stats::{DetectStats, ForeignAgg, KeyAgg};
