//! Verdicts and scoring: turns merged [`KeyAgg`]s into a deterministic
//! detection report.
//!
//! All ratios are computed here, once, from merged integer counts —
//! never inside the fold — so the serialized report is byte-identical
//! for any fold order, thread count, or read backend that produced the
//! same aggregates.
//!
//! Two scoring granularities are emitted:
//!
//! * **key-level** — each `(name, owner)` key counts once; sensitive to
//!   rare long-tail keys that never reach `min_support`;
//! * **instance-level** — each key weighted by the sites it appeared
//!   on, matching how the field studies score per cookie *instance*.
//!   This is the granularity the acceptance floors apply to.
//!
//! The guard-vs-detector matrix compares what CookieGuard would
//! partition anyway (every foreign-owned cookie, flagged or not)
//! against what the detector flags: its `detector_only` cell is
//! exactly the first-party impersonation the paper motivates —
//! site-owned cookies (self-hosted analytics) a partitioning guard
//! never touches.

use crate::engine::DetectConfig;
use crate::features::Owner;
use crate::stats::{DetectStats, KeyAgg};
use cg_webgen::CookieLabel;
use serde::Serialize;
use std::collections::BTreeSet;

/// Why a key was flagged (the first rule that fired, in fixed order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FlagReason {
    /// A foreign delete was undone by the owner within a visit.
    Respawn,
    /// The owner ships the value off-site at ≥ `theta_self` of its
    /// sites.
    SelfShip,
    /// Some single foreign organization ships the value at ≥
    /// `theta_foreign` of the sites where it is co-present.
    ForeignHarvest,
}

/// The detector's decision for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Classified as a tracking cookie.
    pub flagged: bool,
    /// First rule that fired, when flagged.
    pub reason: Option<FlagReason>,
}

/// Applies the decision rules to one merged aggregate. Pure and
/// integer-driven: two identical aggregates always yield the same
/// verdict. `broad_shippers` lists the organizations whose crawl-wide
/// shipped-name breadth exceeded [`DetectConfig::broad_shipper_names`]:
/// their foreign-harvest evidence is discounted (they ship whatever
/// exists, so co-shipping one key is not targeting), while self-ship
/// evidence is never discounted — an owner exfiltrating its own cookie
/// is deliberate regardless of how much else it ships.
pub fn verdict(config: &DetectConfig, agg: &KeyAgg, broad_shippers: &BTreeSet<String>) -> Verdict {
    let none = Verdict {
        flagged: false,
        reason: None,
    };
    if agg.sites_seen == 0 {
        return none;
    }
    let sites = agg.sites_seen as f64;
    // Gate: a tracking identifier must look like one (id-shaped value)
    // and outlive the visit (persistent lifetime) on most sites.
    if (agg.id_sites as f64) < config.id_ratio_min * sites
        || (agg.persistent_sites as f64) < config.persistent_ratio_min * sites
    {
        return none;
    }
    // One observed respawn is already deliberate — no support floor.
    if agg.respawn_sites >= 1 {
        return Verdict {
            flagged: true,
            reason: Some(FlagReason::Respawn),
        };
    }
    if agg.sites_seen < config.min_support {
        return none;
    }
    if agg.self_ship_sites as f64 >= config.theta_self * sites {
        return Verdict {
            flagged: true,
            reason: Some(FlagReason::SelfShip),
        };
    }
    let foreign_hit = agg.foreign.iter().any(|(entity, f)| {
        !broad_shippers.contains(entity)
            && f.co_present >= config.min_support
            && f.ships as f64 >= config.theta_foreign * f.co_present as f64
    });
    if foreign_hit {
        return Verdict {
            flagged: true,
            reason: Some(FlagReason::ForeignHarvest),
        };
    }
    none
}

/// One scored key in the report, with the evidence behind its verdict.
#[derive(Debug, Clone, Serialize)]
pub struct KeyRow {
    /// Cookie name.
    pub name: String,
    /// Owner class rendering (`(site)`, `(cloaked)`, or entity name).
    pub owner: String,
    /// Ground-truth label.
    pub label: &'static str,
    /// Sites the key was written on.
    pub sites_seen: u64,
    /// Sites with an identifier-shaped value.
    pub id_sites: u64,
    /// Sites with a persistent lifetime.
    pub persistent_sites: u64,
    /// Sites with a respawn sequence.
    pub respawn_sites: u64,
    /// Sites where the owner shipped the value off-site.
    pub self_ship_sites: u64,
    /// Distinct values observed (sketch estimate).
    pub distinct_values: u64,
    /// Total value writes.
    pub value_writes: u64,
    /// Best-evidenced foreign harvester: `(entity, ships, co_present)`
    /// among entities at `min_support`, by rate.
    pub top_foreign: Option<(String, u64, u64)>,
    /// Detector decision.
    pub flagged: bool,
    /// First rule that fired.
    pub reason: Option<FlagReason>,
}

/// Confusion counts plus the derived scores, at one granularity.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Scores {
    /// Flagged trackers.
    pub tp: u64,
    /// Flagged functionals.
    pub fp: u64,
    /// Missed trackers.
    pub fn_: u64,
    /// Unflagged functionals.
    pub tn: u64,
    /// `tp / (tp + fp)` (1.0 when nothing was flagged).
    pub precision: f64,
    /// `tp / (tp + fn)` (1.0 when no trackers exist).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Scores {
    fn add(&mut self, label: CookieLabel, flagged: bool, weight: u64) {
        match (label, flagged) {
            (CookieLabel::Tracker, true) => self.tp += weight,
            (CookieLabel::Functional, true) => self.fp += weight,
            (CookieLabel::Tracker, false) => self.fn_ += weight,
            (CookieLabel::Functional, false) => self.tn += weight,
        }
    }

    fn finish(&mut self) {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        self.precision = ratio(self.tp, self.tp + self.fp);
        self.recall = ratio(self.tp, self.tp + self.fn_);
        self.f1 = if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        };
    }
}

/// Guard-vs-detector comparison: what a partitioning guard isolates
/// (every foreign-owned cookie) against what the detector flags.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct GuardMatrix {
    /// Foreign-owned and flagged (keys).
    pub both: u64,
    /// Foreign-owned, not flagged (keys) — partitioned functionals.
    pub guard_only: u64,
    /// Site-owned but flagged (keys) — first-party impersonation the
    /// guard misses.
    pub detector_only: u64,
    /// Site-owned, not flagged (keys).
    pub neither: u64,
    /// Same four cells weighted by sites seen.
    pub both_instances: u64,
    /// Foreign-owned, not flagged (instances).
    pub guard_only_instances: u64,
    /// Site-owned but flagged (instances).
    pub detector_only_instances: u64,
    /// Site-owned, not flagged (instances).
    pub neither_instances: u64,
}

/// The full detection report: deterministic serialization (sorted rows,
/// integer evidence, ratios derived once).
#[derive(Debug, Clone, Serialize)]
pub struct DetectReport {
    /// The thresholds that produced these verdicts.
    pub config: DetectConfig,
    /// Visits folded, complete or not.
    pub crawled: u64,
    /// Visits retained by the completeness filter.
    pub complete: u64,
    /// Scored keys, sorted by (name, owner).
    pub keys: Vec<KeyRow>,
    /// Key-level confusion and scores.
    pub key_scores: Scores,
    /// Instance-level (site-weighted) confusion and scores — the
    /// acceptance-floor granularity.
    pub instance_scores: Scores,
    /// Guard-vs-detector comparison matrix.
    pub guard_matrix: GuardMatrix,
    /// Distinct unlabeled pairs observed (outside the scored universe).
    pub unlabeled_pairs: u64,
    /// Writes on unlabeled pairs.
    pub unlabeled_sets: u64,
    /// Organizations whose shipped-name breadth crossed
    /// [`DetectConfig::broad_shipper_names`] — their foreign-harvest
    /// evidence was discounted.
    pub broad_shippers: u64,
}

impl DetectReport {
    /// Scores merged fold state. Pure: identical aggregates in,
    /// byte-identical JSON out.
    pub fn from_stats(stats: &DetectStats<'_>) -> DetectReport {
        let config = stats.engine().config().clone();
        let broad: BTreeSet<String> = stats
            .shipper_names
            .iter()
            .filter(|(_, sketch)| sketch.estimate() > config.broad_shipper_names)
            .map(|(entity, _)| entity.clone())
            .collect();
        let mut keys = Vec::with_capacity(stats.keys.len());
        let mut key_scores = Scores::default();
        let mut instance_scores = Scores::default();
        let mut guard = GuardMatrix::default();
        for (key, agg) in &stats.keys {
            let v = verdict(&config, agg, &broad);
            key_scores.add(agg.label, v.flagged, 1);
            instance_scores.add(agg.label, v.flagged, agg.sites_seen);
            let isolated = matches!(key.owner, Owner::Entity(_) | Owner::Cloaked);
            match (isolated, v.flagged) {
                (true, true) => {
                    guard.both += 1;
                    guard.both_instances += agg.sites_seen;
                }
                (true, false) => {
                    guard.guard_only += 1;
                    guard.guard_only_instances += agg.sites_seen;
                }
                (false, true) => {
                    guard.detector_only += 1;
                    guard.detector_only_instances += agg.sites_seen;
                }
                (false, false) => {
                    guard.neither += 1;
                    guard.neither_instances += agg.sites_seen;
                }
            }
            let top_foreign = agg
                .foreign
                .iter()
                .filter(|(_, f)| f.co_present >= config.min_support)
                .max_by(|(ea, a), (eb, b)| {
                    // rate comparison via cross-multiplication (exact),
                    // entity name as the deterministic tie-break
                    (a.ships * b.co_present, ea.as_str())
                        .cmp(&(b.ships * a.co_present, eb.as_str()))
                })
                .map(|(e, f)| (e.clone(), f.ships, f.co_present));
            keys.push(KeyRow {
                name: key.name.clone(),
                owner: key.owner.as_str().to_string(),
                label: agg.label.as_str(),
                sites_seen: agg.sites_seen,
                id_sites: agg.id_sites,
                persistent_sites: agg.persistent_sites,
                respawn_sites: agg.respawn_sites,
                self_ship_sites: agg.self_ship_sites,
                distinct_values: agg.distinct_values.estimate(),
                value_writes: agg.value_writes,
                top_foreign,
                flagged: v.flagged,
                reason: v.reason,
            });
        }
        key_scores.finish();
        instance_scores.finish();
        DetectReport {
            config,
            crawled: stats.crawled,
            complete: stats.complete,
            keys,
            key_scores,
            instance_scores,
            guard_matrix: guard,
            unlabeled_pairs: stats.unlabeled_pairs.estimate(),
            unlabeled_sets: stats.unlabeled_sets,
            broad_shippers: broad.len() as u64,
        }
    }

    /// Canonical JSON (the byte-identity surface the differential tests
    /// compare).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human-readable table with grep-stable anchors (`detect.…`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "detect.crawled {} detect.complete {}",
            self.crawled, self.complete
        );
        let _ = writeln!(
            out,
            "detect.keys {} detect.unlabeled_pairs {} detect.broad_shippers {}",
            self.keys.len(),
            self.unlabeled_pairs,
            self.broad_shippers
        );
        let _ = writeln!(
            out,
            "{:<24} {:<20} {:>6} {:>5} {:>5} {:>5} {:>5}  label       verdict",
            "name", "owner", "sites", "id", "pers", "resp", "self"
        );
        for row in &self.keys {
            let verdict = match (row.flagged, row.reason) {
                (true, Some(FlagReason::Respawn)) => "FLAG respawn",
                (true, Some(FlagReason::SelfShip)) => "FLAG self-ship",
                (true, Some(FlagReason::ForeignHarvest)) => "FLAG foreign",
                _ => "-",
            };
            let _ = writeln!(
                out,
                "{:<24} {:<20} {:>6} {:>5} {:>5} {:>5} {:>5}  {:<10}  {}",
                row.name,
                row.owner,
                row.sites_seen,
                row.id_sites,
                row.persistent_sites,
                row.respawn_sites,
                row.self_ship_sites,
                row.label,
                verdict
            );
        }
        for (tag, s) in [
            ("key", &self.key_scores),
            ("instance", &self.instance_scores),
        ] {
            let _ = writeln!(
                out,
                "detect.{tag}.tp {} detect.{tag}.fp {} detect.{tag}.fn {} detect.{tag}.tn {}",
                s.tp, s.fp, s.fn_, s.tn
            );
            let _ = writeln!(
                out,
                "detect.{tag}.precision {:.4} detect.{tag}.recall {:.4} detect.{tag}.f1 {:.4}",
                s.precision, s.recall, s.f1
            );
        }
        let g = &self.guard_matrix;
        let _ = writeln!(
            out,
            "detect.guard.both {} detect.guard.guard_only {} detect.guard.detector_only {} detect.guard.neither {}",
            g.both, g.guard_only, g.detector_only, g.neither
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ForeignAgg;

    fn agg(sites: u64, id: u64, pers: u64) -> KeyAgg {
        KeyAgg {
            label: CookieLabel::Tracker,
            sites_seen: sites,
            id_sites: id,
            persistent_sites: pers,
            ..KeyAgg::default()
        }
    }

    fn no_broad() -> BTreeSet<String> {
        BTreeSet::new()
    }

    #[test]
    fn gates_block_non_identifier_cookies() {
        let cfg = DetectConfig::default();
        // persistent + shipped, but never id-shaped → never flagged
        let mut a = agg(10, 2, 10);
        a.self_ship_sites = 10;
        assert!(!verdict(&cfg, &a, &no_broad()).flagged);
        // id-shaped + shipped but session-lifetime → never flagged
        let mut b = agg(10, 10, 2);
        b.self_ship_sites = 10;
        assert!(!verdict(&cfg, &b, &no_broad()).flagged);
    }

    #[test]
    fn respawn_needs_no_support_floor() {
        let cfg = DetectConfig::default();
        let mut a = agg(1, 1, 1);
        a.respawn_sites = 1;
        let v = verdict(&cfg, &a, &no_broad());
        assert!(v.flagged);
        assert_eq!(v.reason, Some(FlagReason::Respawn));
    }

    #[test]
    fn rate_paths_respect_min_support() {
        let cfg = DetectConfig::default();
        // below min_support: strong rates, still unflagged
        let mut a = agg(2, 2, 2);
        a.self_ship_sites = 2;
        assert!(!verdict(&cfg, &a, &no_broad()).flagged);
        // at support, self-ship rate fires
        let mut b = agg(10, 10, 10);
        b.self_ship_sites = 2; // 0.20 ≥ θ_self 0.18
        assert_eq!(
            verdict(&cfg, &b, &no_broad()).reason,
            Some(FlagReason::SelfShip)
        );
        // foreign path: rate is conditional on co-presence
        let mut c = agg(20, 20, 20);
        c.foreign.insert(
            "AdCo".into(),
            ForeignAgg {
                co_present: 10,
                ships: 3, // 0.30 ≥ θ_foreign 0.18
            },
        );
        assert_eq!(
            verdict(&cfg, &c, &no_broad()).reason,
            Some(FlagReason::ForeignHarvest)
        );
        // same ships over a thin denominator is ignored
        let mut d = agg(20, 20, 20);
        d.foreign.insert(
            "AdCo".into(),
            ForeignAgg {
                co_present: 2,
                ships: 2,
            },
        );
        assert!(!verdict(&cfg, &d, &no_broad()).flagged);
    }

    #[test]
    fn broad_shippers_lose_foreign_evidence_but_not_self_ship() {
        let cfg = DetectConfig::default();
        let broad: BTreeSet<String> = ["AdCo".to_string()].into();
        // the only foreign evidence comes from a broad shipper → ignored
        let mut a = agg(20, 20, 20);
        a.foreign.insert(
            "AdCo".into(),
            ForeignAgg {
                co_present: 10,
                ships: 9,
            },
        );
        assert!(!verdict(&cfg, &a, &broad).flagged);
        // a second, narrow entity with the same evidence still fires
        let mut b = a.clone();
        b.foreign.insert(
            "NarrowCo".into(),
            ForeignAgg {
                co_present: 10,
                ships: 9,
            },
        );
        assert_eq!(
            verdict(&cfg, &b, &broad).reason,
            Some(FlagReason::ForeignHarvest)
        );
        // self-ship is never discounted, even for a broad owner
        let mut c = agg(10, 10, 10);
        c.self_ship_sites = 10;
        assert_eq!(verdict(&cfg, &c, &broad).reason, Some(FlagReason::SelfShip));
    }

    #[test]
    fn scores_handle_empty_denominators() {
        let mut s = Scores::default();
        s.finish();
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }
}
