//! The compiled detector: thresholds plus the lookup tables every
//! visit consults.
//!
//! Mirrors the `GuardEngine` compile-once pattern: all string-keyed
//! registry state (ground-truth labels, entity grouping) is flattened
//! into hash tables at [`DetectEngine::compile`] time, so the per-visit
//! fold does name-keyed lookups without rebuilding anything. The
//! entity map is additionally compiled to the interned
//! `DomainId → EntityId` table (`cg_entity::CompiledEntityMap`) for the
//! same-organization checks on the hot path.

use cg_entity::{CompiledEntityMap, EntityMap};
use cg_webgen::{CookieLabel, CookieLabels};
use serde::Serialize;
use std::collections::HashMap;

/// Detection thresholds. All knobs that decide a verdict live here so
/// tests (and the scenario hard cases, which run on single visits) can
/// pin them explicitly.
#[derive(Debug, Clone, Serialize)]
pub struct DetectConfig {
    /// Requested lifetime (seconds) at or above which a write counts
    /// as persistent. Matches the ground-truth cutoff
    /// (`cg_webgen::labels::PERSIST_CUTOFF_S`).
    pub persist_cutoff_s: i64,
    /// Fraction of a key's sites that must carry an identifier-shaped
    /// value.
    pub id_ratio_min: f64,
    /// Fraction of a key's sites on which a persistent lifetime was
    /// requested.
    pub persistent_ratio_min: f64,
    /// Self-ship rate floor: fraction of the key's sites on which its
    /// own owner shipped the value off-site. Calibrated below the
    /// long-tail deliberate-exfil rate (~0.24 conditional: 0.30 fire
    /// probability × the plain-encoding share) with margin for
    /// binomial noise, and above the bulk-sampler own-cookie rate
    /// (~0.10).
    pub theta_self: f64,
    /// Foreign-harvest rate floor: the conditional rate at which some
    /// single foreign entity ships the value when co-present. Only
    /// entities that are not broad shippers (see
    /// [`DetectConfig::broad_shipper_names`]) count.
    pub theta_foreign: f64,
    /// Minimum site support before a rate is trusted (respawn evidence
    /// is exempt — one observed respawn is already deliberate).
    pub min_support: u64,
    /// A request URL carrying identifier segments of at least this many
    /// distinct cookies is a bulk beacon: it is discounted as
    /// *foreign* harvest evidence (indiscriminate payload stuffing),
    /// though it still counts as a self-ship.
    pub bulk_distinct_keys: usize,
    /// A request is also bulk when it carries at least this fraction of
    /// the visit's identifier-bearing keys (and at least two) — the
    /// absolute threshold misses jar-emptying samplers on small jars.
    pub bulk_jar_fraction: f64,
    /// An organization that ships more than this many *distinct* cookie
    /// names across the crawl is a broad shipper: its per-request picks
    /// may be few, but globally it harvests whatever exists, which is
    /// bulk behaviour — its foreign-harvest evidence is discounted.
    /// Deliberate harvesters ship small fixed name lists everywhere.
    pub broad_shipper_names: u64,
}

impl Default for DetectConfig {
    fn default() -> DetectConfig {
        DetectConfig {
            persist_cutoff_s: cg_webgen::labels::PERSIST_CUTOFF_S,
            id_ratio_min: 0.5,
            persistent_ratio_min: 0.5,
            theta_self: 0.18,
            theta_foreign: 0.18,
            min_support: 4,
            bulk_distinct_keys: 4,
            bulk_jar_fraction: 0.6,
            broad_shipper_names: 16,
        }
    }
}

/// The compiled detector. Build once ([`DetectEngine::compile`]), share
/// across fold workers (`Sync`), apply per visit.
pub struct DetectEngine {
    config: DetectConfig,
    entities: EntityMap,
    compiled_entities: CompiledEntityMap,
    /// name → [(owner vendor domain, label)] — the registry table,
    /// re-keyed by name so hot-path lookups never allocate a tuple key.
    by_name: HashMap<String, Vec<(String, CookieLabel)>>,
    /// Site-builder synthetics, labeled by name alone.
    overrides: HashMap<String, CookieLabel>,
}

impl DetectEngine {
    /// Flattens the ground truth and entity map into the hot-path
    /// tables. Deterministic for a given input.
    pub fn compile(
        labels: &CookieLabels,
        entities: EntityMap,
        config: DetectConfig,
    ) -> DetectEngine {
        let mut by_name: HashMap<String, Vec<(String, CookieLabel)>> = HashMap::new();
        for (name, owner, label) in labels.pairs() {
            by_name
                .entry(name.to_string())
                .or_default()
                .push((owner.to_string(), label));
        }
        let overrides: HashMap<String, CookieLabel> = labels
            .name_overrides()
            .map(|(n, l)| (n.to_string(), l))
            .collect();
        let compiled_entities = CompiledEntityMap::compile(&entities);
        DetectEngine {
            config,
            entities,
            compiled_entities,
            by_name,
            overrides,
        }
    }

    /// The thresholds this engine applies.
    pub fn config(&self) -> &DetectConfig {
        &self.config
    }

    /// The string-level entity map (aggregation keys are entity names).
    pub fn entities(&self) -> &EntityMap {
        &self.entities
    }

    /// The ground-truth label for cookie `name` as written by
    /// `actor_domain`, or `None` when the pair is outside the scored
    /// universe.
    pub fn label_for(&self, name: &str, actor_domain: &str) -> Option<CookieLabel> {
        if let Some(&l) = self.overrides.get(name) {
            return Some(l);
        }
        self.by_name.get(name).and_then(|owners| {
            owners
                .iter()
                .find(|(o, _)| o.eq_ignore_ascii_case(actor_domain))
                .map(|&(_, l)| l)
        })
    }

    /// Same-organization check through the interned
    /// `DomainId → EntityId` table, with the guard's convention for
    /// unknown domains: identity is plain domain equality, grouping
    /// only applies to mapped domains.
    pub fn same_entity(&self, a: &str, b: &str) -> bool {
        a.eq_ignore_ascii_case(b)
            || self
                .compiled_entities
                .same_entity(cg_url::intern(a), cg_url::intern(b))
    }

    /// Canonical entity name for aggregation keys (the domain itself
    /// when unmapped).
    pub fn entity_of(&self, domain: &str) -> String {
        self.entities.entity_of(domain)
    }

    /// Every labeled (name, owner-domain, label) triple, for coverage
    /// accounting.
    pub fn labeled_names(&self) -> impl Iterator<Item = (&str, &str, CookieLabel)> {
        self.by_name.iter().flat_map(|(name, owners)| {
            owners
                .iter()
                .map(move |(o, l)| (name.as_str(), o.as_str(), *l))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::{GenConfig, WebGenerator};

    fn engine() -> DetectEngine {
        let gen = WebGenerator::new(GenConfig::small(100), 3);
        let labels = CookieLabels::derive(gen.registry());
        DetectEngine::compile(
            &labels,
            cg_entity::builtin_entity_map(),
            DetectConfig::default(),
        )
    }

    #[test]
    fn compiled_lookup_matches_registry_labels() {
        let e = engine();
        assert_eq!(
            e.label_for("_fbp", "facebook.net"),
            Some(CookieLabel::Tracker)
        );
        assert_eq!(
            e.label_for("OptanonConsent", "cookielaw.org"),
            Some(CookieLabel::Functional)
        );
        assert_eq!(e.label_for("_fbp", "unrelated.example"), None);
        // Overrides resolve regardless of owner.
        assert_eq!(
            e.label_for("_cloaked_uid", "whatever.example"),
            Some(CookieLabel::Tracker)
        );
    }

    #[test]
    fn entity_grouping_follows_builtin_map() {
        let e = engine();
        assert!(e.same_entity("facebook.net", "fbcdn.net"));
        assert!(e.same_entity("nobody.example", "nobody.example"));
        assert!(!e.same_entity("nobody-a.example", "nobody-b.example"));
    }
}
