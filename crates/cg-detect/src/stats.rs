//! The detection fold: a commutative monoid over visits, engine-shared.
//!
//! [`DetectStats`] is to the detector what
//! [`StreamStats`](cg_analysis::StreamStats) is to the crawl census:
//! each visit is reduced to [`VisitFacts`](crate::features::VisitFacts)
//! and folded into per-key aggregates, then dropped. Per-key state
//! exists only for registry-labeled pairs, so memory is bounded by the
//! label table (a few hundred keys), never by crawl size — the flat-RSS
//! property the streaming acceptance check pins.
//!
//! `merge` is associative and commutative (integer sums, max-merge
//! labels, order-independent sketch unions), and every ratio is
//! computed once at report time from merged integers — which is why
//! resident folds, streamed folds, and parallel per-segment folds at
//! any thread count serialize byte-identically.

use crate::engine::DetectEngine;
use crate::features::{extract, DetectKey, Owner, Stages};
use cg_analysis::DistinctSketch;
use cg_crawlstore::{ReadBackend, StoreError};
use cg_instrument::VisitLog;
use cg_telemetry::{global, Class, Counter};
use cg_webgen::CookieLabel;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::OnceLock;

struct DetectMetrics {
    logs_folded: Counter,
}

fn detect_metrics() -> &'static DetectMetrics {
    static METRICS: OnceLock<DetectMetrics> = OnceLock::new();
    METRICS.get_or_init(|| DetectMetrics {
        logs_folded: global().counter("detect.logs_folded", Class::Workload),
    })
}

/// One foreign organization's interaction with one key: how often it
/// was co-present (its scripts ran while the cookie existed) and on how
/// many of those sites it shipped the value off-site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForeignAgg {
    /// Sites where this organization's scripts were included alongside
    /// the key (the rate denominator).
    pub co_present: u64,
    /// Sites where it shipped the key's value (non-bulk requests only).
    pub ships: u64,
}

/// Cross-site aggregate for one labeled key. All fields are integer
/// site counts; ratios are derived at report time.
#[derive(Debug, Clone)]
pub struct KeyAgg {
    /// Ground truth (Tracker wins across merged owners).
    pub label: CookieLabel,
    /// Sites on which the key was written at all.
    pub sites_seen: u64,
    /// Sites where a written value carried an identifier segment.
    pub id_sites: u64,
    /// Sites where a write requested a persistent lifetime.
    pub persistent_sites: u64,
    /// Sites with a foreign-delete-then-owner-recreate sequence.
    pub respawn_sites: u64,
    /// Sites where the owner itself shipped the value off-site.
    pub self_ship_sites: u64,
    /// Per foreign organization: co-presence and harvest counts.
    pub foreign: BTreeMap<String, ForeignAgg>,
    /// Distinct values observed across all sites (value stability).
    pub distinct_values: DistinctSketch,
    /// Total value-writes observed (the stability denominator).
    pub value_writes: u64,
}

impl Default for KeyAgg {
    fn default() -> KeyAgg {
        KeyAgg {
            label: CookieLabel::Functional,
            sites_seen: 0,
            id_sites: 0,
            persistent_sites: 0,
            respawn_sites: 0,
            self_ship_sites: 0,
            foreign: BTreeMap::new(),
            distinct_values: DistinctSketch::default(),
            value_writes: 0,
        }
    }
}

impl KeyAgg {
    fn absorb(&mut self, other: KeyAgg) {
        if other.label == CookieLabel::Tracker {
            self.label = CookieLabel::Tracker;
        }
        self.sites_seen += other.sites_seen;
        self.id_sites += other.id_sites;
        self.persistent_sites += other.persistent_sites;
        self.respawn_sites += other.respawn_sites;
        self.self_ship_sites += other.self_ship_sites;
        for (entity, agg) in other.foreign {
            let e = self.foreign.entry(entity).or_default();
            e.co_present += agg.co_present;
            e.ships += agg.ships;
        }
        self.distinct_values.absorb(other.distinct_values);
        self.value_writes += other.value_writes;
    }
}

/// The fold state: per-key aggregates plus crawl accounting. Borrows
/// the compiled engine (`DetectEngine` is `Sync`), so per-segment
/// partials share one compilation.
#[derive(Clone)]
pub struct DetectStats<'e> {
    engine: &'e DetectEngine,
    stages: Stages,
    /// Visits folded, complete or not.
    pub crawled: u64,
    /// Visits retained by the completeness filter.
    pub complete: u64,
    /// Per labeled key (BTreeMap: deterministic iteration for reports).
    pub keys: BTreeMap<DetectKey, KeyAgg>,
    /// Distinct unlabeled `(name, owner)` pairs seen (sketched, never
    /// retained — these are outside the scored universe).
    pub unlabeled_pairs: DistinctSketch,
    /// Unblocked writes on unlabeled pairs.
    pub unlabeled_sets: u64,
    /// Per shipping organization: distinct cookie names it shipped
    /// off-site anywhere in the crawl (bulk included). Deliberate
    /// harvesters ship a small fixed list; jar samplers accumulate
    /// breadth — the report discounts the broad ones as foreign
    /// evidence.
    pub shipper_names: BTreeMap<String, DistinctSketch>,
}

impl<'e> DetectStats<'e> {
    /// The identity element for `engine` at `stages`.
    pub fn new(engine: &'e DetectEngine, stages: Stages) -> DetectStats<'e> {
        DetectStats {
            engine,
            stages,
            crawled: 0,
            complete: 0,
            keys: BTreeMap::new(),
            unlabeled_pairs: DistinctSketch::default(),
            unlabeled_sets: 0,
            shipper_names: BTreeMap::new(),
        }
    }

    /// The engine these stats were folded under.
    pub fn engine(&self) -> &'e DetectEngine {
        self.engine
    }

    /// Folds one visit and drops it.
    pub fn fold(&mut self, log: &VisitLog) {
        detect_metrics().logs_folded.incr();
        self.crawled += 1;
        if !log.complete {
            return;
        }
        self.complete += 1;
        let facts = extract(self.engine, log, self.stages);
        for (key, kf) in facts.keys {
            let owner_entity = match &key.owner {
                Owner::Entity(e) => Some(e.as_str()),
                Owner::Site | Owner::Cloaked => None,
            };
            let agg = self.keys.entry(key.clone()).or_default();
            if kf.label == Some(CookieLabel::Tracker) {
                agg.label = CookieLabel::Tracker;
            }
            agg.sites_seen += 1;
            agg.id_sites += u64::from(kf.id_value);
            agg.persistent_sites += u64::from(kf.persistent);
            agg.respawn_sites += u64::from(kf.respawned);
            agg.self_ship_sites += u64::from(kf.self_ship);
            for value in &kf.values {
                agg.distinct_values
                    .observe(&[key.name.as_bytes(), value.as_bytes()]);
            }
            agg.value_writes += kf.values.len() as u64;
            // Foreign rates are conditional on presence: the union of
            // included-script organizations and actual shippers (a
            // shipper is present by construction).
            let mut present = facts.foreign_present.clone();
            present.extend(kf.foreign_ships.iter().cloned());
            for entity in present {
                if owner_entity == Some(entity.as_str()) {
                    continue;
                }
                let shipped = kf.foreign_ships.contains(&entity);
                let f = agg.foreign.entry(entity).or_default();
                f.co_present += 1;
                f.ships += u64::from(shipped);
            }
        }
        for (name, owner) in &facts.unlabeled_pairs {
            self.unlabeled_pairs
                .observe(&[name.as_bytes(), owner.as_bytes()]);
        }
        self.unlabeled_sets += facts.unlabeled_sets;
        for (entity, names) in facts.shipped_names {
            let sketch = self.shipper_names.entry(entity).or_default();
            for name in names {
                sketch.observe(&[name.as_bytes()]);
            }
        }
    }

    /// Absorbs another partial folded under the same engine.
    /// Associative and commutative; `par_fold` still merges in fixed
    /// segment order so the whole pipeline is deterministic.
    pub fn merge(mut self, other: DetectStats<'e>) -> DetectStats<'e> {
        self.crawled += other.crawled;
        self.complete += other.complete;
        for (key, agg) in other.keys {
            self.keys.entry(key).or_default().absorb(agg);
        }
        self.unlabeled_pairs.absorb(other.unlabeled_pairs);
        self.unlabeled_sets += other.unlabeled_sets;
        for (entity, sketch) in other.shipper_names {
            self.shipper_names.entry(entity).or_default().absorb(sketch);
        }
        self
    }

    /// Folds a fallible stream of visit logs (a crawl reader or one
    /// store segment stream).
    pub fn from_reader<E>(
        engine: &'e DetectEngine,
        stages: Stages,
        logs: impl IntoIterator<Item = Result<VisitLog, E>>,
    ) -> Result<DetectStats<'e>, E> {
        let mut stats = DetectStats::new(engine, stages);
        for log in logs {
            stats.fold(&log?);
        }
        Ok(stats)
    }

    /// Folds already-resident logs (the `Dataset` path).
    pub fn from_logs<'l>(
        engine: &'e DetectEngine,
        stages: Stages,
        logs: impl IntoIterator<Item = &'l VisitLog>,
    ) -> DetectStats<'e> {
        let mut stats = DetectStats::new(engine, stages);
        for log in logs {
            stats.fold(log);
        }
        stats
    }

    /// Streams the store at `dir` with up to `threads` parallel
    /// per-chunk folds, default read backend.
    pub fn from_store(
        engine: &'e DetectEngine,
        stages: Stages,
        dir: impl AsRef<Path>,
        threads: usize,
    ) -> Result<DetectStats<'e>, StoreError> {
        DetectStats::from_store_with(engine, stages, dir, threads, ReadBackend::default())
    }

    /// [`DetectStats::from_store`] with an explicit [`ReadBackend`].
    /// All backends and thread counts produce byte-identical reports.
    pub fn from_store_with(
        engine: &'e DetectEngine,
        stages: Stages,
        dir: impl AsRef<Path>,
        threads: usize,
        backend: ReadBackend,
    ) -> Result<DetectStats<'e>, StoreError> {
        let partials = cg_crawlstore::par_fold_with(dir, threads, backend, |stream| {
            DetectStats::from_reader(engine, stages, stream)
        })?;
        Ok(partials
            .into_iter()
            .fold(DetectStats::new(engine, stages), DetectStats::merge))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DetectConfig;
    use cg_instrument::{CookieApi, Recorder, WriteKind};
    use cg_webgen::{CookieLabels, GenConfig, WebGenerator};
    use std::sync::OnceLock;

    fn engine() -> &'static DetectEngine {
        static ENGINE: OnceLock<DetectEngine> = OnceLock::new();
        ENGINE.get_or_init(|| {
            let gen = WebGenerator::new(GenConfig::small(100), 3);
            let labels = CookieLabels::derive(gen.registry());
            DetectEngine::compile(
                &labels,
                cg_entity::builtin_entity_map(),
                DetectConfig::default(),
            )
        })
    }

    fn visit(site: &str, events: impl FnOnce(&mut Recorder)) -> VisitLog {
        let mut r = Recorder::new(site, 1);
        events(&mut r);
        r.finish()
    }

    /// `Recorder::record_set` cannot express a lifetime (only the
    /// browser's `emit_set` path fills it); patch it on after the fact.
    fn with_max_age(mut log: VisitLog, age: i64) -> VisitLog {
        for ev in &mut log.sets {
            ev.max_age_s = Some(age);
        }
        log
    }

    #[test]
    fn fold_aggregates_labeled_keys_only() {
        let mut stats = DetectStats::new(engine(), Stages::SetsOnly);
        stats.fold(&visit("shop.example", |r| {
            r.record_set(
                "_fbp",
                "fb.1.1746746266109.868308499845957651",
                Some("facebook.net"),
                None,
                CookieApi::DocumentCookie,
                WriteKind::Create,
                None,
                false,
                10,
            );
            r.record_set(
                "my_site_pref",
                "dark",
                None,
                None,
                CookieApi::DocumentCookie,
                WriteKind::Create,
                None,
                false,
                11,
            );
        }));
        assert_eq!(stats.complete, 1);
        let key = DetectKey {
            name: "_fbp".into(),
            owner: Owner::Entity("Meta".into()),
        };
        let agg = stats.keys.get(&key).expect("labeled key aggregated");
        assert_eq!(agg.sites_seen, 1);
        assert_eq!(agg.id_sites, 1, "fbp value carries an id segment");
        assert_eq!(agg.label, CookieLabel::Tracker);
        assert_eq!(stats.unlabeled_pairs.estimate(), 1);
        assert_eq!(stats.unlabeled_sets, 1);
    }

    #[test]
    fn merge_matches_sequential_fold() {
        let a = with_max_age(
            visit("a.example", |r| {
                r.record_set(
                    "_ga",
                    "GA1.1.444332364.1746838827",
                    Some("googletagmanager.com"),
                    None,
                    CookieApi::DocumentCookie,
                    WriteKind::Create,
                    None,
                    false,
                    5,
                );
            }),
            63_072_000,
        );
        let b = with_max_age(
            visit("b.example", |r| {
                r.record_set(
                    "_ga",
                    "GA1.1.999911111.1746838999",
                    Some("googletagmanager.com"),
                    None,
                    CookieApi::DocumentCookie,
                    WriteKind::Create,
                    None,
                    false,
                    5,
                );
            }),
            63_072_000,
        );
        let mut seq = DetectStats::new(engine(), Stages::Full);
        seq.fold(&a);
        seq.fold(&b);
        let mut pa = DetectStats::new(engine(), Stages::Full);
        pa.fold(&a);
        let mut pb = DetectStats::new(engine(), Stages::Full);
        pb.fold(&b);
        let merged = pa.merge(pb);
        assert_eq!(seq.keys.len(), merged.keys.len());
        let key = seq.keys.keys().next().unwrap();
        assert_eq!(seq.keys[key].sites_seen, merged.keys[key].sites_seen);
        assert_eq!(seq.keys[key].persistent_sites, 2);
        assert_eq!(merged.keys[key].distinct_values.estimate(), 2);
    }
}
