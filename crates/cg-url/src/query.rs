//! Query-string handling: parse, serialize, and percent-decode.
//!
//! The exfiltration-detection pipeline (§4.4) extracts candidate
//! identifiers from the query strings of outbound requests; these helpers
//! keep that logic in one audited place.

use std::fmt;

/// An ordered multimap of query parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryPairs {
    pairs: Vec<(String, String)>,
}

impl QueryPairs {
    /// Creates an empty set of pairs.
    pub fn new() -> QueryPairs {
        QueryPairs::default()
    }

    /// Parses `a=1&b=two` (the leading `?`, if present, is tolerated).
    /// Keys and values are percent-decoded; `+` decodes to a space.
    pub fn parse(raw: &str) -> QueryPairs {
        let raw = raw.strip_prefix('?').unwrap_or(raw);
        let mut pairs = Vec::new();
        for chunk in raw.split('&') {
            if chunk.is_empty() {
                continue;
            }
            let (k, v) = match chunk.split_once('=') {
                Some((k, v)) => (k, v),
                None => (chunk, ""),
            };
            pairs.push((percent_decode(k), percent_decode(v)));
        }
        QueryPairs { pairs }
    }

    /// Appends a pair (no deduplication: query strings are multimaps).
    pub fn push(&mut self, key: &str, value: &str) {
        self.pairs.push((key.to_string(), value.to_string()));
    }

    /// First value for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All pairs, in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Serializes back to `k=v&k2=v2` with percent-encoding.
    pub fn encode(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for QueryPairs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str("&")?;
            }
            write!(f, "{}={}", percent_encode(k), percent_encode(v))?;
        }
        Ok(())
    }
}

/// Percent-encodes everything outside the query-safe set
/// (alphanumerics and `-._~*`), mirroring `encodeURIComponent` closely
/// enough for identifier-matching purposes.
pub fn percent_encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for b in input.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' | b'*' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(hex_digit(b >> 4));
                out.push(hex_digit(b & 0xf));
            }
        }
    }
    out
}

/// Percent-decodes `%XX` escapes and `+`-as-space. Malformed escapes are
/// passed through verbatim (lenient, like browsers).
pub fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                // Need two hex digits after '%'; otherwise the '%' is literal.
                if i + 2 < bytes.len() {
                    if let (Some(h), Some(l)) = (from_hex(bytes[i + 1]), from_hex(bytes[i + 2])) {
                        out.push((h << 4) | l);
                        i += 3;
                        continue;
                    }
                }
                out.push(b'%');
                i += 1;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_digit(n: u8) -> char {
    char::from_digit(n as u32, 16).unwrap().to_ascii_uppercase()
}

fn from_hex(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let q = QueryPairs::parse("a=1&b=two&c");
        assert_eq!(q.get("a"), Some("1"));
        assert_eq!(q.get("b"), Some("two"));
        assert_eq!(q.get("c"), Some(""));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn parse_tolerates_question_mark_and_empty() {
        assert_eq!(QueryPairs::parse("?x=1").get("x"), Some("1"));
        assert!(QueryPairs::parse("").is_empty());
        assert_eq!(QueryPairs::parse("&&a=1&&").len(), 1);
    }

    #[test]
    fn decode_escapes() {
        assert_eq!(percent_decode("a%20b"), "a b");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("%7B%22k%22%3A1%7D"), "{\"k\":1}");
        // malformed escapes pass through
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn encode_decode_round_trip() {
        let original = "fb.1.1746746266109.868308499845957651 {} &=+";
        assert_eq!(percent_decode(&percent_encode(original)), original);
    }

    #[test]
    fn display_encodes() {
        let mut q = QueryPairs::new();
        q.push("sc", "{\"fbp\":\"fb.1\"}");
        assert_eq!(q.to_string(), "sc=%7B%22fbp%22%3A%22fb.1%22%7D");
        let reparsed = QueryPairs::parse(&q.to_string());
        assert_eq!(reparsed.get("sc"), Some("{\"fbp\":\"fb.1\"}"));
    }

    #[test]
    fn multimap_preserves_duplicates() {
        let q = QueryPairs::parse("k=1&k=2");
        let vals: Vec<_> = q
            .iter()
            .filter(|(k, _)| *k == "k")
            .map(|(_, v)| v)
            .collect();
        assert_eq!(vals, vec!["1", "2"]);
    }
}
