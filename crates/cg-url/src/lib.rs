//! URL parsing, origin computation, and registrable-domain (eTLD+1) logic.
//!
//! This crate is the foundation of the CookieGuard reproduction: every
//! measurement and every enforcement decision in the paper is keyed on the
//! *domain* (eTLD+1) of a script or a cookie creator, while the browser's
//! Same-Origin Policy is keyed on the full *origin* (scheme, host, port).
//! The paper (§2.1) is explicit about distinguishing *cross-origin* (SOP's
//! strict notion) from *cross-domain* (different eTLD+1 inside the same
//! main-frame origin); this crate provides both notions.
//!
//! The public-suffix data is an embedded snapshot of the rule classes needed
//! by the simulated ecosystem (ICANN TLDs plus the multi-label suffixes and
//! wildcard/exception rules that appear in the wild), not the full Mozilla
//! list; see [`psl`] for the rule semantics, which follow the real algorithm.
//!
//! **Layer:** foundation (every other crate sits on it).
//! **Invariants:** interning is process-wide and append-only —
//! `DomainId`s are dense, stable, and never serialized; normalized
//! inputs take an allocation-free fast path. **Entry points:** `Url`,
//! `registrable_domain`, `intern`/`name`, `CnameMap`.

#![warn(missing_docs)]

pub mod cname;
pub mod host;
pub mod intern;
pub mod origin;
pub mod parser;
pub mod psl;
pub mod query;

pub use cname::CnameMap;
pub use host::Host;
pub use intern::{intern, lookup, name, shard_id_for_host, DomainId};
pub use origin::Origin;
pub use parser::{ParseError, Url};
pub use psl::{is_public_suffix, registrable_domain};
pub use query::QueryPairs;

/// Returns `true` when two hosts belong to the same registrable domain
/// (eTLD+1). This is the paper's *same-domain* relation: the relation that
/// CookieGuard enforces and that the measurement pipeline uses to label an
/// interaction as cross-domain.
///
/// Hosts that have no registrable domain (IP addresses, bare TLDs) compare
/// by exact equality, which is the conservative choice for enforcement.
pub fn same_site(a: &str, b: &str) -> bool {
    match (registrable_domain(a), registrable_domain(b)) {
        (Some(da), Some(db)) => da == db,
        _ => a.eq_ignore_ascii_case(b),
    }
}

/// Convenience: the registrable domain of a full URL string, if it parses.
pub fn url_domain(url: &str) -> Option<String> {
    Url::parse(url).ok().and_then(|u| u.registrable_domain())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_site_basic() {
        assert!(same_site("www.example.com", "cdn.example.com"));
        assert!(same_site("example.com", "example.com"));
        assert!(!same_site("example.com", "example.org"));
    }

    #[test]
    fn same_site_multi_label_suffix() {
        assert!(same_site("a.example.co.uk", "b.example.co.uk"));
        assert!(!same_site("one.co.uk", "two.co.uk"));
    }

    #[test]
    fn same_site_ip_exact() {
        assert!(same_site("127.0.0.1", "127.0.0.1"));
        assert!(!same_site("127.0.0.1", "127.0.0.2"));
    }

    #[test]
    fn url_domain_extracts() {
        assert_eq!(
            url_domain("https://static.tracker.example.com/a.js"),
            Some("example.com".to_string())
        );
        assert_eq!(url_domain("not a url"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The URL parser is total: arbitrary printable input never
        /// panics — it parses or reports a ParseError.
        #[test]
        fn url_parse_never_panics(raw in "\\PC{0,120}") {
            let _ = Url::parse(&raw);
        }

        /// Display round trip: a parsed URL's string form re-parses to
        /// the same scheme / host / path / query.
        #[test]
        fn url_display_round_trips(
            scheme in prop::sample::select(vec!["http", "https"]),
            host in "[a-z]{1,8}(\\.[a-z]{1,8}){1,3}",
            path in "(/[a-z0-9._-]{0,8}){0,4}",
            query in proptest::option::of("[a-z]{1,5}=[a-z0-9]{0,8}(&[a-z]{1,5}=[a-z0-9]{0,8}){0,3}"),
        ) {
            let mut raw = format!("{scheme}://{host}{path}");
            if let Some(q) = &query {
                raw.push('?');
                raw.push_str(q);
            }
            let url = Url::parse(&raw).expect("well-formed URL");
            let re = Url::parse(&url.to_string()).expect("round trip");
            prop_assert_eq!(&url.scheme, &re.scheme);
            prop_assert_eq!(url.host_str(), re.host_str());
            prop_assert_eq!(&url.path, &re.path);
            prop_assert_eq!(&url.query, &re.query);
        }

        /// The registrable domain is always a suffix of the host, is
        /// itself registrable (idempotence), and is never a bare public
        /// suffix.
        #[test]
        fn registrable_domain_invariants(host in "[a-z]{1,8}(\\.[a-z]{1,8}){0,3}\\.(com|org|net|co\\.uk|io)") {
            if let Some(rd) = registrable_domain(&host) {
                prop_assert!(host.ends_with(&rd), "{} not a suffix of {}", rd, host);
                prop_assert!(!is_public_suffix(&rd), "{} is a public suffix", rd);
                prop_assert_eq!(registrable_domain(&rd), Some(rd.clone()));
            }
        }

        /// Domain matching is reflexive and respects the subdomain
        /// relation: `a.b` domain-matches `b` but never the reverse
        /// (for proper subdomains).
        #[test]
        fn domain_match_laws(parent in "[a-z]{2,8}\\.(com|net)", label in "[a-z]{1,8}") {
            let child = format!("{label}.{parent}");
            prop_assert!(host::domain_match(&parent, &parent));
            prop_assert!(host::domain_match(&child, &parent));
            prop_assert!(!host::domain_match(&parent, &child));
        }
    }
}
