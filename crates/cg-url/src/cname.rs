//! CNAME resolution — the DNS layer behind *CNAME cloaking* (§8).
//!
//! CNAME cloaking serves a tracker's script from a first-party subdomain
//! (`metrics.site.com`) whose DNS CNAME record points at the tracker
//! (`collect.tracker.io`). Every client-side defense keyed on the script
//! URL's eTLD+1 — the paper's measurement *and* CookieGuard — then sees a
//! first-party script. The paper points to DNS-based uncloaking (Brave,
//! NextDNS, WebKit) as the countermeasure; this module is that resolver:
//! a map of CNAME records with bounded chain-following, used by the
//! browser when `resolve_cnames` is enabled.

use crate::psl;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::HashMap;

/// Maximum CNAME chain length followed (RFC-ish sanity bound; real
/// resolvers give up far earlier).
const MAX_CHAIN: usize = 8;

/// A set of CNAME records: alias host → canonical host.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CnameMap {
    records: HashMap<String, String>,
}

impl CnameMap {
    /// An empty map (no cloaking anywhere).
    pub fn new() -> CnameMap {
        CnameMap::default()
    }

    /// Adds a record `alias CNAME target`.
    pub fn insert(&mut self, alias: &str, target: &str) {
        self.records
            .insert(alias.to_ascii_lowercase(), target.to_ascii_lowercase());
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Follows the CNAME chain from `host` to its canonical host.
    /// Returns `host` itself when no record exists; cycles and chains
    /// longer than `MAX_CHAIN` (8) stop at the last resolved name.
    /// The overwhelmingly common uncloaked case (no record for an
    /// already-lowercase host) is allocation-free: resolved targets are
    /// borrowed from the map, and the input is borrowed unless it needs
    /// lowercasing.
    pub fn resolve<'m>(&'m self, host: &'m str) -> Cow<'m, str> {
        let mut current: Cow<'m, str> = if host.bytes().any(|b| b.is_ascii_uppercase()) {
            Cow::Owned(host.to_ascii_lowercase())
        } else {
            Cow::Borrowed(host)
        };
        for _ in 0..MAX_CHAIN {
            match self.records.get(current.as_ref()) {
                Some(next) if next.as_str() != current.as_ref() => {
                    current = Cow::Borrowed(next.as_str());
                }
                _ => break,
            }
        }
        current
    }

    /// The *uncloaked* registrable domain of `host`: the eTLD+1 of the
    /// canonical host. This is what a DNS-aware CookieGuard attributes
    /// cookie operations to.
    pub fn uncloaked_domain(&self, host: &str) -> Option<String> {
        psl::registrable_domain(&self.resolve(host))
    }

    /// True when `host` is cloaked: its canonical host resolves to a
    /// different registrable domain.
    pub fn is_cloaked(&self, host: &str) -> bool {
        let direct = psl::registrable_domain(host);
        let resolved = self.uncloaked_domain(host);
        direct != resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> CnameMap {
        let mut m = CnameMap::new();
        m.insert("metrics.shop.example", "collect.trackerhub.io");
        m.insert("a.chain.example", "b.chain.example");
        m.insert("b.chain.example", "c.final.io");
        m.insert("loop1.example", "loop2.example");
        m.insert("loop2.example", "loop1.example");
        m
    }

    #[test]
    fn resolves_single_record() {
        let m = map();
        assert_eq!(m.resolve("metrics.shop.example"), "collect.trackerhub.io");
        assert_eq!(m.resolve("unrelated.example"), "unrelated.example");
    }

    #[test]
    fn follows_chains() {
        let m = map();
        assert_eq!(m.resolve("a.chain.example"), "c.final.io");
    }

    #[test]
    fn cycles_terminate() {
        let m = map();
        let r = m.resolve("loop1.example");
        assert!(r == "loop1.example" || r == "loop2.example");
    }

    #[test]
    fn uncloaked_domain_reveals_tracker() {
        let m = map();
        assert_eq!(
            m.uncloaked_domain("metrics.shop.example").as_deref(),
            Some("trackerhub.io")
        );
        assert!(m.is_cloaked("metrics.shop.example"));
        assert!(!m.is_cloaked("www.shop.example"));
    }

    #[test]
    fn case_insensitive() {
        let m = map();
        assert_eq!(m.resolve("METRICS.Shop.Example"), "collect.trackerhub.io");
    }

    #[test]
    fn uncloaked_lowercase_host_is_borrowed() {
        let m = map();
        // The common case — no record, already lowercase — must not
        // allocate: the input comes straight back, borrowed.
        assert!(matches!(
            m.resolve("www.shop.example"),
            Cow::Borrowed("www.shop.example")
        ));
        // A resolved host is borrowed from the record table.
        assert!(matches!(
            m.resolve("metrics.shop.example"),
            Cow::Borrowed("collect.trackerhub.io")
        ));
    }
}
