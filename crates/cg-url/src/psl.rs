//! Public-suffix rules and registrable-domain (eTLD+1) computation.
//!
//! Implements the public-suffix algorithm used by real browsers:
//! the longest matching rule wins, exception rules (`!`) beat wildcard
//! rules (`*`), and the registrable domain is the public suffix plus one
//! more label. The embedded rule snapshot covers the generic TLDs, the
//! country-code TLDs, and the multi-label / wildcard / exception rule
//! shapes that the synthetic ecosystem and the paper's examples exercise
//! (`co.uk`, `com.au`, `github.io`, `*.ck` with `!www.ck`, …).

use std::collections::HashSet;
use std::sync::OnceLock;

/// Embedded public-suffix snapshot. One rule per entry, in the syntax of
/// the real list: plain rules, `*.` wildcard rules, and `!` exceptions.
const RULES: &[&str] = &[
    // Generic TLDs.
    "com",
    "org",
    "net",
    "edu",
    "gov",
    "mil",
    "int",
    "info",
    "biz",
    "name",
    "io",
    "co",
    "ai",
    "app",
    "dev",
    "xyz",
    "site",
    "online",
    "store",
    "tech",
    "blog",
    "cloud",
    "club",
    "shop",
    "media",
    "news",
    "live",
    "life",
    "world",
    "agency",
    "digital",
    "network",
    "solutions",
    "systems",
    "tools",
    "zone",
    "email",
    "exposed",
    "expert",
    "academy",
    "marketing",
    "software",
    "social",
    "ventures",
    "partners",
    "capital",
    "finance",
    "fund",
    "money",
    "tv",
    "fm",
    "am",
    "ws",
    "cc",
    "me",
    "ly",
    "gg",
    "sh",
    "ac",
    // Country codes used by the vendor registry and site generator.
    "us",
    "uk",
    "de",
    "fr",
    "nl",
    "es",
    "it",
    "pt",
    "pl",
    "cz",
    "ru",
    "ua",
    "jp",
    "cn",
    "kr",
    "in",
    "au",
    "nz",
    "br",
    "mx",
    "ar",
    "cl",
    "ca",
    "ch",
    "at",
    "be",
    "dk",
    "se",
    "no",
    "fi",
    "ie",
    "il",
    "tr",
    "gr",
    "hu",
    "ro",
    "sk",
    "si",
    "hr",
    "rs",
    "bg",
    "lt",
    "lv",
    "ee",
    "is",
    "za",
    "eg",
    "ng",
    "ke",
    "ma",
    "sa",
    "ae",
    "ir",
    "pk",
    "bd",
    "lk",
    "th",
    "vn",
    "my",
    "sg",
    "ph",
    "id",
    "tw",
    "hk",
    "mo",
    // Multi-label country suffixes.
    "co.uk",
    "org.uk",
    "me.uk",
    "ac.uk",
    "gov.uk",
    "net.uk",
    "sch.uk",
    "com.au",
    "net.au",
    "org.au",
    "edu.au",
    "gov.au",
    "co.nz",
    "net.nz",
    "org.nz",
    "govt.nz",
    "co.jp",
    "ne.jp",
    "or.jp",
    "ac.jp",
    "go.jp",
    "co.kr",
    "or.kr",
    "go.kr",
    "com.br",
    "net.br",
    "org.br",
    "gov.br",
    "com.mx",
    "org.mx",
    "gob.mx",
    "com.ar",
    "com.cn",
    "net.cn",
    "org.cn",
    "gov.cn",
    "co.in",
    "net.in",
    "org.in",
    "gov.in",
    "ac.in",
    "co.za",
    "org.za",
    "web.za",
    "com.sg",
    "com.my",
    "com.ph",
    "com.vn",
    "com.tr",
    "com.hk",
    "com.tw",
    "co.il",
    "org.il",
    "co.th",
    "in.th",
    "com.eg",
    "com.sa",
    "com.pk",
    // Private-domain suffixes relevant to script hosting.
    "github.io",
    "gitlab.io",
    "herokuapp.com",
    "netlify.app",
    "vercel.app",
    "web.app",
    "firebaseapp.com",
    "azurewebsites.net",
    "cloudfront.net",
    "amazonaws.com",
    "s3.amazonaws.com",
    "blogspot.com",
    "wordpress.com",
    "tumblr.com",
    "fastly.net",
    "akamaized.net",
    "pages.dev",
    "workers.dev",
    // Wildcard and exception rules (the interesting algorithmic cases).
    "*.ck",
    "!www.ck",
    "*.bn",
    "*.kw",
    "*.compute.amazonaws.com",
];

struct RuleSet {
    plain: HashSet<&'static str>,
    wildcard: HashSet<&'static str>, // stored without the leading "*."
    exception: HashSet<&'static str>, // stored without the leading "!"
}

fn rules() -> &'static RuleSet {
    static SET: OnceLock<RuleSet> = OnceLock::new();
    SET.get_or_init(|| {
        let mut plain = HashSet::new();
        let mut wildcard = HashSet::new();
        let mut exception = HashSet::new();
        for r in RULES {
            if let Some(rest) = r.strip_prefix("*.") {
                wildcard.insert(rest);
            } else if let Some(rest) = r.strip_prefix('!') {
                exception.insert(rest);
            } else {
                plain.insert(*r);
            }
        }
        RuleSet {
            plain,
            wildcard,
            exception,
        }
    })
}

/// Number of labels in the public suffix of `host`, or 0 when no rule
/// matches (per the algorithm, an unmatched host uses the implicit `*`
/// rule: the last label is the suffix — we treat that as suffix length 1).
fn suffix_label_count(labels: &[String]) -> usize {
    let rs = rules();
    let n = labels.len();
    let mut best = 1; // implicit "*" rule
    for start in 0..n {
        let candidate = labels[start..].join(".");
        // Exception rule: the public suffix is the candidate minus its
        // first label.
        if rs.exception.contains(candidate.as_str()) {
            return n - start - 1;
        }
        if rs.plain.contains(candidate.as_str()) {
            best = best.max(n - start);
        }
        // Wildcard: "*.ck" means any "<label>.ck" is a suffix. The stored
        // key is the part after "*.", so a candidate matches when its
        // tail (after the first label) is a wildcard key.
        if start + 1 < n {
            let tail = labels[start + 1..].join(".");
            if rs.wildcard.contains(tail.as_str()) {
                best = best.max(n - start);
            }
        }
    }
    best
}

/// Returns `true` when `host` is itself a public suffix (e.g. `co.uk`).
pub fn is_public_suffix(host: &str) -> bool {
    let host = host.trim_matches('.').to_ascii_lowercase();
    if host.is_empty() {
        return false;
    }
    let labels: Vec<String> = host.split('.').map(|s| s.to_string()).collect();
    if labels.iter().any(|l| l.is_empty()) {
        return false;
    }
    suffix_label_count(&labels) >= labels.len()
}

/// The registrable domain (eTLD+1) of `host`: the public suffix plus one
/// label. `None` for IP literals, bare public suffixes, and hosts with
/// fewer labels than the matched suffix.
pub fn registrable_domain(host: &str) -> Option<String> {
    let host = host.trim_matches('.').to_ascii_lowercase();
    if host.is_empty() {
        return None;
    }
    let labels: Vec<String> = host.split('.').map(|s| s.to_string()).collect();
    if labels.iter().any(|l| l.is_empty()) {
        return None;
    }
    // IPv4 literals have no registrable domain.
    if labels.len() == 4 && labels.iter().all(|l| l.parse::<u8>().is_ok()) {
        return None;
    }
    let suffix = suffix_label_count(&labels);
    if labels.len() <= suffix {
        return None;
    }
    Some(labels[labels.len() - suffix - 1..].join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tld() {
        assert_eq!(
            registrable_domain("www.example.com").as_deref(),
            Some("example.com")
        );
        assert_eq!(
            registrable_domain("example.com").as_deref(),
            Some("example.com")
        );
        assert_eq!(registrable_domain("com"), None);
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(
            registrable_domain("www.bbc.co.uk").as_deref(),
            Some("bbc.co.uk")
        );
        assert_eq!(registrable_domain("co.uk"), None);
        assert_eq!(
            registrable_domain("deep.sub.shop.com.au").as_deref(),
            Some("shop.com.au")
        );
    }

    #[test]
    fn private_suffixes() {
        assert_eq!(
            registrable_domain("user.github.io").as_deref(),
            Some("user.github.io")
        );
        assert_eq!(
            registrable_domain("d111.cloudfront.net").as_deref(),
            Some("d111.cloudfront.net")
        );
        assert_eq!(registrable_domain("github.io"), None);
    }

    #[test]
    fn wildcard_and_exception() {
        // *.ck: anything.ck is a suffix, so foo.bar.ck registers bar-level+1.
        assert_eq!(
            registrable_domain("a.b.foo.ck").as_deref(),
            Some("b.foo.ck")
        );
        assert_eq!(registrable_domain("foo.ck"), None);
        // !www.ck: exception — www.ck itself is registrable.
        assert_eq!(registrable_domain("www.ck").as_deref(), Some("www.ck"));
        assert_eq!(registrable_domain("sub.www.ck").as_deref(), Some("www.ck"));
    }

    #[test]
    fn unknown_tld_uses_implicit_star() {
        assert_eq!(
            registrable_domain("foo.unknowntld").as_deref(),
            Some("foo.unknowntld")
        );
        assert_eq!(registrable_domain("unknowntld"), None);
    }

    #[test]
    fn ip_has_no_domain() {
        assert_eq!(registrable_domain("192.168.1.1"), None);
    }

    #[test]
    fn is_public_suffix_checks() {
        assert!(is_public_suffix("com"));
        assert!(is_public_suffix("co.uk"));
        assert!(is_public_suffix("github.io"));
        assert!(is_public_suffix("anything.ck"));
        assert!(!is_public_suffix("www.ck"));
        assert!(!is_public_suffix("example.com"));
    }

    #[test]
    fn case_and_dots_normalized() {
        assert_eq!(
            registrable_domain("WWW.Example.COM.").as_deref(),
            Some("example.com")
        );
    }
}
