//! Host representation: registered names and IP addresses.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// A parsed host component of a URL.
///
/// The simulator only needs two shapes: DNS registered names (the common
/// case for every website and vendor in the ecosystem) and IPv4 literals
/// (which have no registrable domain and therefore get exact-match cookie
/// and isolation semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Host {
    /// A DNS registered name, already lowercased (`www.example.com`).
    Name(String),
    /// An IPv4 address literal (`127.0.0.1`), stored as octets.
    Ipv4([u8; 4]),
}

impl Host {
    /// Parses a host string. Names are lowercased; dotted-quad strings whose
    /// four parts are all valid `u8`s parse as IPv4.
    pub fn parse(raw: &str) -> Option<Host> {
        if raw.is_empty() {
            return None;
        }
        if let Some(ip) = parse_ipv4(raw) {
            return Some(Host::Ipv4(ip));
        }
        // A registered name: letters, digits, hyphens and dots, with
        // non-empty labels that neither start nor end with a hyphen.
        let lower = raw.to_ascii_lowercase();
        let mut labels = 0usize;
        for label in lower.split('.') {
            if label.is_empty() || label.len() > 63 {
                return None;
            }
            if label.starts_with('-') || label.ends_with('-') {
                return None;
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
            {
                return None;
            }
            labels += 1;
        }
        if labels == 0 || lower.len() > 253 {
            return None;
        }
        Some(Host::Name(lower))
    }

    /// The textual form used in cookie domain matching and logs.
    /// Borrowed for registered names (the common case); IPv4 literals,
    /// which store octets, format on demand.
    pub fn as_str(&self) -> Cow<'_, str> {
        match self {
            Host::Name(n) => Cow::Borrowed(n),
            Host::Ipv4(_) => Cow::Owned(self.to_string()),
        }
    }

    /// True when this host is a registered name (has DNS labels).
    pub fn is_name(&self) -> bool {
        matches!(self, Host::Name(_))
    }

    /// The labels of a registered name, from leftmost to rightmost;
    /// empty for IP addresses.
    pub fn labels(&self) -> Vec<&str> {
        match self {
            Host::Name(n) => n.split('.').collect(),
            Host::Ipv4(_) => Vec::new(),
        }
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Host::Name(n) => f.write_str(n),
            Host::Ipv4([a, b, c, d]) => write!(f, "{a}.{b}.{c}.{d}"),
        }
    }
}

fn parse_ipv4(raw: &str) -> Option<[u8; 4]> {
    let mut parts = [0u8; 4];
    let mut n = 0;
    for seg in raw.split('.') {
        if n == 4 {
            return None;
        }
        if seg.is_empty() || seg.len() > 3 || !seg.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        parts[n] = seg.parse().ok()?;
        n += 1;
    }
    if n == 4 {
        Some(parts)
    } else {
        None
    }
}

/// Host-suffix matching per RFC 6265 §5.1.3 ("domain-matching"): `host`
/// domain-matches `domain` when they are identical or `host` ends with
/// `.domain` and `host` is a registered name.
pub fn domain_match(host: &str, domain: &str) -> bool {
    let host = host.to_ascii_lowercase();
    let domain = domain.trim_start_matches('.').to_ascii_lowercase();
    if host == domain {
        return true;
    }
    if parse_ipv4(&host).is_some() {
        return false;
    }
    host.len() > domain.len()
        && host.ends_with(&domain)
        && host.as_bytes()[host.len() - domain.len() - 1] == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names_lowercased() {
        assert_eq!(
            Host::parse("WWW.Example.COM"),
            Some(Host::Name("www.example.com".into()))
        );
    }

    #[test]
    fn parses_ipv4() {
        assert_eq!(
            Host::parse("192.168.0.1"),
            Some(Host::Ipv4([192, 168, 0, 1]))
        );
        // Out-of-range octet falls back to name rules and fails (leading digit ok but 999 > 255)
        assert_eq!(
            Host::parse("999.1.1.1"),
            Some(Host::Name("999.1.1.1".into()))
        );
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(Host::parse(""), None);
        assert_eq!(Host::parse("exa mple.com"), None);
        assert_eq!(Host::parse("-bad.com"), None);
        assert_eq!(Host::parse("bad-.com"), None);
        assert_eq!(Host::parse("a..b"), None);
    }

    #[test]
    fn display_round_trips() {
        for h in ["example.com", "10.0.0.1", "a.b.c.d.e"] {
            assert_eq!(Host::parse(h).unwrap().to_string(), h);
        }
    }

    #[test]
    fn domain_match_rfc6265() {
        assert!(domain_match("www.example.com", "example.com"));
        assert!(domain_match("example.com", "example.com"));
        assert!(domain_match("a.b.example.com", ".example.com"));
        assert!(!domain_match("example.com", "www.example.com"));
        assert!(!domain_match("badexample.com", "example.com"));
        assert!(!domain_match("1.2.3.4", "3.4"));
    }

    #[test]
    fn labels_split() {
        let h = Host::parse("a.b.example.com").unwrap();
        assert_eq!(h.labels(), vec!["a", "b", "example", "com"]);
        assert!(Host::parse("1.2.3.4").unwrap().labels().is_empty());
    }
}
