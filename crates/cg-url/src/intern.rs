//! Global domain interning and a host → eTLD+1 shard-id cache.
//!
//! The hot paths of the reproduction — jar lookups and guard policy
//! checks — are keyed on eTLD+1 strings. Computing the registrable
//! domain runs the public-suffix algorithm over every label suffix of
//! the host, so doing it per lookup (as the flat jar did) is the single
//! most repeated piece of work in a crawl. This module makes that work
//! *once per distinct host process-wide*:
//!
//! * [`intern`] maps a domain string to a dense [`DomainId`] (a `u32`),
//!   leaking each distinct string exactly once so [`name`] can hand
//!   back `&'static str` without reference counting;
//! * [`shard_id_for_host`] memoizes host → eTLD+1 → [`DomainId`], the
//!   key the sharded [`CookieJar`](../cg_cookiejar) buckets by. Hosts
//!   without a registrable domain (IP literals, single-label hosts,
//!   bare public suffixes) shard by the exact host, the same
//!   conservative fallback [`crate::same_site`] uses.
//!
//! Memory: both tables grow with the number of *distinct* domains/hosts
//! seen by the process — bounded by the crawl's ecosystem size, and
//! exactly the working set a production deployment needs resident.

use crate::psl;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// A dense, copyable handle for an interned domain string. Ordering
/// follows interning order, not lexicographic order — sort by
/// [`name`] when a stable, human-meaningful order is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(u32);

impl DomainId {
    /// The raw index (dense from 0 in interning order).
    pub fn index(self) -> u32 {
        self.0
    }
}

#[derive(Default)]
struct Interner {
    by_name: HashMap<&'static str, DomainId>,
    names: Vec<&'static str>,
    /// host → shard id (the interned eTLD+1, or the host itself when it
    /// has no registrable domain).
    host_shards: HashMap<Box<str>, DomainId>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

fn normalize(domain: &str) -> String {
    domain.trim_matches('.').to_ascii_lowercase()
}

/// True when [`normalize`] would return `domain` unchanged — the
/// overwhelmingly common case on the hot paths (hosts out of a parsed
/// [`crate::Url`] are already lowercase), where interning must not
/// allocate.
fn is_normalized(domain: &str) -> bool {
    !domain.starts_with('.')
        && !domain.ends_with('.')
        && !domain.bytes().any(|b| b.is_ascii_uppercase())
}

/// Interns `domain` (normalized to lowercase, dots trimmed) and returns
/// its process-wide id. Idempotent and thread-safe. Re-interning an
/// already-known, already-normalized domain is allocation-free: one
/// read-lock and one hash lookup.
pub fn intern(domain: &str) -> DomainId {
    let norm: std::borrow::Cow<'_, str> = if is_normalized(domain) {
        std::borrow::Cow::Borrowed(domain)
    } else {
        std::borrow::Cow::Owned(normalize(domain))
    };
    {
        let guard = interner().read().expect("domain interner poisoned");
        if let Some(&id) = guard.by_name.get(norm.as_ref()) {
            return id;
        }
    }
    let mut guard = interner().write().expect("domain interner poisoned");
    if let Some(&id) = guard.by_name.get(norm.as_ref()) {
        return id;
    }
    let id = DomainId(u32::try_from(guard.names.len()).expect("interner overflow"));
    let leaked: &'static str = Box::leak(norm.into_owned().into_boxed_str());
    guard.names.push(leaked);
    guard.by_name.insert(leaked, id);
    id
}

/// The id for `domain` if it was interned before, without interning.
/// Allocation-free for already-normalized inputs.
pub fn lookup(domain: &str) -> Option<DomainId> {
    let guard = interner().read().expect("domain interner poisoned");
    if is_normalized(domain) {
        return guard.by_name.get(domain).copied();
    }
    let norm = normalize(domain);
    guard.by_name.get(norm.as_str()).copied()
}

/// The string an id was interned from (normalized form).
pub fn name(id: DomainId) -> &'static str {
    interner().read().expect("domain interner poisoned").names[id.0 as usize]
}

/// The jar shard id for a request/cookie host: its interned eTLD+1, or
/// the interned host itself when no registrable domain exists. The
/// host → id mapping is memoized, so the public-suffix walk runs once
/// per distinct host per process.
pub fn shard_id_for_host(host: &str) -> DomainId {
    let norm: std::borrow::Cow<'_, str> = if is_normalized(host) {
        std::borrow::Cow::Borrowed(host)
    } else {
        std::borrow::Cow::Owned(normalize(host))
    };
    {
        let guard = interner().read().expect("domain interner poisoned");
        if let Some(&id) = guard.host_shards.get(norm.as_ref()) {
            return id;
        }
    }
    let shard_name = psl::registrable_domain(&norm).unwrap_or_else(|| norm.clone().into_owned());
    let id = intern(&shard_name);
    let mut guard = interner().write().expect("domain interner poisoned");
    guard
        .host_shards
        .entry(norm.into_owned().into_boxed_str())
        .or_insert(id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_case_insensitive() {
        let a = intern("Example.COM");
        let b = intern("example.com");
        assert_eq!(a, b);
        assert_eq!(name(a), "example.com");
    }

    #[test]
    fn distinct_domains_get_distinct_ids() {
        assert_ne!(intern("alpha.test-one.com"), intern("beta.test-one.com"));
    }

    #[test]
    fn shard_id_collapses_to_etld_plus_one() {
        let www = shard_id_for_host("www.shard-site.com");
        let api = shard_id_for_host("api.shard-site.com");
        let bare = shard_id_for_host("shard-site.com");
        assert_eq!(www, api);
        assert_eq!(www, bare);
        assert_eq!(name(www), "shard-site.com");
    }

    #[test]
    fn hosts_without_registrable_domain_shard_by_host() {
        let ip = shard_id_for_host("192.168.7.7");
        assert_eq!(name(ip), "192.168.7.7");
        let local = shard_id_for_host("intern-localhost");
        assert_eq!(name(local), "intern-localhost");
        assert_ne!(ip, local);
    }

    #[test]
    fn fast_path_and_slow_path_agree() {
        // A normalized string takes the allocation-free fast path; the
        // same domain in denormalized spelling must land on the same id.
        let fast = intern("fast-path-domain.example");
        let slow = intern(".Fast-Path-Domain.EXAMPLE.");
        assert_eq!(fast, slow);
        assert_eq!(lookup("fast-path-domain.example"), Some(fast));
        assert_eq!(lookup("FAST-path-domain.example"), Some(fast));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(lookup("never-interned-domain.example").is_none());
        let id = intern("was-interned-domain.example");
        assert_eq!(lookup("was-interned-domain.example"), Some(id));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let ids: Vec<DomainId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| shard_id_for_host("deep.sub.concurrent-host.co.uk")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(name(ids[0]), "concurrent-host.co.uk");
    }
}
