//! Origins: the Same-Origin Policy's unit of isolation.

use crate::host::Host;
use crate::psl;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A (scheme, host, port) triple, as defined by the Same-Origin Policy.
///
/// The paper's central observation (§2.1, §3) is that SOP isolates
/// *origins* — so an iframe from `tracker.com` cannot touch
/// `example.com`'s cookie jar — but every script executing in the main
/// frame shares the main frame's origin regardless of where the script
/// was fetched from. The simulator therefore tags each execution context
/// with both its *origin* (always the main frame's, for main-frame
/// scripts) and its *script source domain* (the eTLD+1 the script was
/// fetched from), and CookieGuard keys decisions on the latter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Origin {
    /// `http` or `https`.
    pub scheme: String,
    /// The origin's host.
    pub host: Host,
    /// The effective port.
    pub port: u16,
}

impl Origin {
    /// Builds an origin from parts.
    pub fn new(scheme: &str, host: Host, port: u16) -> Origin {
        Origin {
            scheme: scheme.to_ascii_lowercase(),
            host,
            port,
        }
    }

    /// True when `other` is the same origin (scheme, host and port all
    /// equal) — SOP's strict equivalence.
    pub fn same_origin(&self, other: &Origin) -> bool {
        self == other
    }

    /// True when the two origins share a registrable domain — the looser
    /// *same-site* relation (used e.g. by cookie `SameSite` handling).
    pub fn same_site(&self, other: &Origin) -> bool {
        crate::same_site(&self.host.to_string(), &other.host.to_string())
    }

    /// The registrable domain of this origin's host.
    pub fn registrable_domain(&self) -> Option<String> {
        psl::registrable_domain(&self.host.to_string())
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Url;

    fn origin(u: &str) -> Origin {
        Url::parse(u).unwrap().origin()
    }

    #[test]
    fn same_origin_requires_exact_triple() {
        assert!(origin("https://example.com/a").same_origin(&origin("https://example.com/b")));
        assert!(!origin("https://example.com").same_origin(&origin("http://example.com")));
        assert!(!origin("https://example.com").same_origin(&origin("https://example.com:8443")));
        assert!(!origin("https://www.example.com").same_origin(&origin("https://example.com")));
    }

    #[test]
    fn same_site_ignores_subdomain_scheme_port() {
        assert!(origin("https://www.example.com").same_site(&origin("http://cdn.example.com:8080")));
        assert!(!origin("https://example.com").same_site(&origin("https://example.org")));
    }

    #[test]
    fn paper_example_different_origins_same_domain() {
        // §2.1: https://example.com:8080 vs https://subdomain.example.com:8080
        let a = origin("https://example.com:8080");
        let b = origin("https://subdomain.example.com:8080");
        assert!(!a.same_origin(&b));
        assert!(a.same_site(&b));
    }
}
