//! A small, strict URL parser covering the subset of WHATWG URLs the
//! simulator produces: absolute `http(s)` URLs with host, optional port,
//! path, query, and fragment.

use crate::host::Host;
use crate::origin::Origin;
use crate::psl;
use crate::query::QueryPairs;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The scheme is missing or not `http`/`https`.
    BadScheme,
    /// The host is missing or syntactically invalid.
    BadHost,
    /// The port is present but not a valid `u16`.
    BadPort,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadScheme => write!(f, "missing or unsupported scheme"),
            ParseError::BadHost => write!(f, "missing or invalid host"),
            ParseError::BadPort => write!(f, "invalid port"),
        }
    }
}

impl std::error::Error for ParseError {}

/// An absolute `http(s)` URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// The parsed host.
    pub host: Host,
    /// Explicit port, when one appeared in the URL.
    pub port: Option<u16>,
    /// The path, always beginning with `/`.
    pub path: String,
    /// The raw query string, without the leading `?`; empty when absent.
    pub query: String,
    /// The fragment, without the leading `#`; empty when absent.
    pub fragment: String,
}

impl Url {
    /// Parses an absolute URL. Only `http` and `https` are accepted —
    /// everything the simulated web serves is one of the two.
    pub fn parse(input: &str) -> Result<Url, ParseError> {
        let input = input.trim();
        let (scheme, rest) = input.split_once("://").ok_or(ParseError::BadScheme)?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(ParseError::BadScheme);
        }
        // Split off fragment, then query, then path.
        let (rest, fragment) = match rest.split_once('#') {
            Some((r, f)) => (r, f.to_string()),
            None => (rest, String::new()),
        };
        let (rest, query) = match rest.split_once('?') {
            Some((r, q)) => (r, q.to_string()),
            None => (rest, String::new()),
        };
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], rest[i..].to_string()),
            None => (rest, "/".to_string()),
        };
        // We don't model userinfo; reject it to keep the grammar strict.
        if authority.contains('@') {
            return Err(ParseError::BadHost);
        }
        let (host_str, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| ParseError::BadPort)?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        let host = Host::parse(host_str).ok_or(ParseError::BadHost)?;
        Ok(Url {
            scheme,
            host,
            port,
            path,
            query,
            fragment,
        })
    }

    /// The effective port: explicit, or the scheme default (80/443).
    pub fn effective_port(&self) -> u16 {
        self.port
            .unwrap_or(if self.scheme == "https" { 443 } else { 80 })
    }

    /// The origin (scheme, host, effective port) of this URL — SOP's unit
    /// of isolation.
    pub fn origin(&self) -> Origin {
        Origin::new(&self.scheme, self.host.clone(), self.effective_port())
    }

    /// The host as a string — borrowed for registered names, so the
    /// per-operation paths (shard pinning, CSP host checks, caller
    /// attribution) don't allocate.
    pub fn host_str(&self) -> std::borrow::Cow<'_, str> {
        self.host.as_str()
    }

    /// The registrable domain (eTLD+1) of the host — the paper's unit of
    /// cross-domain analysis and CookieGuard's unit of enforcement.
    pub fn registrable_domain(&self) -> Option<String> {
        psl::registrable_domain(&self.host_str())
    }

    /// Parsed query pairs.
    pub fn query_pairs(&self) -> QueryPairs {
        QueryPairs::parse(&self.query)
    }

    /// Returns a copy with a different path (used by the site generator to
    /// mint internal links).
    pub fn with_path(&self, path: &str) -> Url {
        let mut u = self.clone();
        u.path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        u
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        if !self.fragment.is_empty() {
            write!(f, "#{}", self.fragment)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://www.example.com:8443/a/b?x=1&y=2#frag").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host_str(), "www.example.com");
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.path, "/a/b");
        assert_eq!(u.query, "x=1&y=2");
        assert_eq!(u.fragment, "frag");
    }

    #[test]
    fn default_ports() {
        assert_eq!(Url::parse("http://a.com").unwrap().effective_port(), 80);
        assert_eq!(Url::parse("https://a.com").unwrap().effective_port(), 443);
    }

    #[test]
    fn missing_path_becomes_root() {
        assert_eq!(Url::parse("https://a.com").unwrap().path, "/");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Url::parse("ftp://a.com"), Err(ParseError::BadScheme));
        assert_eq!(Url::parse("no-scheme.com/x"), Err(ParseError::BadScheme));
        assert_eq!(Url::parse("https://"), Err(ParseError::BadHost));
        assert_eq!(
            Url::parse("https://user@host.com"),
            Err(ParseError::BadHost)
        );
        assert_eq!(
            Url::parse("https://a.com:notaport/"),
            Err(ParseError::BadPort)
        );
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "https://www.example.com/a/b?x=1#f",
            "http://tracker.io/pixel.gif?id=abc",
            "https://a.co.uk:444/",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn origin_and_domain() {
        let u = Url::parse("https://cdn.shop.example.co.uk/lib.js").unwrap();
        assert_eq!(u.registrable_domain().as_deref(), Some("example.co.uk"));
        assert_eq!(u.origin().to_string(), "https://cdn.shop.example.co.uk:443");
    }

    #[test]
    fn with_path_normalizes() {
        let u = Url::parse("https://a.com/x").unwrap();
        assert_eq!(u.with_path("y/z").path, "/y/z");
        assert_eq!(u.with_path("/y").path, "/y");
    }
}
