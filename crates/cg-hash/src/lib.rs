//! From-scratch MD5, SHA-1 and Base64 implementations.
//!
//! The paper's exfiltration-detection pipeline (§4.4) computes three encoded
//! forms of every candidate identifier extracted from a cookie value —
//! Base64, MD5 and SHA-1 — and searches outbound request URLs for any of
//! them. Matching real tracker behaviour requires byte-identical digests, so
//! these are complete implementations of the real algorithms (RFC 1321,
//! RFC 3174, RFC 4648), validated against the official test vectors.
//!
//! The crate also hosts FNV-1a (`fnv1a64`/`fnv1a32`) plus the
//! word-at-a-time `fnv1a32w` variant — the non-cryptographic checksum
//! the binary crawl-store frames use for torn-tail detection (word-wise
//! because frames are tens of KB and checksum verification sits on the
//! replay hot path).
//!
//! **Layer:** foundation (no workspace dependencies). **Invariant:**
//! digests are byte-identical to the reference algorithms (RFC 1321 /
//! 3174 / 4648, checked against official vectors) — the exfiltration
//! detector's encoded-identifier matching depends on it. **Entry
//! points:** `md5_hex`, `sha1_hex`, `b64encode_no_pad`, `fnv1a32`.

pub mod base64;
pub mod fnv;
pub mod md5;
pub mod sha1;

pub use base64::{b64decode, b64encode, b64encode_no_pad};
pub use fnv::{fnv1a32, fnv1a32w, fnv1a64};
pub use md5::md5_hex;
pub use sha1::sha1_hex;

/// All encoded forms of an identifier that the detection pipeline matches
/// against outbound URLs: the identifier itself, its Base64 encoding (padded
/// and unpadded, since trackers strip padding in URLs), and its MD5/SHA-1
/// hex digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedForms {
    /// The raw identifier.
    pub plain: String,
    /// Standard Base64 with padding.
    pub base64: String,
    /// Base64 without trailing `=` padding (common in query strings).
    pub base64_no_pad: String,
    /// Lowercase MD5 hex digest.
    pub md5: String,
    /// Lowercase SHA-1 hex digest.
    pub sha1: String,
}

impl EncodedForms {
    /// Computes every encoded form of `identifier`.
    pub fn of(identifier: &str) -> EncodedForms {
        let b = b64encode(identifier.as_bytes());
        EncodedForms {
            plain: identifier.to_string(),
            base64_no_pad: b.trim_end_matches('=').to_string(),
            base64: b,
            md5: md5_hex(identifier.as_bytes()),
            sha1: sha1_hex(identifier.as_bytes()),
        }
    }

    /// True when `haystack` contains any encoded form of the identifier.
    pub fn appears_in(&self, haystack: &str) -> bool {
        haystack.contains(&self.plain)
            || haystack.contains(&self.base64_no_pad)
            || haystack.contains(&self.md5)
            || haystack.contains(&self.sha1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forms_cover_all_encodings() {
        let f = EncodedForms::of("444332364");
        assert!(f.appears_in("https://x.com/?ga=444332364"));
        assert!(f.appears_in(&format!("https://x.com/?b={}", b64encode(b"444332364"))));
        assert!(f.appears_in(&format!("https://x.com/?m={}", md5_hex(b"444332364"))));
        assert!(f.appears_in(&format!("https://x.com/?s={}", sha1_hex(b"444332364"))));
        assert!(!f.appears_in("https://x.com/?ga=nothing"));
    }

    #[test]
    fn paper_linkedin_example_base64() {
        // §5.4 case study: the _ga segment 444332364 encodes to NDQ0MzMyMzY0.
        assert_eq!(b64encode(b"444332364"), "NDQ0MzMyMzY0");
    }
}
