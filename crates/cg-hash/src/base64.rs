//! Base64 (RFC 4648, standard alphabet) encode/decode.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as standard Base64 with `=` padding.
pub fn b64encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Encodes without trailing padding (the form trackers put in URLs).
pub fn b64encode_no_pad(data: &[u8]) -> String {
    let mut s = b64encode(data);
    while s.ends_with('=') {
        s.pop();
    }
    s
}

/// Decodes standard Base64; padding optional. Returns `None` on any
/// character outside the alphabet or an impossible length.
pub fn b64decode(input: &str) -> Option<Vec<u8>> {
    let trimmed = input.trim_end_matches('=');
    let mut out = Vec::with_capacity(trimmed.len() * 3 / 4);
    let mut buf: u32 = 0;
    let mut bits = 0u32;
    for c in trimmed.bytes() {
        let v = decode_char(c)?;
        buf = (buf << 6) | v as u32;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((buf >> bits) as u8);
        }
    }
    // A single leftover sextet (len % 4 == 1) is impossible.
    if trimmed.len() % 4 == 1 {
        return None;
    }
    Some(out)
}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(b64encode(plain.as_bytes()), enc, "encode {plain:?}");
            assert_eq!(b64decode(enc).unwrap(), plain.as_bytes(), "decode {enc:?}");
        }
    }

    #[test]
    fn no_pad_round_trip() {
        assert_eq!(b64encode_no_pad(b"f"), "Zg");
        assert_eq!(b64decode("Zg").unwrap(), b"f");
        assert_eq!(b64decode("Zm9vYg").unwrap(), b"foob");
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(b64decode("a"), None); // impossible length
        assert_eq!(b64decode("ab!d"), None); // bad character
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(b64decode(&b64encode(&data)).unwrap(), data);
    }
}
