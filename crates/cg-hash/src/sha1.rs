//! SHA-1 (RFC 3174 / FIPS 180-1).

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
    let mut msg = data.to_vec();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    for block in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Lowercase hex SHA-1 digest.
pub fn sha1_hex(data: &[u8]) -> String {
    crate::md5::to_hex(&sha1(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn fips_vectors() {
        let cases = [
            ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (
                "The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(sha1_hex(input.as_bytes()), want, "sha1({input:?})");
        }
    }

    #[test]
    fn million_a() {
        // The classic 1,000,000 x 'a' vector.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(sha1_hex(&data), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn block_boundary_lengths() {
        for len in [55, 56, 57, 63, 64, 65] {
            let data = vec![b'q'; len];
            assert_ne!(sha1(&data), sha1(&data[..len - 1]), "len {len}");
        }
    }
}
