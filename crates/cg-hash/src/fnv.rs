//! FNV-1a — the crawl store's frame checksum.
//!
//! Binary segment frames carry a 32-bit integrity check so torn-tail
//! recovery can distinguish "the process died mid-write" (truncate)
//! from "the middle of the file rotted" (refuse). FNV-1a is not
//! cryptographic — it only needs to catch partial writes and bit rot,
//! and it has to be dependency-free and fast on short buffers.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `data`.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 32-bit checksum: FNV-1a 64 folded by xor (better avalanche in the
/// low half than truncation alone).
pub fn fnv1a32(data: &[u8]) -> u32 {
    let h = fnv1a64(data);
    (h ^ (h >> 32)) as u32
}

/// One FNV-1a step over an 8-byte word instead of a byte.
fn step64(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Word-at-a-time FNV-1a ("FNV-1a/64w"), folded to 32 bits: absorbs a
/// `prefix` word, then `data` as 8-byte little-endian words (final
/// word zero-padded), then the byte length — so a padded tail cannot
/// alias real trailing zeros. Roughly 8× the byte-wise throughput on
/// long buffers with the same guarantee that any single-bit flip
/// changes the result (xor is a bijection, and multiplying by the odd
/// FNV prime is a bijection mod 2^64).
///
/// This is a distinct function from [`fnv1a32`] — the two do not
/// produce comparable values. The crawl store's binary frame checksum
/// uses this variant: frames are large enough (tens of KB) that the
/// byte-serial dependency chain of classic FNV would dominate replay.
pub fn fnv1a32w(prefix: u64, data: &[u8]) -> u32 {
    let mut h = step64(FNV_OFFSET, prefix);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        h = step64(h, u64::from_le_bytes(chunk.try_into().unwrap()));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = step64(h, u64::from_le_bytes(tail));
    }
    h = step64(h, data.len() as u64);
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Official FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn folded_checksum_detects_single_bit_flips() {
        let clean = b"{\"rank\":42,\"site_domain\":\"example.org\"}".to_vec();
        let base = fnv1a32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(fnv1a32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn word_checksum_detects_single_bit_flips_and_length_tricks() {
        // 41 bytes: exercises the zero-padded final word.
        let clean = b"{\"rank\":42,\"site_domain\":\"example.org\"};;".to_vec();
        assert_eq!(clean.len(), 41);
        let base = fnv1a32w(42, &clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    fnv1a32w(42, &flipped),
                    base,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
        // The prefix word is covered.
        assert_ne!(fnv1a32w(43, &clean), base);
        // Appending a zero byte must not alias the padded tail.
        let mut extended = clean.clone();
        extended.push(0);
        assert_ne!(fnv1a32w(42, &extended), base);
        // Dropping a trailing zero-ish tail must not alias either.
        assert_ne!(fnv1a32w(42, &clean[..40]), base);
    }
}
