//! Paired with/without-CookieGuard timing measurement.

use cg_browser::{visit_site, PageTiming, VisitConfig};
use cg_webgen::WebGenerator;
use cookieguard_core::GuardConfig;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One site's paired timings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PairedRun {
    /// Rank of the site.
    pub rank: usize,
    /// Timing without the extension.
    pub without: PageTiming,
    /// Timing with CookieGuard.
    pub with: PageTiming,
}

impl PairedRun {
    /// Per-site overhead ratio for a metric selector.
    pub fn ratio(&self, metric: fn(&PageTiming) -> f64) -> f64 {
        let base = metric(&self.without);
        if base <= 0.0 {
            return f64::NAN;
        }
        metric(&self.with) / base
    }
}

/// Mean/median summary of one metric in one condition (a Table 4 cell).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Arithmetic mean (ms).
    pub mean_ms: f64,
    /// Median (ms).
    pub median_ms: f64,
}

/// Ratio summary for Fig. 7/10.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RatioSummary {
    /// Median of per-site With/No ratios.
    pub median: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum observed ratio (the Fig. 10 outlier scale).
    pub max: f64,
}

/// The full §7.3 result set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfReport {
    /// Paired sites that survived validity filtering.
    pub valid_pairs: usize,
    /// DOM Content Loaded without / with.
    pub dcl: (MetricSummary, MetricSummary),
    /// DOM Interactive without / with.
    pub di: (MetricSummary, MetricSummary),
    /// Load Event without / with.
    pub load: (MetricSummary, MetricSummary),
    /// Ratio summaries (dcl, di, load).
    pub ratios: (RatioSummary, RatioSummary, RatioSummary),
    /// All per-site pairs (figures need the raw distribution).
    pub pairs: Vec<PairedRun>,
}

impl PerfReport {
    /// Mean added latency across the three metrics (the paper's
    /// "average overhead of 0.3 seconds").
    pub fn mean_added_ms(&self) -> f64 {
        let d = self.dcl.1.mean_ms - self.dcl.0.mean_ms;
        let i = self.di.1.mean_ms - self.di.0.mean_ms;
        let l = self.load.1.mean_ms - self.load.0.mean_ms;
        (d + i + l) / 3.0
    }
}

fn summarize(values: &[f64]) -> MetricSummary {
    MetricSummary {
        mean_ms: cg_analysis_stats::mean(values),
        median_ms: cg_analysis_stats::median(values),
    }
}

fn ratio_summary(values: &[f64]) -> RatioSummary {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    RatioSummary {
        median: cg_analysis_stats::median(&clean),
        q1: cg_analysis_stats::percentile(&clean, 25.0),
        q3: cg_analysis_stats::percentile(&clean, 75.0),
        max: clean.iter().copied().fold(0.0, f64::max),
    }
}

// A minimal local stats shim so cg-perf does not depend on cg-analysis
// (the experiments crate combines both).
mod cg_analysis_stats {
    pub fn mean(v: &[f64]) -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }
    pub fn median(v: &[f64]) -> f64 {
        percentile(v, 50.0)
    }
    pub fn percentile(v: &[f64], p: f64) -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        let mut s = v.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * (s.len() as f64 - 1.0)).round() as usize;
        s[rank.min(s.len() - 1)]
    }
}

/// Runs the paired measurement over ranks `[from, to]` with `threads`
/// workers. Interaction is disabled (the paper's perf protocol measures
/// plain page loads).
pub fn run_paired_measurement(
    gen: &WebGenerator,
    guard: &GuardConfig,
    from: usize,
    to: usize,
    threads: usize,
) -> PerfReport {
    let next = AtomicUsize::new(from);
    let threads = threads.max(1);
    // One engine for the whole measurement: the guarded condition's
    // policy state is compiled here, not once per site. The configs are
    // shared (read-only) across the worker threads.
    let without_cfg = VisitConfig {
        interact: false,
        ..VisitConfig::regular()
    };
    let with_cfg = VisitConfig {
        interact: false,
        ..VisitConfig::guarded(guard.clone())
    };

    // Per-worker local buffers, merged after the scope: the hot loop
    // takes no lock, and the final sort by rank restores the canonical
    // order regardless of which worker measured which site.
    let mut pairs: Vec<PairedRun> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let without_cfg = &without_cfg;
                let with_cfg = &with_cfg;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let rank = next.fetch_add(1, Ordering::Relaxed);
                        if rank > to {
                            break;
                        }
                        let bp = gen.blueprint(rank);
                        if !bp.spec.crawl_ok {
                            continue; // visit failed in one of the two conditions
                        }
                        let base_seed = gen.site_seed(rank);
                        let without = visit_site(&bp, without_cfg, base_seed ^ 0xaaaa);
                        let with = visit_site(&bp, with_cfg, base_seed ^ 0xbbbb);
                        local.push(PairedRun {
                            rank,
                            without: without.timing,
                            with: with.timing,
                        });
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("perf worker panicked"))
            .collect()
    });
    pairs.sort_by_key(|p| p.rank);
    // Validity filter: keep only positive measurements in both conditions.
    pairs.retain(|p| {
        [p.without, p.with].iter().all(|t| {
            t.dom_interactive_ms > 0.0 && t.dom_content_loaded_ms > 0.0 && t.load_event_ms > 0.0
        })
    });

    let dcl_no: Vec<f64> = pairs
        .iter()
        .map(|p| p.without.dom_content_loaded_ms)
        .collect();
    let dcl_yes: Vec<f64> = pairs.iter().map(|p| p.with.dom_content_loaded_ms).collect();
    let di_no: Vec<f64> = pairs.iter().map(|p| p.without.dom_interactive_ms).collect();
    let di_yes: Vec<f64> = pairs.iter().map(|p| p.with.dom_interactive_ms).collect();
    let ld_no: Vec<f64> = pairs.iter().map(|p| p.without.load_event_ms).collect();
    let ld_yes: Vec<f64> = pairs.iter().map(|p| p.with.load_event_ms).collect();

    let r_dcl: Vec<f64> = pairs
        .iter()
        .map(|p| p.ratio(|t| t.dom_content_loaded_ms))
        .collect();
    let r_di: Vec<f64> = pairs
        .iter()
        .map(|p| p.ratio(|t| t.dom_interactive_ms))
        .collect();
    let r_ld: Vec<f64> = pairs.iter().map(|p| p.ratio(|t| t.load_event_ms)).collect();

    PerfReport {
        valid_pairs: pairs.len(),
        dcl: (summarize(&dcl_no), summarize(&dcl_yes)),
        di: (summarize(&di_no), summarize(&di_yes)),
        load: (summarize(&ld_no), summarize(&ld_yes)),
        ratios: (
            ratio_summary(&r_dcl),
            ratio_summary(&r_di),
            ratio_summary(&r_ld),
        ),
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::GenConfig;

    #[test]
    fn paired_measurement_shape() {
        // Per-visit noise is deliberately heavy-tailed (σ ≈ 1.0), so a
        // few hundred pairs are needed before the systematic ~11% guard
        // shift dominates sampling noise in aggregate statistics.
        let gen = WebGenerator::new(GenConfig::small(700), 5);
        let report = run_paired_measurement(&gen, &GuardConfig::strict(), 1, 700, 4);
        // Roughly three-quarters of crawls survive.
        let completion = report.valid_pairs as f64 / 700.0;
        assert!(
            (0.65..0.85).contains(&completion),
            "completion {completion}"
        );
        // With-guard is slower in aggregate (pooled across metrics).
        let added = report.mean_added_ms();
        assert!(added > 0.0, "mean added latency {added}");
        // The pooled per-site ratio medians sit above parity and below
        // anything pathological (paper: 1.108 / 1.111 / 1.122).
        let pooled =
            (report.ratios.0.median + report.ratios.1.median + report.ratios.2.median) / 3.0;
        assert!((1.0..1.6).contains(&pooled), "pooled ratio median {pooled}");
        // Heavy tail: mean > median in every condition/metric.
        assert!(report.load.0.mean_ms > report.load.0.median_ms);
        assert!(report.load.1.mean_ms > report.load.1.median_ms);
        assert!(report.dcl.0.mean_ms > report.dcl.0.median_ms);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let gen = WebGenerator::new(GenConfig::small(80), 5);
        let a = run_paired_measurement(&gen, &GuardConfig::strict(), 1, 80, 1);
        let b = run_paired_measurement(&gen, &GuardConfig::strict(), 1, 80, 4);
        assert_eq!(a.valid_pairs, b.valid_pairs);
        assert!((a.dcl.0.mean_ms - b.dcl.0.mean_ms).abs() < 1e-9);
        assert!((a.ratios.2.median - b.ratios.2.median).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_base() {
        let p = PairedRun {
            rank: 1,
            without: PageTiming::default(),
            with: PageTiming {
                dom_interactive_ms: 1.0,
                dom_content_loaded_ms: 1.0,
                load_event_ms: 1.0,
            },
        };
        assert!(p.ratio(|t| t.load_event_ms).is_nan());
    }

    #[test]
    fn stats_shim_edge_cases() {
        use super::cg_analysis_stats::{mean, median, percentile};
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 100.0), 4.0);
        // Percentiles are monotone in p.
        let v = [5.0, 1.0, 9.0, 3.0, 7.0];
        let mut last = f64::MIN;
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            let q = percentile(&v, p);
            assert!(q >= last, "percentile not monotone at {p}");
            last = q;
        }
    }

    #[test]
    fn ratio_summary_ignores_non_finite() {
        let r = super::ratio_summary(&[1.0, 2.0, f64::NAN, f64::INFINITY.recip(), 3.0]);
        assert!(r.median.is_finite());
        assert!(r.max >= 3.0);
        assert!(r.q1 <= r.median && r.median <= r.q3);
    }
}
