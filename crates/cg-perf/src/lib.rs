//! Performance evaluation (§7.3): paired page-load timings over the top
//! 10k sites, the Table 4 summary, and the distributional views of
//! Figures 6, 7, 9, and 10.
//!
//! Protocol, mirroring the paper: every site is visited once without and
//! once with CookieGuard (independent noise draws — the two conditions
//! are separate real page loads); pairs with invalid/non-positive
//! measurements are discarded; a fraction of visits fails outright, so
//! the final population is smaller than the crawl range (the paper pairs
//! 8,171 of 10,000).
//!
//! Both conditions run through [`cg_browser::visit_site`], whose cookie
//! traffic is mediated end to end by the access layer
//! (`cookieguard_core::GuardedJar`): the guarded condition attaches a
//! session to it, the baseline runs it guard-less. The overhead this
//! module measures is therefore exactly the enforcement cost at the
//! single chokepoint, not a per-call-site re-implementation of it.
//!
//! **Layer:** evaluation (drives paired `cg-browser` visits).
//! **Invariant:** guarded/unguarded pairs share one behaviour seed, so
//! timing deltas isolate the guard's overhead. **Entry points:**
//! `run_paired_measurement`, `PerfReport`.

pub mod paired;

pub use paired::{run_paired_measurement, MetricSummary, PairedRun, PerfReport, RatioSummary};
