//! Performance evaluation (§7.3): paired page-load timings over the top
//! 10k sites, the Table 4 summary, and the distributional views of
//! Figures 6, 7, 9, and 10.
//!
//! Protocol, mirroring the paper: every site is visited once without and
//! once with CookieGuard (independent noise draws — the two conditions
//! are separate real page loads); pairs with invalid/non-positive
//! measurements are discarded; a fraction of visits fails outright, so
//! the final population is smaller than the crawl range (the paper pairs
//! 8,171 of 10,000).

pub mod paired;

pub use paired::{run_paired_measurement, MetricSummary, PairedRun, PerfReport, RatioSummary};
