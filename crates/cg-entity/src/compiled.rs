//! The compiled entity map: `DomainId → EntityId` as a dense table.
//!
//! [`crate::EntityMap`] answers `same_entity` by lowercasing both
//! domains, hashing each into a `HashMap<String, String>`, and comparing
//! the owner *strings* — three allocations and two string hashes per
//! policy check. At crawl scale that is the hottest comparison in the
//! guard, so [`CompiledEntityMap`] flattens the map once (at
//! `GuardEngine` build time) into a dense vector indexed by
//! [`DomainId`]: `same_entity` becomes two array reads and an integer
//! compare.
//!
//! # Id lifecycle invariant
//!
//! [`EntityId`]s (like [`DomainId`]s) are **process-local, in-memory
//! handles only**. They are assigned at compile time, are stable for the
//! lifetime of the compiled map, and must never be serialized: wire
//! formats carry domain/entity *names*, resolved back through
//! [`cg_url::name`] at the boundary. Neither id type implements the
//! serde traits, so the compiler enforces the invariant.

use crate::EntityMap;
use cg_url::DomainId;
use std::collections::HashMap;

/// A dense, copyable handle for one organization in a compiled entity
/// map. Ids are assigned in sorted-domain order at compile time and are
/// only meaningful relative to the [`CompiledEntityMap`] that produced
/// them — compare for equality, never persist (wire formats never
/// contain ids; see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntityId(u32);

impl EntityId {
    /// The raw index (dense from 0 in compile order).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Sentinel for "domain not in the entity map" inside the dense table.
const NO_ENTITY: u32 = u32::MAX;

/// An [`EntityMap`] flattened to a `DomainId → EntityId` lookup table.
///
/// Built once per [`GuardEngine`](../cookieguard_core) compilation; the
/// table covers every domain interned up to that point, so lookups for
/// ids interned later (necessarily absent from the map) fall off the end
/// and correctly report "unknown".
#[derive(Debug, Clone)]
pub struct CompiledEntityMap {
    /// Indexed by `DomainId::index()`; `NO_ENTITY` = not in the map.
    table: Vec<u32>,
    entities: u32,
}

impl CompiledEntityMap {
    /// Flattens `map`, interning every registered domain. Entity ids are
    /// assigned in sorted `(domain, entity)` order, so compiling the
    /// same map twice yields identical ids.
    pub fn compile(map: &EntityMap) -> CompiledEntityMap {
        let mut pairs: Vec<(&str, &str)> = map.iter().collect();
        pairs.sort_unstable();
        let mut entity_ids: HashMap<&str, u32> = HashMap::new();
        let mut entries: Vec<(DomainId, u32)> = Vec::with_capacity(pairs.len());
        for (domain, entity) in pairs {
            let next = entity_ids.len() as u32;
            let eid = *entity_ids.entry(entity).or_insert(next);
            entries.push((cg_url::intern(domain), eid));
        }
        let size = entries
            .iter()
            .map(|(d, _)| d.index() as usize + 1)
            .max()
            .unwrap_or(0);
        let mut table = vec![NO_ENTITY; size];
        for (d, e) in entries {
            table[d.index() as usize] = e;
        }
        CompiledEntityMap {
            table,
            entities: entity_ids.len() as u32,
        }
    }

    /// The entity owning `domain`, or `None` when the domain is not in
    /// the map (one array read).
    pub fn entity_of(&self, domain: DomainId) -> Option<EntityId> {
        match self.table.get(domain.index() as usize) {
            Some(&e) if e != NO_ENTITY => Some(EntityId(e)),
            _ => None,
        }
    }

    /// Whether `domain` is registered in the map.
    pub fn contains(&self, domain: DomainId) -> bool {
        self.entity_of(domain).is_some()
    }

    /// True when both domains are *known to the map* and belong to the
    /// same organization — the guard's grouping predicate. Unknown
    /// domains never group (not even with themselves): identity of
    /// unknowns is the caller's own `DomainId` equality check, decided
    /// before grouping is consulted.
    pub fn same_entity(&self, a: DomainId, b: DomainId) -> bool {
        match (self.entity_of(a), self.entity_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of distinct organizations in the compiled map.
    pub fn entity_count(&self) -> usize {
        self.entities as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> EntityMap {
        let mut m = EntityMap::new();
        m.insert("facebook.net", "Meta");
        m.insert("fbcdn.net", "Meta");
        m.insert("instagram.com", "Meta");
        m.insert("criteo.com", "Criteo");
        m
    }

    #[test]
    fn groups_match_the_string_map() {
        let m = map();
        let c = CompiledEntityMap::compile(&m);
        let fb = cg_url::intern("facebook.net");
        let cdn = cg_url::intern("fbcdn.net");
        let ig = cg_url::intern("instagram.com");
        let criteo = cg_url::intern("criteo.com");
        assert!(c.same_entity(fb, cdn));
        assert!(c.same_entity(cdn, ig));
        assert!(!c.same_entity(fb, criteo));
        assert_eq!(c.entity_count(), 2);
    }

    #[test]
    fn unknown_domains_never_group() {
        let c = CompiledEntityMap::compile(&map());
        let unknown_a = cg_url::intern("compiled-unknown-a.example");
        let unknown_b = cg_url::intern("compiled-unknown-b.example");
        let fb = cg_url::intern("facebook.net");
        assert!(!c.contains(unknown_a));
        assert!(!c.same_entity(unknown_a, unknown_b));
        assert!(!c.same_entity(unknown_a, fb));
        // Not even with themselves: identity is decided by DomainId
        // equality upstream, never by the grouping table.
        assert!(!c.same_entity(unknown_a, unknown_a));
    }

    #[test]
    fn domains_interned_after_compile_are_unknown() {
        let c = CompiledEntityMap::compile(&map());
        let late = cg_url::intern("interned-after-compile.example");
        assert!(!c.contains(late));
        assert_eq!(c.entity_of(late), None);
    }

    #[test]
    fn compile_is_deterministic() {
        let m = map();
        let a = CompiledEntityMap::compile(&m);
        let b = CompiledEntityMap::compile(&m);
        for d in ["facebook.net", "fbcdn.net", "instagram.com", "criteo.com"] {
            let id = cg_url::intern(d);
            assert_eq!(a.entity_of(id), b.entity_of(id));
        }
    }
}
