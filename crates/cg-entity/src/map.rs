//! The entity map data structure.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Maps registrable domains (eTLD+1) to the organization that owns them.
///
/// Lookups are by eTLD+1; callers are expected to have already reduced
/// hosts to registrable domains (`cg_url::registrable_domain`). Unknown
/// domains map to themselves, so every domain always has an entity and
/// `same_entity` degrades gracefully to same-domain comparison — the same
/// fallback the paper's tooling uses for domains absent from Tracker
/// Radar.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EntityMap {
    domain_to_entity: HashMap<String, String>,
    entity_to_domains: HashMap<String, Vec<String>>,
}

/// Key normalization: lowercase with stray edge dots trimmed — the same
/// rule `cg_url::intern` applies, so the string map and its compiled
/// [`crate::CompiledEntityMap`] form agree on every input.
fn normalize(domain: &str) -> String {
    domain.trim_matches('.').to_ascii_lowercase()
}

impl EntityMap {
    /// Creates an empty map.
    pub fn new() -> EntityMap {
        EntityMap::default()
    }

    /// Registers `domain` as belonging to `entity`. Re-registering a
    /// domain moves it to the new entity.
    pub fn insert(&mut self, domain: &str, entity: &str) {
        let domain = normalize(domain);
        if let Some(old) = self
            .domain_to_entity
            .insert(domain.clone(), entity.to_string())
        {
            if let Some(list) = self.entity_to_domains.get_mut(&old) {
                list.retain(|d| d != &domain);
            }
        }
        self.entity_to_domains
            .entry(entity.to_string())
            .or_default()
            .push(domain);
    }

    /// The entity owning `domain`, or the domain itself when unknown.
    pub fn entity_of(&self, domain: &str) -> String {
        let key = normalize(domain);
        self.domain_to_entity.get(&key).cloned().unwrap_or(key)
    }

    /// True when two domains belong to the same organization.
    pub fn same_entity(&self, a: &str, b: &str) -> bool {
        self.entity_of(a) == self.entity_of(b)
    }

    /// All domains registered for `entity` (empty for unknown entities).
    pub fn domains_of(&self, entity: &str) -> &[String] {
        self.entity_to_domains
            .get(entity)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `domain` is present in the map.
    pub fn contains(&self, domain: &str) -> bool {
        self.domain_to_entity.contains_key(&normalize(domain))
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.domain_to_entity.len()
    }

    /// True when no domains are registered.
    pub fn is_empty(&self) -> bool {
        self.domain_to_entity.is_empty()
    }

    /// Every `(domain, entity)` pair, in unspecified order — callers
    /// needing determinism (config digests) must sort.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.domain_to_entity
            .iter()
            .map(|(d, e)| (d.as_str(), e.as_str()))
    }

    /// Merges another map into this one (later insertions win).
    pub fn merge(&mut self, other: &EntityMap) {
        for (d, e) in &other.domain_to_entity {
            self.insert(d, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut m = EntityMap::new();
        m.insert("facebook.net", "Meta");
        m.insert("fbcdn.net", "Meta");
        assert_eq!(m.entity_of("facebook.net"), "Meta");
        assert_eq!(m.entity_of("FBCDN.NET"), "Meta");
        assert_eq!(m.domains_of("Meta").len(), 2);
    }

    #[test]
    fn reregistration_moves_domain() {
        let mut m = EntityMap::new();
        m.insert("x.com", "Twitter");
        m.insert("x.com", "X Corp");
        assert_eq!(m.entity_of("x.com"), "X Corp");
        assert!(m.domains_of("Twitter").is_empty());
        assert_eq!(m.domains_of("X Corp"), &["x.com".to_string()]);
    }

    #[test]
    fn merge_combines() {
        let mut a = EntityMap::new();
        a.insert("a.com", "A");
        let mut b = EntityMap::new();
        b.insert("b.com", "B");
        a.merge(&b);
        assert!(a.contains("a.com") && a.contains("b.com"));
        assert_eq!(a.len(), 2);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn same_entity_is_an_equivalence_on_known_domains() {
        let mut m = EntityMap::new();
        m.insert("facebook.net", "Meta");
        m.insert("fbcdn.net", "Meta");
        m.insert("instagram.com", "Meta");
        m.insert("criteo.com", "Criteo");
        // Reflexive, symmetric, transitive within the entity.
        assert!(m.same_entity("facebook.net", "facebook.net"));
        assert!(m.same_entity("facebook.net", "fbcdn.net"));
        assert!(m.same_entity("fbcdn.net", "facebook.net"));
        assert!(m.same_entity("fbcdn.net", "instagram.com"));
        assert!(!m.same_entity("facebook.net", "criteo.com"));
    }

    #[test]
    fn unknown_domains_fall_back_to_self_entities() {
        let m = EntityMap::new();
        // Identity fallback must not equate two distinct unknowns.
        assert!(!m.contains("nobody-a.com"));
        assert_ne!(m.entity_of("nobody-a.com"), m.entity_of("nobody-b.com"));
        assert!(m.same_entity("nobody-a.com", "nobody-a.com"));
    }

    #[test]
    fn merge_unions_and_case_folds() {
        let mut a = EntityMap::new();
        a.insert("Google.COM", "Google");
        let mut b = EntityMap::new();
        b.insert("youtube.com", "Google");
        b.insert("criteo.com", "Criteo");
        a.merge(&b);
        assert!(a.same_entity("google.com", "YOUTUBE.com"));
        assert_eq!(a.domains_of("Google").len(), 2);
        assert!(a.contains("criteo.com"));
    }
}
