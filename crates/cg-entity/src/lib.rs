//! Domain → entity (organization) mapping — the reproduction's analog of
//! DuckDuckGo's Tracker Radar entity list.
//!
//! The paper uses the entity map in two places:
//!
//! 1. **Measurement** (§5.4, Table 2): exfiltrator script domains and
//!    destination domains are consolidated to entities so that, e.g.,
//!    `licdn.com` and `linkedin.com` count as one exfiltrator (LinkedIn /
//!    Microsoft), and per-cookie exfiltrator/destination counts are
//!    entity-level.
//! 2. **Defense** (§7.2): CookieGuard's whitelist feature groups all
//!    domains belonging to the same entity, so `fbcdn.net` scripts may
//!    access cookies created by `facebook.net` scripts on `facebook.com`,
//!    reducing SSO/functionality breakage from 11% to 3%.
//!
//! **Layer:** foundation (policy and analysis both consume it).
//! **Invariant:** unknown domains never group — `same_entity` is false
//! unless *both* sides are mapped. **Entry points:** `EntityMap`,
//! `builtin_entity_map`, `CompiledEntityMap` (the id-level table the
//! compiled policy reads).

pub mod compiled;
pub mod map;
pub mod registry;

pub use compiled::{CompiledEntityMap, EntityId};
pub use map::EntityMap;
pub use registry::builtin_entity_map;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_map_groups_paper_examples() {
        let map = builtin_entity_map();
        // §7.2: facebook.com and fbcdn.net belong to the same entity.
        assert!(map.same_entity("facebook.com", "fbcdn.net"));
        assert!(map.same_entity("facebook.net", "fbcdn.net"));
        // §7.2: zoom.us SSO involves microsoft.com and live.com — same entity.
        assert!(map.same_entity("microsoft.com", "live.com"));
        // Google properties group together.
        assert!(map.same_entity("googletagmanager.com", "google-analytics.com"));
        assert!(map.same_entity("doubleclick.net", "googlesyndication.com"));
        // Distinct organizations stay distinct.
        assert!(!map.same_entity("facebook.net", "criteo.com"));
        assert!(!map.same_entity("google-analytics.com", "yandex.ru"));
    }

    #[test]
    fn unknown_domains_fall_back_to_themselves() {
        let map = builtin_entity_map();
        assert_eq!(
            map.entity_of("totally-unknown.example"),
            "totally-unknown.example"
        );
        assert!(map.same_entity("totally-unknown.example", "totally-unknown.example"));
        assert!(!map.same_entity("totally-unknown.example", "other-unknown.example"));
    }
}
