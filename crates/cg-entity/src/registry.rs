//! The built-in entity registry: the organizations and domains that appear
//! in the paper's tables and case studies, plus the vendors the synthetic
//! ecosystem deploys. Mirrors the role of DuckDuckGo Tracker Radar's
//! `entities/` dataset.

use crate::map::EntityMap;

/// `(entity, domains)` seed data. Domains are eTLD+1.
///
/// Sources: the entities named in Tables 2 and 5, Figures 2 and 8, and the
/// case studies of §5.4–§5.5, with each organization's well-known script
/// and CDN domains.
pub const ENTITY_SEED: &[(&str, &[&str])] = &[
    (
        "Google",
        &[
            "google.com",
            "googletagmanager.com",
            "google-analytics.com",
            "doubleclick.net",
            "googlesyndication.com",
            "googleadservices.com",
            "gstatic.com",
            "googleapis.com",
            "youtube.com",
            "ggpht.com",
            "googleusercontent.com",
            "accounts-google.com",
        ],
    ),
    (
        "Meta",
        &[
            "facebook.com",
            "facebook.net",
            "fbcdn.net",
            "instagram.com",
            "meta.com",
        ],
    ),
    (
        "Microsoft",
        &[
            "microsoft.com",
            "live.com",
            "bing.com",
            "msn.com",
            "azureedge.net",
            "clarity.ms",
            "linkedin.com",
            "licdn.com",
            "msauth.net",
        ],
    ),
    (
        "Amazon",
        &[
            "amazon.com",
            "amazon-adsystem.com",
            "media-amazon.com",
            "awsstatic.com",
        ],
    ),
    (
        "Criteo",
        &["criteo.com", "criteo.net", "emailretargeting.com"],
    ),
    ("PubMatic", &["pubmatic.com"]),
    ("OpenX", &["openx.net"]),
    (
        "HubSpot",
        &[
            "hubspot.com",
            "hsforms.net",
            "hscollectedforms.net",
            "hsleadflows.net",
            "usemessages.com",
            "hs-scripts.com",
            "hs-analytics.net",
            "hubapi.com",
        ],
    ),
    (
        "Yandex",
        &["yandex.ru", "yandex.net", "mc-yandex.ru", "ymetrica.com"],
    ),
    ("Pinterest", &["pinterest.com", "pinimg.com"]),
    (
        "Adobe",
        &[
            "adobe.com",
            "adobedtm.com",
            "omtrdc.net",
            "demdex.net",
            "everesttech.net",
        ],
    ),
    ("Taboola", &["taboola.com", "taboolanews.com"]),
    ("Outbrain", &["outbrain.com", "outbrainimg.com"]),
    ("AdThrive", &["adthrive.com"]),
    ("Mediavine", &["mediavine.com"]),
    ("LiveIntent", &["liadm.com", "liveintent.com"]),
    ("Lotame", &["crwdcntrl.net", "lotame.com"]),
    ("Osano", &["osano.com"]),
    (
        "OneTrust",
        &["cookielaw.org", "onetrust.com", "cookiepro.com"],
    ),
    ("CookieYes", &["cdn-cookieyes.com", "cookieyes.com"]),
    ("Cookie-Script", &["cookie-script.com"]),
    ("Cookiebot", &["cookiebot.com", "cybotcookiebot.com"]),
    ("Civic Computing", &["civiccomputing.com"]),
    ("Tealium", &["tiqcdn.com", "tealiumiq.com", "tealium.com"]),
    (
        "Segment.io",
        &["segment.com", "segment.io", "cdn-segment.com"],
    ),
    ("Functional Software", &["sentry-cdn.com", "sentry.io"]),
    ("Marketo", &["marketo.net", "marketo.com", "mktoresp.com"]),
    (
        "Salesforce.com",
        &["salesforce.com", "pardot.com", "force.com", "krxd.net"],
    ),
    ("Snap", &["snapchat.com", "sc-static.net", "snap-dev.net"]),
    (
        "TikTok",
        &["tiktok.com", "tiktokcdn.com", "analytics-tiktok.com"],
    ),
    (
        "X",
        &["x.com", "twitter.com", "twimg.com", "ads-twitter.com"],
    ),
    (
        "Shopify",
        &[
            "shopify.com",
            "shopifycloud.com",
            "shopifycdn.com",
            "myshopify.com",
        ],
    ),
    ("Admiral", &["getadmiral.com", "admiral-cdn.com"]),
    (
        "Cloudflare",
        &[
            "cloudflare.com",
            "cdnjs-cloudflare.com",
            "cloudflareinsights.com",
        ],
    ),
    ("Fastly", &["fastly.net"]),
    ("Akamai", &["akamaized.net", "akamai.net", "go-mpulse.net"]),
    ("Oracle", &["bluekai.com", "addthis.com", "moatads.com"]),
    ("Nielsen", &["imrworldwide.com", "nielsen.com"]),
    ("comScore", &["scorecardresearch.com", "comscore.com"]),
    ("Quantcast", &["quantserve.com", "quantcount.com"]),
    ("The Trade Desk", &["adsrvr.org", "thetradedesk.com"]),
    ("Magnite", &["rubiconproject.com", "magnite.com"]),
    ("Index Exchange", &["casalemedia.com", "indexww.com"]),
    ("ID5", &["id5-sync.com"]),
    ("LiveRamp", &["rlcdn.com", "liveramp.com", "pippio.com"]),
    ("33Across", &["33across.com"]),
    ("Sharethrough", &["sharethrough.com"]),
    ("Intergi Entertainment", &["intergi.com", "playwire.com"]),
    ("New Relic", &["newrelic.com", "nr-data.net"]),
    ("Dynatrace", &["dynatrace.com", "ruxit.com"]),
    ("Hotjar", &["hotjar.com", "hotjar.io"]),
    ("FullStory", &["fullstory.com"]),
    ("Optimizely", &["optimizely.com", "optimizelyapis.com"]),
    ("VWO", &["visualwebsiteoptimizer.com", "vwo.com"]),
    ("Olark", &["olark.com"]),
    ("Intercom", &["intercom.io", "intercomcdn.com"]),
    ("Zendesk", &["zendesk.com", "zdassets.com"]),
    ("Drift", &["drift.com", "driftt.com"]),
    ("StatCounter", &["statcounter.com"]),
    ("Matomo", &["matomo.cloud", "matomo.org"]),
    ("Plausible", &["plausible.io"]),
    ("Cxense", &["cxense.com"]),
    ("Piano", &["piano.io", "npttech.com"]),
    ("Ketch", &["ketchjs.com", "ketch.com"]),
    ("GA Connector", &["gaconnector.com"]),
    ("Yahoo Japan", &["yimg.jp", "yahoo.co.jp"]),
    ("Yahoo", &["yahoo.com", "yimg.com", "adtechus.com"]),
    ("Mail.ru", &["mail.ru", "imgsmail.ru", "top-fwz1.mail.ru"]),
    ("Wordpress", &["wordpress.com", "wp.com", "gravatar.com"]),
    ("Wix", &["wix.com", "wixstatic.com", "parastorage.com"]),
    ("Squarespace", &["squarespace.com", "squarespace-cdn.com"]),
    ("Okta", &["okta.com", "oktacdn.com"]),
    ("Auth0", &["auth0.com", "auth0usercontent.com"]),
    ("Ezoic", &["ezodn.com", "ezoic.com", "ezoic.net"]),
    ("Freestar", &["pub.network", "freestar.com"]),
    ("Mountain", &["mountain.com"]),
    ("Script.ac", &["script.ac"]),
    ("Envybox", &["envybox.io"]),
    ("Mango Office", &["mango-office.ru"]),
    ("Prettylittlething", &["prettylittlething.com"]),
    ("WarnerMedia", &["cnn.com", "warnermedia.com", "turner.com"]),
    ("Zoom", &["zoom.us", "zoomgov.com"]),
    (
        "Gatehouse Media",
        &["gatehousemedia.com", "gannett-cdn.com"],
    ),
    ("AddShoppers", &["addshoppers.com", "shop.pe"]),
    ("Attentive", &["attentivemobile.com", "attn.tv"]),
    ("Klaviyo", &["klaviyo.com"]),
    (
        "Mailchimp",
        &["mailchimp.com", "list-manage.com", "chimpstatic.com"],
    ),
    ("Braze", &["braze.com", "appboycdn.com"]),
    ("OptiMonk", &["optimonk.com"]),
];

/// Builds the built-in entity map.
pub fn builtin_entity_map() -> EntityMap {
    let mut map = EntityMap::new();
    for (entity, domains) in ENTITY_SEED {
        for d in *domains {
            map.insert(d, entity);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_has_no_duplicate_domains() {
        let mut seen = std::collections::HashSet::new();
        for (_, domains) in ENTITY_SEED {
            for d in *domains {
                assert!(seen.insert(*d), "domain {d} registered twice");
            }
        }
    }

    #[test]
    fn builtin_covers_table2_domains() {
        let map = builtin_entity_map();
        // Every owner domain from Table 2 must be attributable to an entity.
        for d in [
            "googletagmanager.com",
            "google-analytics.com",
            "openx.net",
            "pubmatic.com",
            "facebook.net",
            "marketo.net",
            "yandex.ru",
            "crwdcntrl.net",
            "ketchjs.com",
            "yimg.jp",
            "gaconnector.com",
            "statcounter.com",
        ] {
            assert!(map.contains(d), "missing {d}");
        }
    }

    #[test]
    fn linkedin_is_microsoft() {
        // Table 2 lists Microsoft as a top exfiltrator via licdn.com scripts.
        let map = builtin_entity_map();
        assert_eq!(map.entity_of("licdn.com"), "Microsoft");
    }
}
