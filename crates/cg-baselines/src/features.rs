//! Behavioural feature extraction for the CookieGraph-style classifier
//! (Munir et al. \[44\]).
//!
//! CookieGraph identifies first-party *tracking* cookies from how they
//! are created and used, not from blocklists: lexical shape of the
//! value, who set the cookie, and whether its value flows into
//! third-party network requests. This module computes the analogous
//! feature vector per unique cookie pair from one visit log — the same
//! observables the §4 instrumentation records.

use cg_analysis::dataset::reconstruct;
use cg_analysis::PairKey;
use cg_hash::EncodedForms;
use cg_instrument::VisitLog;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Number of features per sample.
pub const FEATURE_COUNT: usize = 12;

/// Human-readable feature names, index-aligned with
/// [`PairSample::features`].
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "name_len",
    "name_underscore_prefix",
    "value_len_max",
    "value_entropy_max",
    "has_id_segment",
    "third_party_owner",
    "times_written",
    "distinct_cross_readers",
    "exfil_flow_requests",
    "exfil_dest_fanout",
    "via_http_header",
    "via_cookie_store",
];

/// One cookie pair's feature vector, with optional ground-truth label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSample {
    /// The cookie pair (name, owner eTLD+1).
    pub key: PairKey,
    /// eTLD+1 of the site the pair was observed on.
    pub site: String,
    /// The feature vector (see [`FEATURE_NAMES`]).
    pub features: [f64; FEATURE_COUNT],
    /// Ground truth when known: `true` = tracking cookie.
    pub label: Option<bool>,
}

/// Shannon entropy of a string in bits per character.
pub fn shannon_entropy(s: &str) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    let bytes = s.as_bytes();
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Splits a cookie value into candidate identifier segments the way the
/// §4.4 pipeline does: maximal alphanumeric runs of length ≥ 8.
pub fn id_segments(value: &str) -> Vec<&str> {
    value
        .split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|seg| seg.len() >= 8)
        .collect()
}

/// Extracts one [`PairSample`] per unique cookie pair observed in `log`.
/// Labels are left `None`; see `classifier::label_samples`.
pub fn extract_samples(log: &VisitLog) -> Vec<PairSample> {
    let site = log.site_domain.clone();
    let recon = reconstruct(log);

    // Pre-compute third-party request query strings once per log.
    let foreign_queries: Vec<(&str, &str)> = log
        .requests
        .iter()
        .filter(|r| {
            r.dest_domain
                .as_deref()
                .is_some_and(|d| !d.eq_ignore_ascii_case(&site))
        })
        .map(|r| (r.url.as_str(), r.dest_domain.as_deref().unwrap_or("")))
        .collect();

    let mut samples = Vec::with_capacity(recon.pairs.len());
    for (key, hist) in &recon.pairs {
        let mut f = [0.0f64; FEATURE_COUNT];
        f[0] = key.name.len() as f64;
        f[1] = f64::from(key.name.starts_with('_'));
        f[2] = hist.values.iter().map(String::len).max().unwrap_or(0) as f64;
        f[3] = hist
            .values
            .iter()
            .map(|v| shannon_entropy(v))
            .fold(0.0, f64::max);
        f[4] = f64::from(hist.values.iter().any(|v| !id_segments(v).is_empty()));
        f[5] = f64::from(!key.owner.eq_ignore_ascii_case(&site));
        f[6] = hist.values.len() as f64;

        // Cross-domain readers: actors other than the owner whose reads
        // returned this cookie name.
        let readers: HashSet<&str> = log
            .reads
            .iter()
            .filter(|r| r.cookies.iter().any(|(n, _)| n == &key.name))
            .filter_map(|r| r.actor.as_deref())
            .filter(|a| !a.eq_ignore_ascii_case(&key.owner))
            .collect();
        f[7] = readers.len() as f64;

        // Value flows into third-party requests (raw or encoded).
        let mut flow_requests = 0usize;
        let mut dests: HashSet<&str> = HashSet::new();
        for value in &hist.values {
            for seg in id_segments(value) {
                let forms = EncodedForms::of(seg);
                for (url, dest) in &foreign_queries {
                    if forms.appears_in(url) {
                        flow_requests += 1;
                        dests.insert(dest);
                    }
                }
            }
        }
        f[8] = flow_requests as f64;
        f[9] = dests.len() as f64;
        f[10] = f64::from(hist.api == Some(cg_instrument::CookieApi::HttpHeader));
        f[11] = f64::from(hist.api == Some(cg_instrument::CookieApi::CookieStore));

        samples.push(PairSample {
            key: key.clone(),
            site: site.clone(),
            features: f,
            label: None,
        });
    }
    samples.sort_by(|a, b| a.key.cmp(&b.key));
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{CookieApi, Recorder, WriteKind};

    fn make_log() -> VisitLog {
        let mut r = Recorder::new("site.com", 1);
        // A tracker identifier: high-entropy value, set by a third
        // party, exfiltrated to another third party.
        r.record_set(
            "_tid",
            "a9f3c2e8b1d44756",
            Some("tracker.com"),
            Some("https://t.tracker.com/t.js"),
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        // A benign preference cookie set by the site itself.
        r.record_set(
            "theme",
            "dark",
            Some("site.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            1,
        );
        // A cross-domain read that returned both cookies.
        r.record_read(
            Some("other.net"),
            CookieApi::DocumentCookie,
            vec![
                ("_tid".into(), "a9f3c2e8b1d44756".into()),
                ("theme".into(), "dark".into()),
            ],
            0,
            2,
        );
        // The identifier flows to a third-party endpoint.
        let script = cg_url::Url::parse("https://cdn.other.net/o.js").unwrap();
        r.record_request(
            "https://px.sink.io/c?id=a9f3c2e8b1d44756",
            cg_http::RequestKind::Image,
            Some(&script),
            "site.com",
            None,
            3,
        );
        r.finish()
    }

    fn feature(samples: &[PairSample], name: &str, idx: usize) -> f64 {
        samples
            .iter()
            .find(|s| s.key.name == name)
            .unwrap()
            .features[idx]
    }

    #[test]
    fn tracker_cookie_features_fire() {
        let samples = extract_samples(&make_log());
        assert_eq!(samples.len(), 2);
        assert_eq!(feature(&samples, "_tid", 1), 1.0, "underscore prefix");
        assert_eq!(feature(&samples, "_tid", 4), 1.0, "id segment");
        assert_eq!(feature(&samples, "_tid", 5), 1.0, "third-party owner");
        assert_eq!(feature(&samples, "_tid", 8), 1.0, "one exfil flow");
        assert_eq!(feature(&samples, "_tid", 9), 1.0, "one destination");
        assert!(feature(&samples, "_tid", 3) > 2.0, "identifier entropy");
    }

    #[test]
    fn benign_cookie_features_stay_low() {
        let samples = extract_samples(&make_log());
        assert_eq!(feature(&samples, "theme", 1), 0.0);
        assert_eq!(
            feature(&samples, "theme", 4),
            0.0,
            "no ≥8-char segment in 'dark'"
        );
        assert_eq!(feature(&samples, "theme", 5), 0.0, "first-party owner");
        assert_eq!(feature(&samples, "theme", 8), 0.0, "no flows");
    }

    #[test]
    fn encoded_flows_are_detected() {
        let mut r = Recorder::new("site.com", 1);
        let segment = "444332364caffe99";
        r.record_set(
            "_ga",
            &format!("GA1.1.{segment}"),
            Some("gtm.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        let b64 = cg_hash::b64encode(segment.as_bytes());
        let script = cg_url::Url::parse("https://snap.licdn.com/insight.js").unwrap();
        r.record_request(
            &format!("https://px.ads.linkedin.com/t?ga={b64}"),
            cg_http::RequestKind::Image,
            Some(&script),
            "site.com",
            None,
            1,
        );
        let samples = extract_samples(&r.finish());
        assert_eq!(
            feature(&samples, "_ga", 8),
            1.0,
            "Base64-encoded flow detected"
        );
    }

    #[test]
    fn first_party_requests_do_not_count_as_flows() {
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "sid",
            "deadbeefcafe1234",
            Some("site.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        let script = cg_url::Url::parse("https://www.site.com/app.js").unwrap();
        r.record_request(
            "https://api.site.com/save?sid=deadbeefcafe1234",
            cg_http::RequestKind::Xhr,
            Some(&script),
            "site.com",
            None,
            1,
        );
        let samples = extract_samples(&r.finish());
        assert_eq!(
            feature(&samples, "sid", 8),
            0.0,
            "same-site flow is not exfiltration"
        );
    }

    #[test]
    fn entropy_behaves() {
        assert_eq!(shannon_entropy(""), 0.0);
        assert_eq!(shannon_entropy("aaaa"), 0.0);
        let uniform = shannon_entropy("abcdefgh");
        assert!((uniform - 3.0).abs() < 1e-9);
        assert!(shannon_entropy("a9F!x0Qz") > shannon_entropy("aaaabbbb"));
    }

    #[test]
    fn id_segment_splitting() {
        assert_eq!(
            id_segments("fb.0.1746746266109.868308499845957651"),
            vec!["1746746266109", "868308499845957651"]
        );
        assert!(id_segments("short.ab.xy").is_empty());
        assert_eq!(id_segments("abcdefgh"), vec!["abcdefgh"]);
    }

    #[test]
    fn samples_are_sorted_and_deterministic() {
        let a = extract_samples(&make_log());
        let b = extract_samples(&make_log());
        assert_eq!(a, b);
        let keys: Vec<&PairKey> = a.iter().map(|s| &s.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
