//! Baseline defenses the paper positions CookieGuard against, built to
//! run on the same simulator and be measured by the same analyses.
//!
//! The paper's argument for per-script-origin isolation rests on three
//! comparisons that are made informally in §1, §2.1, and §9:
//!
//! 1. **Storage partitioning** (Safari ITP, Firefox Total Cookie
//!    Protection, Chrome CHIPS) stops cross-*site* tracking through
//!    embedded contexts but does nothing inside the main frame
//!    ([`partitioning`]);
//! 2. **Blocklists** (EasyList/EasyPrivacy-style script blocking) stop
//!    *listed* trackers but "struggle against domain or URL
//!    manipulation" (Storey et al. \[65\]) ([`blocklist`]);
//! 3. **ML cookie classifiers** (CookieGraph, Munir et al. \[44\]) block
//!    tracking cookies they recognize, with false negatives that keep
//!    leaking and false positives that break features ([`classifier`],
//!    [`tree`], [`features`]).
//!
//! [`compare`] runs all of them — and CookieGuard — over one generated
//! population and emits the protection-vs-breakage matrix.
//!
//! **Layer:** analysis/defense (same simulator, same logs as the guard
//! evaluation). **Invariant:** every defense is measured by the identical
//! crawl + detector pipeline, so matrix rows are comparable cell for
//! cell. **Entry points:** `Defense`, `run_defense_matrix`,
//! `BlocklistDefense`, `run_csp_gap`, `fidelity_study`.

pub mod blocklist;
pub mod classifier;
pub mod compare;
pub mod csp_gap;
pub mod features;
pub mod partitioning;
pub mod tree;

pub use blocklist::{
    apply_evasion, BlocklistDefense, EvasionConfig, EvasionStats, EvasionTechnique, PruneStats,
};
pub use classifier::{
    counterfactual_block, fidelity_study, label_samples, residual_log, BlockOutcome,
    CookieGraphLite, EvalReport, FidelityStudy, TrainReport,
};
pub use compare::{run_defense_matrix, Defense, DefenseRow, MatrixOptions};
pub use csp_gap::{run_csp_gap, CspCondition, CspGapRow};
pub use features::{
    extract_samples, id_segments, shannon_entropy, PairSample, FEATURE_COUNT, FEATURE_NAMES,
};
pub use partitioning::{
    main_frame_leak_demo, simulate_embedded_tracking, sop_boundary_demo, EmbeddedTrackingOutcome,
    MainFrameLeak, PartitionKey, PartitionedStore, PartitioningModel, SopBoundary,
};
pub use tree::{DecisionTree, ForestConfig, RandomForest, TreeConfig};
