//! The blocklist baseline: filter-list-driven script blocking, and the
//! evasion techniques that defeat it.
//!
//! §1 positions CookieGuard against "blocklist-based defenses that
//! struggle against domain or URL manipulation" (Storey et al. \[65\]):
//! a content blocker refuses to *load* scripts whose URLs match
//! crowd-sourced rules, so a listed tracker never executes — but a
//! tracker that serves the same code from a rotated domain, a
//! randomized path, or the first party's own host sails through.
//!
//! [`BlocklistDefense`] prunes a site blueprint the way an in-browser
//! blocker prunes fetches; [`apply_evasion`] rewrites tracker script
//! URLs with the three §8 manipulation techniques so the comparison
//! harness can measure how much protection each one erases.

use cg_filterlist::{FilterEngine, MatchContext, ResourceType};
use cg_script::ScriptOp;
use cg_url::Url;
use cg_webgen::{PageBlueprint, ScriptBlueprint, SiteBlueprint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A content blocker built from the nine combined filter lists (§4.3).
pub struct BlocklistDefense {
    engine: FilterEngine,
}

/// What [`BlocklistDefense::prune_site`] removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// Markup (directly included) scripts removed.
    pub markup_blocked: usize,
    /// Injectable (transitively included) scripts removed.
    pub injectable_blocked: usize,
    /// Scripts that survived across all pages.
    pub survivors: usize,
}

impl BlocklistDefense {
    /// Wraps a compiled filter engine.
    pub fn new(engine: FilterEngine) -> BlocklistDefense {
        BlocklistDefense { engine }
    }

    /// Builds the blocker from the same synthetic lists the measurement
    /// pipeline combines.
    pub fn from_registry(registry: &cg_webgen::VendorRegistry) -> BlocklistDefense {
        BlocklistDefense::new(cg_analysis::build_filter_engine(registry))
    }

    /// Whether the blocker would refuse to load `url` as a script on a
    /// page of `site_domain`.
    pub fn blocks(&self, url: &str, site_domain: &str) -> bool {
        let third_party = Url::parse(url)
            .ok()
            .and_then(|u| u.registrable_domain())
            .is_some_and(|d| !d.eq_ignore_ascii_case(site_domain));
        let ctx = MatchContext {
            page_domain: site_domain.to_string(),
            resource: ResourceType::Script,
            third_party,
        };
        self.engine.is_tracking(url, &ctx)
    }

    /// Applies the blocker to a site blueprint: markup scripts whose URL
    /// matches a blocking rule are dropped (never parsed, never run);
    /// matching injectables are removed from the resolution map, so a
    /// tag manager's `InjectScript` for them fails exactly like a
    /// blocked dynamic fetch. Inline scripts have no URL and always
    /// load — one of the §8 evasion channels, preserved faithfully.
    pub fn prune_site(&self, site: &SiteBlueprint) -> (SiteBlueprint, PruneStats) {
        let mut out = site.clone();
        let mut stats = PruneStats::default();
        let domain = site.spec.domain.clone();

        let mut prune_page = |page: &mut PageBlueprint| {
            let before = page.scripts.len();
            page.scripts.retain(|s: &ScriptBlueprint| match &s.url {
                Some(u) => !self.blocks(u, &domain),
                None => true,
            });
            stats.markup_blocked += before - page.scripts.len();
            stats.survivors += page.scripts.len();
        };
        prune_page(&mut out.landing);
        for page in &mut out.subpages {
            prune_page(page);
        }

        let before = out.injectables.len();
        out.injectables.retain(|url, _| !self.blocks(url, &domain));
        stats.injectable_blocked = before - out.injectables.len();
        (out, stats)
    }
}

/// One URL-manipulation technique from Storey et al. \[65\] / §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvasionTechnique {
    /// Serve the script from a freshly minted domain the lists have
    /// never seen.
    DomainRotation,
    /// Keep the domain but randomize the path (defeats path rules).
    PathRandomization,
    /// Host the script on the first party's own domain (§8: defeats
    /// URL-keyed *attribution* too — including CookieGuard's).
    SelfHosting,
}

/// Evasion deployment knobs.
#[derive(Debug, Clone)]
pub struct EvasionConfig {
    /// Probability a listed tracker script evades at all.
    pub evade_prob: f64,
    /// Relative weights of the three techniques
    /// (rotation, path randomization, self-hosting).
    pub technique_weights: [f64; 3],
    /// Seed for deterministic rewriting.
    pub seed: u64,
}

impl Default for EvasionConfig {
    fn default() -> EvasionConfig {
        EvasionConfig {
            evade_prob: 0.8,
            // Rotation dominates in the wild; self-hosting needs the
            // site owner's cooperation.
            technique_weights: [0.6, 0.25, 0.15],
            seed: 0x57AB1E,
        }
    }
}

/// What [`apply_evasion`] rewrote.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvasionStats {
    /// Scripts moved to rotated domains.
    pub rotated: usize,
    /// Scripts with randomized paths.
    pub path_randomized: usize,
    /// Scripts moved onto the first party's host.
    pub self_hosted: usize,
    /// Old URL → new URL, for forensics.
    pub renames: Vec<(String, String)>,
}

impl EvasionStats {
    /// Total scripts that evaded.
    pub fn total(&self) -> usize {
        self.rotated + self.path_randomized + self.self_hosted
    }
}

/// Rewrites the tracker script URLs of `site` that `defense` would
/// block, using the configured evasion mix. Every reference is kept
/// consistent: markup `src` attributes, the injectable-resolution map,
/// and `InjectScript` operations nested anywhere in behaviour programs
/// (including `Defer`/`Microtask`/`OnCookieChange` bodies).
pub fn apply_evasion(
    site: &SiteBlueprint,
    defense: &BlocklistDefense,
    cfg: &EvasionConfig,
) -> (SiteBlueprint, EvasionStats) {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ hash_str(&site.spec.domain));
    let mut stats = EvasionStats::default();
    let mut renames: HashMap<String, String> = HashMap::new();

    // Collect every distinct script URL the blocker would stop.
    let mut listed: Vec<String> = Vec::new();
    let push_listed = |url: &str, listed: &mut Vec<String>| {
        if defense.blocks(url, &site.spec.domain) && !listed.iter().any(|u| u == url) {
            listed.push(url.to_string());
        }
    };
    for page in std::iter::once(&site.landing).chain(site.subpages.iter()) {
        for s in &page.scripts {
            if let Some(u) = &s.url {
                push_listed(u, &mut listed);
            }
        }
    }
    for url in site.injectables.keys() {
        push_listed(url, &mut listed);
    }

    for url in listed {
        if !rng.gen_bool(cfg.evade_prob.clamp(0.0, 1.0)) {
            continue;
        }
        let technique = pick_technique(&mut rng, &cfg.technique_weights);
        let tag = rng.gen::<u64>();
        let new_url = match technique {
            EvasionTechnique::DomainRotation => {
                stats.rotated += 1;
                format!("https://cdn{:x}.rt{:x}.com/t.js", tag & 0xffff, tag >> 48)
            }
            EvasionTechnique::PathRandomization => {
                stats.path_randomized += 1;
                match Url::parse(&url) {
                    Ok(u) => format!(
                        "https://{}/x{:012x}.js",
                        u.host_str(),
                        tag & 0xffff_ffff_ffff
                    ),
                    Err(_) => continue,
                }
            }
            EvasionTechnique::SelfHosting => {
                stats.self_hosted += 1;
                format!(
                    "https://www.{}/assets/v{:08x}.js",
                    site.spec.domain, tag as u32
                )
            }
        };
        stats.renames.push((url.clone(), new_url.clone()));
        renames.insert(url, new_url);
    }

    let mut out = site.clone();
    rewrite_page(&mut out.landing, &renames);
    for page in &mut out.subpages {
        rewrite_page(page, &renames);
    }
    out.injectables = out
        .injectables
        .into_iter()
        .map(|(url, mut ops)| {
            rewrite_ops(&mut ops, &renames);
            (renames.get(&url).cloned().unwrap_or(url), ops)
        })
        .collect();
    (out, stats)
}

fn pick_technique(rng: &mut StdRng, weights: &[f64; 3]) -> EvasionTechnique {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total.max(f64::MIN_POSITIVE);
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return match i {
                0 => EvasionTechnique::DomainRotation,
                1 => EvasionTechnique::PathRandomization,
                _ => EvasionTechnique::SelfHosting,
            };
        }
    }
    EvasionTechnique::SelfHosting
}

fn rewrite_page(page: &mut PageBlueprint, renames: &HashMap<String, String>) {
    for s in &mut page.scripts {
        if let Some(u) = &s.url {
            if let Some(new) = renames.get(u) {
                s.url = Some(new.clone());
            }
        }
        rewrite_ops(&mut s.ops, renames);
    }
}

fn rewrite_ops(ops: &mut [ScriptOp], renames: &HashMap<String, String>) {
    for op in ops {
        match op {
            ScriptOp::InjectScript { url } => {
                if let Some(new) = renames.get(url) {
                    *url = new.clone();
                }
            }
            ScriptOp::Defer { ops, .. }
            | ScriptOp::Microtask { ops }
            | ScriptOp::OnCookieChange { ops, .. } => rewrite_ops(ops, renames),
            _ => {}
        }
    }
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a; only used to diversify per-site RNG streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::{GenConfig, WebGenerator};

    fn generator() -> WebGenerator {
        WebGenerator::new(GenConfig::small(300), 0xC00C1E)
    }

    fn tracker_heavy_site(g: &WebGenerator, d: &BlocklistDefense) -> SiteBlueprint {
        (1..=300)
            .map(|r| g.blueprint(r))
            .find(|b| {
                b.spec.crawl_ok
                    && b.landing.scripts.iter().any(|s| {
                        s.url
                            .as_deref()
                            .is_some_and(|u| d.blocks(u, &b.spec.domain))
                    })
            })
            .expect("a site with ≥1 listed tracker")
    }

    #[test]
    fn prune_removes_listed_scripts_only() {
        let g = generator();
        let defense = BlocklistDefense::from_registry(g.registry());
        let site = tracker_heavy_site(&g, &defense);
        let (pruned, stats) = defense.prune_site(&site);
        assert!(stats.markup_blocked > 0);
        assert!(pruned.landing.scripts.len() < site.landing.scripts.len());
        for s in &pruned.landing.scripts {
            if let Some(u) = &s.url {
                assert!(
                    !defense.blocks(u, &site.spec.domain),
                    "{u} survived pruning"
                );
            }
        }
        // Inline scripts always survive.
        let inline_before = site
            .landing
            .scripts
            .iter()
            .filter(|s| s.url.is_none())
            .count();
        let inline_after = pruned
            .landing
            .scripts
            .iter()
            .filter(|s| s.url.is_none())
            .count();
        assert_eq!(inline_before, inline_after);
    }

    #[test]
    fn prune_drops_blocked_injectables() {
        let g = generator();
        let defense = BlocklistDefense::from_registry(g.registry());
        // Find a site with at least one blocked injectable.
        let site = (1..=300)
            .map(|r| g.blueprint(r))
            .find(|b| {
                b.injectables
                    .keys()
                    .any(|u| defense.blocks(u, &b.spec.domain))
            })
            .expect("site with blocked injectable");
        let (pruned, stats) = defense.prune_site(&site);
        assert!(stats.injectable_blocked > 0);
        assert!(pruned.injectables.len() < site.injectables.len());
    }

    #[test]
    fn evasion_renames_are_consistent_everywhere() {
        let g = generator();
        let defense = BlocklistDefense::from_registry(g.registry());
        let site = tracker_heavy_site(&g, &defense);
        let cfg = EvasionConfig {
            evade_prob: 1.0,
            ..EvasionConfig::default()
        };
        let (evaded, stats) = apply_evasion(&site, &defense, &cfg);
        assert!(stats.total() > 0);
        // No page may still reference an old (renamed) URL.
        let old: std::collections::HashSet<&String> =
            stats.renames.iter().map(|(o, _)| o).collect();
        for page in std::iter::once(&evaded.landing).chain(evaded.subpages.iter()) {
            for s in &page.scripts {
                if let Some(u) = &s.url {
                    assert!(!old.contains(u), "stale markup reference to {u}");
                }
                assert_ops_clean(&s.ops, &old);
            }
        }
        for (url, ops) in &evaded.injectables {
            assert!(!old.contains(url), "stale injectable key {url}");
            assert_ops_clean(ops, &old);
        }
    }

    fn assert_ops_clean(ops: &[ScriptOp], old: &std::collections::HashSet<&String>) {
        for op in ops {
            match op {
                ScriptOp::InjectScript { url } => assert!(!old.contains(url), "stale inject {url}"),
                ScriptOp::Defer { ops, .. }
                | ScriptOp::Microtask { ops }
                | ScriptOp::OnCookieChange { ops, .. } => assert_ops_clean(ops, old),
                _ => {}
            }
        }
    }

    #[test]
    fn evaded_scripts_pass_the_blocker() {
        let g = generator();
        let defense = BlocklistDefense::from_registry(g.registry());
        let site = tracker_heavy_site(&g, &defense);
        let cfg = EvasionConfig {
            evade_prob: 1.0,
            // Rotation + self-hosting only: path randomization keeps the
            // (listed) domain so domain rules still catch it.
            technique_weights: [0.7, 0.0, 0.3],
            seed: 7,
        };
        let (evaded, stats) = apply_evasion(&site, &defense, &cfg);
        assert!(stats.total() > 0);
        let (_, after) = defense.prune_site(&evaded);
        let (_, before) = defense.prune_site(&site);
        assert!(
            after.markup_blocked + after.injectable_blocked
                < before.markup_blocked + before.injectable_blocked,
            "evasion must reduce the blocker's catch ({before:?} -> {after:?})"
        );
    }

    #[test]
    fn evasion_is_deterministic_per_seed() {
        let g = generator();
        let defense = BlocklistDefense::from_registry(g.registry());
        let site = tracker_heavy_site(&g, &defense);
        let cfg = EvasionConfig::default();
        let (_, a) = apply_evasion(&site, &defense, &cfg);
        let (_, b) = apply_evasion(&site, &defense, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn self_hosted_scripts_become_first_party() {
        let g = generator();
        let defense = BlocklistDefense::from_registry(g.registry());
        let site = tracker_heavy_site(&g, &defense);
        let cfg = EvasionConfig {
            evade_prob: 1.0,
            technique_weights: [0.0, 0.0, 1.0],
            seed: 3,
        };
        let (_, stats) = apply_evasion(&site, &defense, &cfg);
        assert_eq!(stats.self_hosted, stats.total());
        for (_, new_url) in &stats.renames {
            let u = Url::parse(new_url).unwrap();
            assert_eq!(
                u.registrable_domain().as_deref(),
                Some(site.spec.domain.as_str())
            );
        }
    }
}
