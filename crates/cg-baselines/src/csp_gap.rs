//! The CSP gap, quantified (§2.1): "While CSP allows some control over
//! script inclusion, it does not regulate cookie access or define which
//! scripts may read or modify cookies."
//!
//! The experiment deploys realistic `script-src` policies on every
//! site of a population and measures (a) how many script loads CSP
//! refuses and (b) how much cross-domain cookie activity remains among
//! the scripts it admits. A CookieGuard column anchors the contrast:
//! the same population, no load blocking at all, and the cookie-level
//! exposure collapses anyway — the two mechanisms govern different
//! layers.

use cg_analysis::{cross_domain_summary, detect_exfiltration, detect_manipulation, Dataset};
use cg_browser::{visit_site, VisitConfig};
use cg_entity::EntityMap;
use cg_instrument::VisitLog;
use cg_webgen::{csp_for_site, CspStyle, WebGenerator};
use cookieguard_core::GuardConfig;
use serde::{Deserialize, Serialize};

/// One condition of the CSP experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CspCondition {
    /// No policy served (the measured web's default).
    NoCsp,
    /// Every site serves a `DirectVendorsOnly` policy.
    DirectVendorsOnly,
    /// Every site serves a `FullStack` policy.
    FullStack,
    /// No policy, CookieGuard strict — the layer contrast.
    CookieGuardStrict,
}

impl CspCondition {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CspCondition::NoCsp => "no CSP",
            CspCondition::DirectVendorsOnly => "CSP: direct vendors only",
            CspCondition::FullStack => "CSP: full stack allowlisted",
            CspCondition::CookieGuardStrict => "no CSP + CookieGuard",
        }
    }
}

/// One row of the CSP-gap table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CspGapRow {
    /// Condition name.
    pub name: String,
    /// Script loads refused by CSP across the population.
    pub scripts_blocked: usize,
    /// % of sites with ≥1 cross-domain exfiltration.
    pub exfil_sites_pct: f64,
    /// % of sites with ≥1 cross-domain overwrite.
    pub overwrite_sites_pct: f64,
    /// Cross-domain exfiltration events that survived (absolute).
    pub exfiltrated_pairs: usize,
}

/// Runs the four conditions over `ranks`.
pub fn run_csp_gap(
    gen: &WebGenerator,
    ranks: std::ops::RangeInclusive<usize>,
    entities: &EntityMap,
) -> Vec<CspGapRow> {
    [
        CspCondition::NoCsp,
        CspCondition::DirectVendorsOnly,
        CspCondition::FullStack,
        CspCondition::CookieGuardStrict,
    ]
    .into_iter()
    .map(|cond| run_condition(gen, ranks.clone(), cond, entities))
    .collect()
}

fn run_condition(
    gen: &WebGenerator,
    ranks: std::ops::RangeInclusive<usize>,
    cond: CspCondition,
    entities: &EntityMap,
) -> CspGapRow {
    let cfg = match cond {
        CspCondition::CookieGuardStrict => VisitConfig::guarded(GuardConfig::strict()),
        _ => VisitConfig::regular(),
    };
    let mut blocked = 0usize;
    let logs: Vec<VisitLog> = ranks
        .map(|rank| {
            let mut site = gen.blueprint(rank);
            match cond {
                CspCondition::DirectVendorsOnly => {
                    site.csp = Some(csp_for_site(&site, CspStyle::DirectVendorsOnly));
                }
                CspCondition::FullStack => {
                    site.csp = Some(csp_for_site(&site, CspStyle::FullStack));
                }
                CspCondition::NoCsp | CspCondition::CookieGuardStrict => {}
            }
            let out = visit_site(&site, &cfg, gen.site_seed(rank));
            blocked += out.csp_blocked;
            out.log
        })
        .collect();

    let ds = Dataset::from_logs(logs);
    let exfil = detect_exfiltration(&ds, entities);
    let manip = detect_manipulation(&ds, entities);
    let summary = cross_domain_summary(&ds, &exfil, &manip);
    CspGapRow {
        name: cond.name().to_string(),
        scripts_blocked: blocked,
        exfil_sites_pct: summary.doc_exfiltration.sites_pct,
        overwrite_sites_pct: summary.doc_overwriting.sites_pct,
        exfiltrated_pairs: summary.doc_exfiltration.cookies_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::GenConfig;

    #[test]
    fn csp_gap_shape_holds() {
        let gen = WebGenerator::new(GenConfig::small(260), 0xC00C1E);
        let entities = cg_entity::builtin_entity_map();
        let rows = run_csp_gap(&gen, 1..=120, &entities);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.name.starts_with(name))
                .unwrap_or_else(|| panic!("{name}"))
        };
        let none = by("no CSP");
        let direct = by("CSP: direct");
        let full = by("CSP: full");
        let guard = by("no CSP + CookieGuard");

        // CSP does block loads when the policy has gaps…
        assert_eq!(none.scripts_blocked, 0);
        assert!(
            direct.scripts_blocked > 0,
            "direct-vendors policies must refuse some fan-out"
        );
        assert_eq!(
            full.scripts_blocked, 0,
            "full-stack policies admit everything"
        );

        // …but a fully-allowlisting policy changes cookie exposure by
        // exactly nothing (§2.1's claim, measured):
        assert_eq!(full.exfil_sites_pct, none.exfil_sites_pct);
        assert_eq!(full.overwrite_sites_pct, none.overwrite_sites_pct);

        // whereas CookieGuard blocks zero loads and still collapses
        // cookie exposure.
        assert_eq!(guard.scripts_blocked, 0);
        assert!(guard.exfil_sites_pct < none.exfil_sites_pct / 2.0);

        // A gapped CSP reduces exposure only as a side effect of
        // unloaded scripts — it cannot go below the guard on this
        // population.
        assert!(direct.exfil_sites_pct >= guard.exfil_sites_pct);
    }
}
