//! CookieGraph-lite: a machine-learning first-party tracking-cookie
//! blocker (after Munir et al. \[44\]), the learning-based baseline the
//! paper's related work positions CookieGuard against.
//!
//! Pipeline: [`label_samples`] derives ground truth from the vendor
//! registry (which vendor's script owns each cookie pair, and whether
//! that vendor is advertising/tracking); [`CookieGraphLite::train`]
//! fits a random forest on behavioural features; the fitted model
//! classifies unseen pairs, and [`counterfactual_block`] measures what
//! blocking the classified cookies would and would not have prevented —
//! including the two structural gaps CookieGuard does not share:
//! false negatives keep leaking, and false positives break features
//! whose cookies were misclassified.

use crate::features::{extract_samples, PairSample, FEATURE_COUNT};
use crate::tree::{ForestConfig, RandomForest};
use cg_analysis::PairKey;
use cg_instrument::VisitLog;
use cg_webgen::VendorRegistry;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A fitted tracking-cookie classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CookieGraphLite {
    forest: RandomForest,
    /// Decision threshold on the forest's probability output.
    pub threshold: f64,
}

/// Training summary.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainReport {
    /// Labeled samples used.
    pub samples: usize,
    /// Positive (tracking) samples among them.
    pub positives: usize,
    /// Samples skipped for lack of ground truth.
    pub unlabeled: usize,
}

/// Confusion-matrix evaluation of a fitted classifier.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EvalReport {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl EvalReport {
    /// Precision (1.0 when no positives were predicted).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall (1.0 when no positives exist).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            1.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Fills [`PairSample::label`] from the vendor registry: a pair is a
/// tracking cookie when the script domain that owns it belongs to an
/// advertising/tracking vendor. Pairs owned by the site itself or by
/// functional vendors are negatives; pairs owned by domains the
/// registry does not know stay unlabeled.
pub fn label_samples(samples: &mut [PairSample], registry: &VendorRegistry) {
    for s in samples {
        s.label = if s.key.owner.eq_ignore_ascii_case(&s.site) {
            Some(false)
        } else {
            registry
                .by_domain(&s.key.owner)
                .map(|v| v.category.is_ad_tracking())
        };
    }
}

impl CookieGraphLite {
    /// Trains on the labeled subset of `samples`.
    ///
    /// Panics when no labeled samples exist (there is nothing to learn
    /// from); callers crawl a training population first.
    pub fn train(
        samples: &[PairSample],
        cfg: &ForestConfig,
        seed: u64,
    ) -> (CookieGraphLite, TrainReport) {
        let labeled: Vec<&PairSample> = samples.iter().filter(|s| s.label.is_some()).collect();
        assert!(!labeled.is_empty(), "no labeled samples to train on");
        let xs: Vec<&[f64]> = labeled.iter().map(|s| s.features.as_slice()).collect();
        let ys: Vec<bool> = labeled.iter().map(|s| s.label.unwrap()).collect();
        let report = TrainReport {
            samples: labeled.len(),
            positives: ys.iter().filter(|&&y| y).count(),
            unlabeled: samples.len() - labeled.len(),
        };
        let forest = RandomForest::fit(&xs, &ys, cfg, seed);
        (
            CookieGraphLite {
                forest,
                threshold: 0.5,
            },
            report,
        )
    }

    /// Probability that `sample` is a tracking cookie.
    pub fn predict_prob(&self, sample: &PairSample) -> f64 {
        debug_assert_eq!(sample.features.len(), FEATURE_COUNT);
        self.forest.predict_prob(&sample.features)
    }

    /// Binary decision at the configured threshold.
    pub fn classify(&self, sample: &PairSample) -> bool {
        self.predict_prob(sample) >= self.threshold
    }

    /// Confusion matrix over the labeled subset of `samples`.
    pub fn evaluate(&self, samples: &[PairSample]) -> EvalReport {
        let mut r = EvalReport::default();
        for s in samples {
            let Some(truth) = s.label else { continue };
            match (self.classify(s), truth) {
                (true, true) => r.tp += 1,
                (true, false) => r.fp += 1,
                (false, false) => r.tn += 1,
                (false, true) => r.fn_ += 1,
            }
        }
        r
    }
}

/// Cross-split fidelity study: train on one slice of the population,
/// evaluate on a disjoint slice — CookieGraph's own evaluation shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FidelityStudy {
    /// Training summary.
    pub train: TrainReport,
    /// Held-out confusion matrix.
    pub eval: EvalReport,
    /// Labeled samples in the held-out split.
    pub eval_samples: usize,
    /// Per-feature split usage is not tracked (trees are bagged), but
    /// the top-level accuracy/precision/recall triple is what Munir et
    /// al. report; stored here for the experiment renderer.
    pub accuracy: f64,
    /// Precision on the held-out split.
    pub precision: f64,
    /// Recall on the held-out split.
    pub recall: f64,
    /// F1 on the held-out split.
    pub f1: f64,
}

/// Crawls `train_ranks` and `eval_ranks` (disjoint by construction of
/// the caller), trains on the first, evaluates on the second.
pub fn fidelity_study(
    gen: &cg_webgen::WebGenerator,
    train_ranks: std::ops::RangeInclusive<usize>,
    eval_ranks: std::ops::RangeInclusive<usize>,
    cfg: &ForestConfig,
    seed: u64,
) -> FidelityStudy {
    use cg_browser::{visit_site, VisitConfig};
    let collect = |ranks: std::ops::RangeInclusive<usize>| {
        let mut all = Vec::new();
        for rank in ranks {
            let site = gen.blueprint(rank);
            if !site.spec.crawl_ok {
                continue;
            }
            let log = visit_site(&site, &VisitConfig::regular(), gen.site_seed(rank)).log;
            let mut samples = extract_samples(&log);
            label_samples(&mut samples, gen.registry());
            all.extend(samples);
        }
        all
    };
    let train_set = collect(train_ranks);
    let eval_set = collect(eval_ranks);
    let (clf, train) = CookieGraphLite::train(&train_set, cfg, seed);
    let eval = clf.evaluate(&eval_set);
    FidelityStudy {
        train,
        eval,
        eval_samples: eval_set.iter().filter(|s| s.label.is_some()).count(),
        accuracy: eval.accuracy(),
        precision: eval.precision(),
        recall: eval.recall(),
        f1: eval.f1(),
    }
}

/// What blocking the classified cookies would have changed on one site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockOutcome {
    /// Pairs the classifier blocked on this site.
    pub blocked: HashSet<PairKey>,
    /// Cookie names blocked (for probe matching).
    pub blocked_names: HashSet<String>,
    /// Probes that depended on a blocked cookie (collateral breakage).
    pub broken_probes: usize,
    /// Probes evaluated.
    pub total_probes: usize,
}

/// Classifies every pair in `log` and computes the counterfactual:
/// which cookies the deployed classifier would have blocked, and which
/// functional probes would have broken because their cookie was
/// (mis)classified. The caller removes blocked pairs from the dataset
/// before re-running the cross-domain analyses — the same
/// classify-then-block evaluation CookieGraph uses.
pub fn counterfactual_block(clf: &CookieGraphLite, log: &VisitLog) -> BlockOutcome {
    let samples = extract_samples(log);
    let mut out = BlockOutcome::default();
    for s in &samples {
        if clf.classify(s) {
            out.blocked_names.insert(s.key.name.clone());
            out.blocked.insert(s.key.clone());
        }
    }
    out.total_probes = log.probes.len();
    out.broken_probes = log
        .probes
        .iter()
        .filter(|p| out.blocked_names.contains(&p.cookie))
        .count();
    out
}

/// Strips every event that involves a blocked pair from `log`, yielding
/// the residual activity the classifier's deployment could not prevent.
/// Requests are kept (the classifier blocks cookies, not the network),
/// but set events on blocked pairs vanish — so exfiltration of their
/// values no longer attributes in the downstream analyses.
pub fn residual_log(log: &VisitLog, blocked_names: &HashSet<String>) -> VisitLog {
    let mut out = log.clone();
    out.sets.retain(|ev| !blocked_names.contains(&ev.name));
    for read in &mut out.reads {
        read.cookies.retain(|(n, _)| !blocked_names.contains(n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::extract_samples;
    use cg_browser::{visit_site, VisitConfig};
    use cg_webgen::{GenConfig, WebGenerator};

    fn crawl_samples(g: &WebGenerator, ranks: std::ops::RangeInclusive<usize>) -> Vec<PairSample> {
        let mut all = Vec::new();
        for rank in ranks {
            let site = g.blueprint(rank);
            if !site.spec.crawl_ok {
                continue;
            }
            let log = visit_site(&site, &VisitConfig::regular(), g.site_seed(rank)).log;
            let mut samples = extract_samples(&log);
            label_samples(&mut samples, g.registry());
            all.extend(samples);
        }
        all
    }

    #[test]
    fn end_to_end_training_generalizes() {
        let g = WebGenerator::new(GenConfig::small(400), 0xC00C1E);
        let train = crawl_samples(&g, 1..=120);
        let test = crawl_samples(&g, 121..=200);
        assert!(
            train.iter().filter(|s| s.label == Some(true)).count() > 20,
            "need tracking positives"
        );
        assert!(
            train.iter().filter(|s| s.label == Some(false)).count() > 20,
            "need benign negatives"
        );

        let (clf, report) = CookieGraphLite::train(&train, &ForestConfig::default(), 42);
        assert!(report.samples > 0);
        let eval = clf.evaluate(&test);
        // Synthetic data is cleanly separable; CookieGraph itself reports
        // >90% accuracy on the real web. Anything below this indicates a
        // broken feature pipeline rather than a hard learning problem.
        assert!(
            eval.accuracy() > 0.85,
            "accuracy {:.3} too low ({eval:?})",
            eval.accuracy()
        );
        assert!(
            eval.recall() > 0.7,
            "recall {:.3} too low ({eval:?})",
            eval.recall()
        );
    }

    #[test]
    fn labels_follow_the_registry() {
        let g = WebGenerator::new(GenConfig::small(200), 0xC00C1E);
        let samples = crawl_samples(&g, 1..=40);
        for s in &samples {
            if s.key.owner.eq_ignore_ascii_case(&s.site) {
                assert_eq!(
                    s.label,
                    Some(false),
                    "site-owned pairs are benign by definition"
                );
            }
            if let Some(v) = g.registry().by_domain(&s.key.owner) {
                assert_eq!(s.label, Some(v.category.is_ad_tracking()), "{:?}", s.key);
            }
        }
    }

    #[test]
    fn counterfactual_reports_collateral_probes() {
        let g = WebGenerator::new(GenConfig::small(400), 0xC00C1E);
        let train = crawl_samples(&g, 1..=120);
        let (clf, _) = CookieGraphLite::train(&train, &ForestConfig::default(), 42);

        // Find a site with probes and check the counterfactual's
        // bookkeeping is internally consistent.
        let mut seen_probe_site = false;
        for rank in 121..=220 {
            let site = g.blueprint(rank);
            if !site.spec.crawl_ok {
                continue;
            }
            let log = visit_site(&site, &VisitConfig::regular(), g.site_seed(rank)).log;
            let out = counterfactual_block(&clf, &log);
            assert_eq!(out.total_probes, log.probes.len());
            assert!(out.broken_probes <= out.total_probes);
            for key in &out.blocked {
                assert!(out.blocked_names.contains(&key.name));
            }
            if out.total_probes > 0 {
                seen_probe_site = true;
            }
        }
        assert!(
            seen_probe_site,
            "population must contain probe-bearing sites"
        );
    }

    #[test]
    fn residual_log_removes_blocked_activity() {
        let g = WebGenerator::new(GenConfig::small(200), 0xC00C1E);
        let site = (1..=200)
            .map(|r| g.blueprint(r))
            .find(|b| b.spec.crawl_ok)
            .unwrap();
        let log = visit_site(&site, &VisitConfig::regular(), 7).log;
        let names: HashSet<String> = log.sets.iter().map(|s| s.name.clone()).take(2).collect();
        let residual = residual_log(&log, &names);
        assert!(residual.sets.iter().all(|s| !names.contains(&s.name)));
        for read in &residual.reads {
            assert!(read.cookies.iter().all(|(n, _)| !names.contains(n)));
        }
        // Requests are untouched: the classifier cannot unsend traffic.
        assert_eq!(residual.requests.len(), log.requests.len());
    }

    #[test]
    fn eval_report_metrics() {
        let r = EvalReport {
            tp: 8,
            fp: 2,
            tn: 85,
            fn_: 5,
        };
        assert!((r.precision() - 0.8).abs() < 1e-9);
        assert!((r.recall() - 8.0 / 13.0).abs() < 1e-9);
        assert!((r.accuracy() - 0.93).abs() < 1e-9);
        assert!(r.f1() > 0.0 && r.f1() < 1.0);
        let empty = EvalReport::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
