//! The defense matrix: every baseline and CookieGuard, one population,
//! one set of metrics — the protection-vs-breakage frontier the paper's
//! §1/§9 positioning argues informally.
//!
//! For each defense the harness reports the §5 cross-domain site rates
//! (exfiltration / overwriting / deleting) and a functionality metric:
//! the share of functional probes that succeeded under no defense but
//! are missing or failing under the defense.

use crate::blocklist::{apply_evasion, BlocklistDefense, EvasionConfig};
use crate::classifier::{counterfactual_block, label_samples, residual_log, CookieGraphLite};
use crate::features::extract_samples;
use crate::partitioning::PartitioningModel;
use crate::tree::ForestConfig;
use cg_analysis::{cross_domain_summary, detect_exfiltration, detect_manipulation, Dataset};
use cg_browser::{visit_site, VisitConfig};
use cg_entity::EntityMap;
use cg_instrument::VisitLog;
use cg_webgen::WebGenerator;
use cookieguard_core::GuardConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A defense under comparison.
#[derive(Debug, Clone)]
pub enum Defense {
    /// A regular browser (the measurement condition).
    NoDefense,
    /// Filter-list script blocking over the §4.3 lists.
    Blocklist,
    /// The same blocklist against trackers that deploy the \[65\]
    /// URL-manipulation techniques.
    BlocklistUnderEvasion(EvasionConfig),
    /// A storage-partitioning browser mode. Partitioning re-keys
    /// *embedded-context* storage only; the main-frame crawl this
    /// harness measures is untouched by construction
    /// ([`PartitioningModel::affects_main_frame`] is false), which is
    /// the paper's §2.1 point.
    Partitioning(PartitioningModel),
    /// CookieGraph-style ML cookie blocking, trained on a disjoint
    /// population slice.
    CookieGraphLite {
        /// Ranks crawled to build the training set.
        train_ranks: std::ops::RangeInclusive<usize>,
        /// Forest hyperparameters.
        forest: ForestConfig,
    },
    /// CookieGuard with the given policy.
    CookieGuard(GuardConfig),
}

impl Defense {
    /// Display name for tables.
    pub fn name(&self) -> String {
        match self {
            Defense::NoDefense => "no defense".into(),
            Defense::Blocklist => "blocklist".into(),
            Defense::BlocklistUnderEvasion(_) => "blocklist vs evasion".into(),
            Defense::Partitioning(m) => format!("partitioning ({})", m.name()),
            Defense::CookieGraphLite { .. } => "cookiegraph-lite".into(),
            Defense::CookieGuard(cfg) => {
                if cfg.entity_map.is_some() {
                    "cookieguard + entity grouping".into()
                } else {
                    "cookieguard strict".into()
                }
            }
        }
    }
}

/// One row of the defense matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefenseRow {
    /// Defense name.
    pub name: String,
    /// % of sites with ≥1 cross-domain exfiltration.
    pub exfil_sites_pct: f64,
    /// % of sites with ≥1 cross-domain overwrite.
    pub overwrite_sites_pct: f64,
    /// % of sites with ≥1 cross-domain delete.
    pub delete_sites_pct: f64,
    /// % of baseline-working probes broken under this defense.
    pub probe_break_pct: f64,
    /// Free-form mechanism note for the rendered table.
    pub note: String,
}

/// Matrix options.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Ranks evaluated (all defenses share this population).
    pub eval_ranks: std::ops::RangeInclusive<usize>,
    /// Entity map for guard grouping and the analyses.
    pub entities: EntityMap,
}

/// Functional probes that worked with no defense: (site, feature).
type ProbeSet = HashSet<(String, String)>;

fn probe_set(logs: &[VisitLog]) -> ProbeSet {
    logs.iter()
        .flat_map(|l| {
            l.probes
                .iter()
                .filter(|p| p.ok)
                .map(move |p| (l.site_domain.clone(), p.feature.clone()))
        })
        .collect()
}

fn broken_share(baseline: &ProbeSet, defended: &[VisitLog]) -> f64 {
    if baseline.is_empty() {
        return 0.0;
    }
    let still_working = probe_set(defended);
    let broken = baseline
        .iter()
        .filter(|t| !still_working.contains(*t))
        .count();
    100.0 * broken as f64 / baseline.len() as f64
}

fn rates(logs: Vec<VisitLog>, entities: &EntityMap) -> (f64, f64, f64) {
    let ds = Dataset::from_logs(logs);
    let exfil = detect_exfiltration(&ds, entities);
    let manip = detect_manipulation(&ds, entities);
    let summary = cross_domain_summary(&ds, &exfil, &manip);
    (
        summary.doc_exfiltration.sites_pct,
        summary.doc_overwriting.sites_pct,
        summary.doc_deleting.sites_pct,
    )
}

/// Crawls `ranks` under a plain browser, optionally transforming each
/// blueprint first and optionally attaching a guard.
fn crawl(
    gen: &WebGenerator,
    ranks: std::ops::RangeInclusive<usize>,
    cfg: &VisitConfig,
    transform: impl Fn(&cg_webgen::SiteBlueprint) -> cg_webgen::SiteBlueprint,
) -> Vec<VisitLog> {
    ranks
        .map(|rank| {
            let site = transform(&gen.blueprint(rank));
            visit_site(&site, cfg, gen.site_seed(rank)).log
        })
        .collect()
}

/// Runs the full matrix. The `NoDefense` crawl is always performed
/// (it anchors the probe-breakage metric) and is prepended to the
/// output even when not requested.
pub fn run_defense_matrix(
    gen: &WebGenerator,
    defenses: &[Defense],
    opts: &MatrixOptions,
) -> Vec<DefenseRow> {
    let plain_cfg = VisitConfig::regular();
    let plain_logs = crawl(gen, opts.eval_ranks.clone(), &plain_cfg, Clone::clone);
    let baseline_probes = probe_set(&plain_logs);

    let mut rows = Vec::with_capacity(defenses.len() + 1);
    let (e, o, d) = rates(plain_logs.clone(), &opts.entities);
    rows.push(DefenseRow {
        name: "no defense".into(),
        exfil_sites_pct: e,
        overwrite_sites_pct: o,
        delete_sites_pct: d,
        probe_break_pct: 0.0,
        note: "regular browser".into(),
    });

    for defense in defenses {
        if matches!(defense, Defense::NoDefense) {
            continue; // already anchored above
        }
        let row = run_one(gen, defense, opts, &plain_logs, &baseline_probes);
        rows.push(row);
    }
    rows
}

fn run_one(
    gen: &WebGenerator,
    defense: &Defense,
    opts: &MatrixOptions,
    plain_logs: &[VisitLog],
    baseline_probes: &ProbeSet,
) -> DefenseRow {
    let name = defense.name();
    match defense {
        Defense::NoDefense => unreachable!("handled by caller"),

        Defense::Blocklist => {
            let blocker = BlocklistDefense::from_registry(gen.registry());
            let logs = crawl(
                gen,
                opts.eval_ranks.clone(),
                &VisitConfig::regular(),
                |site| blocker.prune_site(site).0,
            );
            let probe_break = broken_share(baseline_probes, &logs);
            let (e, o, d) = rates(logs, &opts.entities);
            DefenseRow {
                name,
                exfil_sites_pct: e,
                overwrite_sites_pct: o,
                delete_sites_pct: d,
                probe_break_pct: probe_break,
                note: "listed tracker scripts never load".into(),
            }
        }

        Defense::BlocklistUnderEvasion(evasion) => {
            let blocker = BlocklistDefense::from_registry(gen.registry());
            let logs = crawl(
                gen,
                opts.eval_ranks.clone(),
                &VisitConfig::regular(),
                |site| {
                    let (evaded, _) = apply_evasion(site, &blocker, evasion);
                    blocker.prune_site(&evaded).0
                },
            );
            let probe_break = broken_share(baseline_probes, &logs);
            let (e, o, d) = rates(logs, &opts.entities);
            DefenseRow {
                name,
                exfil_sites_pct: e,
                overwrite_sites_pct: o,
                delete_sites_pct: d,
                probe_break_pct: probe_break,
                note: "trackers rotate domains / randomize URLs / self-host [65]".into(),
            }
        }

        Defense::Partitioning(model) => {
            // Structural no-op in the main frame: reuse the plain crawl.
            assert!(!model.affects_main_frame());
            let (e, o, d) = rates(plain_logs.to_vec(), &opts.entities);
            DefenseRow {
                name,
                exfil_sites_pct: e,
                overwrite_sites_pct: o,
                delete_sites_pct: d,
                probe_break_pct: 0.0,
                note: "partitions embedded contexts only; main frame untouched (§2.1)".into(),
            }
        }

        Defense::CookieGraphLite {
            train_ranks,
            forest,
        } => {
            // Train on a disjoint slice.
            let mut train = Vec::new();
            for log in crawl(
                gen,
                train_ranks.clone(),
                &VisitConfig::regular(),
                Clone::clone,
            ) {
                if !log.complete {
                    continue;
                }
                let mut samples = extract_samples(&log);
                label_samples(&mut samples, gen.registry());
                train.extend(samples);
            }
            let (clf, _) = CookieGraphLite::train(&train, forest, 0xC00C1E);

            // Counterfactual blocking over the evaluation logs.
            let mut residuals = Vec::with_capacity(plain_logs.len());
            let mut broken = 0usize;
            for log in plain_logs {
                let outcome = counterfactual_block(&clf, log);
                // A probe that worked in the plain run breaks when its
                // cookie was classified as tracking.
                broken += log
                    .probes
                    .iter()
                    .filter(|p| p.ok && outcome.blocked_names.contains(&p.cookie))
                    .count();
                residuals.push(residual_log(log, &outcome.blocked_names));
            }
            let probe_break = if baseline_probes.is_empty() {
                0.0
            } else {
                100.0 * broken as f64 / baseline_probes.len() as f64
            };
            let (e, o, d) = rates(residuals, &opts.entities);
            DefenseRow {
                name,
                exfil_sites_pct: e,
                overwrite_sites_pct: o,
                delete_sites_pct: d,
                probe_break_pct: probe_break,
                note: "ML-classified tracking cookies blocked; misses FNs, breaks FPs".into(),
            }
        }

        Defense::CookieGuard(cfg) => {
            let logs = crawl(
                gen,
                opts.eval_ranks.clone(),
                &VisitConfig::guarded(cfg.clone()),
                Clone::clone,
            );
            let probe_break = broken_share(baseline_probes, &logs);
            let (e, o, d) = rates(logs, &opts.entities);
            DefenseRow {
                name,
                exfil_sites_pct: e,
                overwrite_sites_pct: o,
                delete_sites_pct: d,
                probe_break_pct: probe_break,
                note: "per-script-origin jar isolation (§6)".into(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::GenConfig;

    fn matrix(sites: usize) -> Vec<DefenseRow> {
        let gen = WebGenerator::new(GenConfig::small(sites.max(260)), 0xC00C1E);
        let entities = cg_entity::builtin_entity_map();
        let opts = MatrixOptions {
            eval_ranks: 1..=sites,
            entities,
        };
        let defenses = vec![
            Defense::Blocklist,
            Defense::BlocklistUnderEvasion(EvasionConfig::default()),
            Defense::Partitioning(PartitioningModel::FirefoxTcp),
            Defense::CookieGraphLite {
                train_ranks: (sites + 1)..=(sites + 60),
                forest: ForestConfig::default(),
            },
            Defense::CookieGuard(GuardConfig::strict()),
        ];
        run_defense_matrix(&gen, &defenses, &opts)
    }

    fn row<'a>(rows: &'a [DefenseRow], name: &str) -> &'a DefenseRow {
        rows.iter()
            .find(|r| r.name.starts_with(name))
            .unwrap_or_else(|| panic!("row {name}"))
    }

    #[test]
    fn matrix_orderings_hold() {
        let rows = matrix(120);
        let none = row(&rows, "no defense");
        let blocklist = row(&rows, "blocklist");
        let evaded = row(&rows, "blocklist vs evasion");
        let partitioning = row(&rows, "partitioning");
        let guard = row(&rows, "cookieguard strict");

        assert!(
            none.exfil_sites_pct > 0.0,
            "population must exhibit exfiltration"
        );

        // Partitioning changes nothing in the main frame.
        assert_eq!(partitioning.exfil_sites_pct, none.exfil_sites_pct);
        assert_eq!(partitioning.overwrite_sites_pct, none.overwrite_sites_pct);

        // The blocklist helps…
        assert!(blocklist.exfil_sites_pct < none.exfil_sites_pct);
        // …but evasion claws protection back.
        assert!(evaded.exfil_sites_pct > blocklist.exfil_sites_pct);

        // CookieGuard beats the evaded blocklist.
        assert!(guard.exfil_sites_pct < evaded.exfil_sites_pct);
        assert!(guard.exfil_sites_pct < none.exfil_sites_pct / 2.0);
    }

    #[test]
    fn classifier_row_sits_between_none_and_guard() {
        let rows = matrix(120);
        let none = row(&rows, "no defense");
        let clf = row(&rows, "cookiegraph-lite");
        assert!(clf.exfil_sites_pct <= none.exfil_sites_pct);
        // ML blocking must meaningfully reduce exposure on this
        // separable population.
        assert!(clf.exfil_sites_pct < none.exfil_sites_pct * 0.9);
    }

    #[test]
    fn no_defense_row_has_zero_breakage() {
        let rows = matrix(60);
        assert_eq!(row(&rows, "no defense").probe_break_pct, 0.0);
        assert_eq!(row(&rows, "partitioning").probe_break_pct, 0.0);
    }
}
