//! Storage-partitioning baselines (paper §2.1).
//!
//! Safari's Intelligent Tracking Prevention, Firefox's Total Cookie
//! Protection, and Chrome's CHIPS all key *embedded third-party*
//! storage by the top-level site, which stops classic cross-site
//! tracking through third-party iframes. None of them touches the main
//! frame: every script executing there — first-party or ghost-writing
//! third-party — shares the one first-party cookie jar. That gap is the
//! paper's motivation, and this module makes it mechanically checkable:
//!
//! * [`PartitionedStore`] implements the partition-keyed jar layout each
//!   model prescribes for embedded contexts;
//! * [`simulate_embedded_tracking`] shows the models *working* in the
//!   scope they were designed for (a tracker iframe sees one identifier
//!   across sites without partitioning, a fresh one per site with it);
//! * [`main_frame_leak_demo`] shows the same models doing *nothing* in
//!   the main frame: a cross-domain read of a ghost-written cookie
//!   succeeds under every model.

use cg_cookiejar::CookieJar;
use cg_url::Url;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which browser partitioning mechanism is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitioningModel {
    /// No partitioning: the pre-ITP web. Embedded frames share one
    /// third-party jar across all top-level sites.
    Unpartitioned,
    /// Safari ITP: third-party cookies in embedded contexts are
    /// partitioned per top-level site.
    SafariItp,
    /// Firefox Total Cookie Protection: *all* third-party storage is
    /// partitioned per top-level site.
    FirefoxTcp,
    /// Chrome CHIPS: partitioning is opt-in per cookie via the
    /// `Partitioned` attribute; cookies without it stay in the shared
    /// third-party jar.
    ChromeChips,
}

impl PartitioningModel {
    /// Whether a cookie in an embedded third-party context lands in a
    /// per-top-level-site partition (`true`) or the shared third-party
    /// jar (`false`). `partitioned_attr` is the CHIPS `Partitioned`
    /// cookie attribute.
    pub fn partitions_embedded(&self, partitioned_attr: bool) -> bool {
        match self {
            PartitioningModel::Unpartitioned => false,
            PartitioningModel::SafariItp | PartitioningModel::FirefoxTcp => true,
            PartitioningModel::ChromeChips => partitioned_attr,
        }
    }

    /// Whether the model changes anything about main-frame script
    /// execution. Structurally `false` for every shipping mechanism —
    /// the paper's §2.1 observation. (CookieGuard is the first mechanism
    /// for which this would be `true`.)
    pub fn affects_main_frame(&self) -> bool {
        false
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PartitioningModel::Unpartitioned => "unpartitioned",
            PartitioningModel::SafariItp => "safari-itp",
            PartitioningModel::FirefoxTcp => "firefox-tcp",
            PartitioningModel::ChromeChips => "chrome-chips",
        }
    }
}

/// The storage key for one embedded-context jar.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionKey {
    /// eTLD+1 of the embedded (iframe) party.
    pub embedded_site: String,
    /// eTLD+1 of the top-level site, when the jar is partitioned;
    /// `None` is the shared (classic third-party) jar.
    pub top_level_site: Option<String>,
}

/// A browser profile's cookie storage under a partitioning model:
/// one unpartitioned first-party jar per top-level site (the main-frame
/// jar the paper studies) plus partition-keyed embedded jars.
#[derive(Debug, Default)]
pub struct PartitionedStore {
    main_frame: HashMap<String, CookieJar>,
    embedded: HashMap<PartitionKey, CookieJar>,
}

impl PartitionedStore {
    /// An empty store.
    pub fn new() -> PartitionedStore {
        PartitionedStore::default()
    }

    /// The main-frame jar for a top-level site. Identical under every
    /// [`PartitioningModel`]: the jar is keyed by the site alone, never
    /// by the executing script's origin — which is exactly why
    /// ghost-written first-party cookies stay shared.
    pub fn main_frame_jar(&mut self, top_level_site: &str) -> &mut CookieJar {
        self.main_frame
            .entry(top_level_site.to_ascii_lowercase())
            .or_default()
    }

    /// The jar an embedded `embedded_site` iframe on `top_level_site`
    /// reads and writes under `model`. `partitioned_attr` is the CHIPS
    /// opt-in bit of the cookie being handled.
    pub fn embedded_jar(
        &mut self,
        model: PartitioningModel,
        top_level_site: &str,
        embedded_site: &str,
        partitioned_attr: bool,
    ) -> &mut CookieJar {
        let key = PartitionKey {
            embedded_site: embedded_site.to_ascii_lowercase(),
            top_level_site: model
                .partitions_embedded(partitioned_attr)
                .then(|| top_level_site.to_ascii_lowercase()),
        };
        self.embedded.entry(key).or_default()
    }

    /// Number of distinct embedded-context jars materialized so far.
    pub fn embedded_partition_count(&self) -> usize {
        self.embedded.len()
    }
}

/// Outcome of [`simulate_embedded_tracking`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbeddedTrackingOutcome {
    /// The identifier the tracker observed on each visited site, in
    /// visit order.
    pub ids_seen: Vec<String>,
    /// Number of distinct identifiers across all sites. `1` means the
    /// tracker linked every site visit to one profile (cross-site
    /// tracking works); `sites.len()` means full partitioning.
    pub distinct_ids: usize,
}

/// Simulates the scenario partitioning was built for: a tracker iframe
/// embedded on several top-level sites stores an identifier cookie in
/// its own (third-party) context and re-reads it on every site.
///
/// `partitioned_attr` models whether the tracker sets its cookie with
/// the CHIPS `Partitioned` attribute.
pub fn simulate_embedded_tracking(
    model: PartitioningModel,
    tracker: &str,
    sites: &[&str],
    partitioned_attr: bool,
) -> EmbeddedTrackingOutcome {
    let mut store = PartitionedStore::new();
    let frame_url = Url::parse(&format!("https://{tracker}/sync-frame")).expect("tracker URL");
    let mut minted = 0u32;
    let mut ids_seen = Vec::with_capacity(sites.len());

    for (t, site) in sites.iter().enumerate() {
        let jar = store.embedded_jar(model, site, tracker, partitioned_attr);
        let now = t as i64 * 1_000;
        let existing = jar
            .cookies_for_document(&frame_url, now)
            .into_iter()
            .find(|c| c.name == "uid")
            .map(|c| c.value);
        let id = match existing {
            Some(v) => v,
            None => {
                minted += 1;
                let v = format!("uid-{minted:04}");
                jar.set_document_cookie(&format!("uid={v}"), &frame_url, now)
                    .expect("tracker cookie");
                v
            }
        };
        ids_seen.push(id);
    }

    let mut distinct = ids_seen.clone();
    distinct.sort();
    distinct.dedup();
    EmbeddedTrackingOutcome {
        distinct_ids: distinct.len(),
        ids_seen,
    }
}

/// Outcome of [`main_frame_leak_demo`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MainFrameLeak {
    /// The cookie pairs the cross-domain reader observed.
    pub reader_saw: Vec<(String, String)>,
    /// True when the reader saw the ghost-written cookie it did not set
    /// — i.e. the model failed to isolate the main frame.
    pub leaked: bool,
}

/// The paper's motivating scenario, replayed against a partitioning
/// model: on `site`, a script from `writer` ghost-writes a first-party
/// cookie through `document.cookie`; a script from a different domain
/// then reads `document.cookie`.
///
/// Under every [`PartitioningModel`] both scripts hit the same
/// main-frame jar, so the read leaks. (CookieGuard's per-script-origin
/// filter is what closes this; see `cookieguard_core`.)
pub fn main_frame_leak_demo(model: PartitioningModel, site: &str) -> MainFrameLeak {
    debug_assert!(!model.affects_main_frame());
    let mut store = PartitionedStore::new();
    let page = Url::parse(&format!("https://www.{site}/")).expect("site URL");

    // Both scripts execute in the main frame: the jar they touch is the
    // *site's* first-party jar, regardless of their own origins.
    let jar = store.main_frame_jar(site);
    jar.set_document_cookie("_tid=track-7f3a9c21", &page, 0)
        .expect("ghost write");

    let reader_saw: Vec<(String, String)> = jar
        .cookies_for_document(&page, 1)
        .into_iter()
        .map(|c| (c.name, c.value))
        .collect();
    let leaked = reader_saw.iter().any(|(n, _)| n == "_tid");
    MainFrameLeak { reader_saw, leaked }
}

/// Outcome of [`sop_boundary_demo`] — Figure 1's two sides.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SopBoundary {
    /// Cookie names a script inside a cross-origin iframe can read.
    pub iframe_sees: Vec<String>,
    /// Cookie names a third-party script in the main frame can read.
    pub main_frame_script_sees: Vec<String>,
}

/// Figure 1 / §3: the Same-Origin Policy boundary, replayed.
///
/// On `site`, the server sets a first-party cookie and a `tracker`
/// script in the main frame ghost-writes another. Then two vantage
/// points read `document.cookie`:
///
/// * a script inside a cross-origin `<iframe>` sourced from `tracker` —
///   its document is the tracker's origin, so SOP resolves the read
///   against the *tracker's* jar: neither first-party cookie is visible
///   (the boundary works);
/// * the tracker's script in the *main frame* — it inherits the
///   first-party origin and sees everything (the boundary the paper
///   shows does not exist).
pub fn sop_boundary_demo(site: &str, tracker: &str) -> SopBoundary {
    let mut store = PartitionedStore::new();
    let page = Url::parse(&format!("https://www.{site}/")).expect("site URL");
    let frame = Url::parse(&format!("https://{tracker}/widget")).expect("tracker URL");

    // The main-frame jar accumulates the site's cookie and the
    // ghost-written one — the jar is keyed by the site, not the writer.
    let main = store.main_frame_jar(site);
    main.set_document_cookie("session=s1", &page, 0)
        .expect("first-party cookie");
    main.set_document_cookie("_tid=track-1", &page, 1)
        .expect("ghost-written cookie");
    let main_frame_script_sees: Vec<String> = main
        .cookies_for_document(&page, 2)
        .into_iter()
        .map(|c| c.name)
        .collect();

    // The iframe's document belongs to the tracker's origin: its
    // document.cookie resolves against the tracker's (embedded) jar.
    let iframe_jar = store.embedded_jar(PartitioningModel::Unpartitioned, site, tracker, false);
    let iframe_sees: Vec<String> = iframe_jar
        .cookies_for_document(&frame, 2)
        .into_iter()
        .map(|c| c.name)
        .collect();

    SopBoundary {
        iframe_sees,
        main_frame_script_sees,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITES: [&str; 4] = [
        "news.example",
        "shop.example",
        "blog.example",
        "mail.example",
    ];

    #[test]
    fn sop_isolates_iframes_not_main_frame_scripts() {
        let b = sop_boundary_demo("site.com", "tracker.com");
        assert!(
            b.iframe_sees.is_empty(),
            "SOP: cross-origin iframe reads nothing of the site's jar"
        );
        assert_eq!(
            b.main_frame_script_sees,
            vec!["session".to_string(), "_tid".to_string()],
            "main-frame scripts inherit the first-party origin and see the whole jar"
        );
    }

    #[test]
    fn unpartitioned_tracker_links_all_sites() {
        let out = simulate_embedded_tracking(
            PartitioningModel::Unpartitioned,
            "tracker.com",
            &SITES,
            false,
        );
        assert_eq!(
            out.distinct_ids, 1,
            "one profile across all sites: {:?}",
            out.ids_seen
        );
    }

    #[test]
    fn itp_and_tcp_partition_per_site() {
        for model in [PartitioningModel::SafariItp, PartitioningModel::FirefoxTcp] {
            let out = simulate_embedded_tracking(model, "tracker.com", &SITES, false);
            assert_eq!(
                out.distinct_ids,
                SITES.len(),
                "{model:?} must mint one id per site"
            );
        }
    }

    #[test]
    fn chips_partitions_only_opted_in_cookies() {
        let opted =
            simulate_embedded_tracking(PartitioningModel::ChromeChips, "tracker.com", &SITES, true);
        assert_eq!(opted.distinct_ids, SITES.len());
        let not_opted = simulate_embedded_tracking(
            PartitioningModel::ChromeChips,
            "tracker.com",
            &SITES,
            false,
        );
        assert_eq!(
            not_opted.distinct_ids, 1,
            "CHIPS is opt-in: unflagged cookies stay shared"
        );
    }

    #[test]
    fn revisits_reuse_the_partitioned_identifier() {
        // Same site twice: even under TCP the tracker re-reads its own
        // partition — partitioning is per-site, not per-visit.
        let out = simulate_embedded_tracking(
            PartitioningModel::FirefoxTcp,
            "tracker.com",
            &["news.example", "shop.example", "news.example"],
            false,
        );
        assert_eq!(out.ids_seen[0], out.ids_seen[2]);
        assert_eq!(out.distinct_ids, 2);
    }

    #[test]
    fn every_model_leaks_in_the_main_frame() {
        for model in [
            PartitioningModel::Unpartitioned,
            PartitioningModel::SafariItp,
            PartitioningModel::FirefoxTcp,
            PartitioningModel::ChromeChips,
        ] {
            let leak = main_frame_leak_demo(model, "site.com");
            assert!(
                leak.leaked,
                "{model:?} unexpectedly isolated the main frame"
            );
            assert!(!model.affects_main_frame());
        }
    }

    #[test]
    fn partition_count_reflects_keying() {
        let mut store = PartitionedStore::new();
        store.embedded_jar(PartitioningModel::FirefoxTcp, "a.com", "t.com", false);
        store.embedded_jar(PartitioningModel::FirefoxTcp, "b.com", "t.com", false);
        store.embedded_jar(PartitioningModel::Unpartitioned, "a.com", "t.com", false);
        store.embedded_jar(PartitioningModel::Unpartitioned, "b.com", "t.com", false);
        // Two partitioned jars + one shared jar.
        assert_eq!(store.embedded_partition_count(), 3);
    }

    #[test]
    fn main_frame_jars_keyed_by_site_only() {
        let mut store = PartitionedStore::new();
        let page_a = Url::parse("https://www.a.com/").unwrap();
        store
            .main_frame_jar("a.com")
            .set_document_cookie("x=1", &page_a, 0)
            .unwrap();
        assert_eq!(store.main_frame_jar("a.com").len(), 1);
        assert_eq!(store.main_frame_jar("b.com").len(), 0);
        // Case-insensitive site keys.
        assert_eq!(store.main_frame_jar("A.COM").len(), 1);
    }
}
