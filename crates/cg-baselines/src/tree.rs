//! A from-scratch CART decision tree and bagged random forest.
//!
//! CookieGraph (Munir et al. \[44\]) trains a random-forest classifier
//! over behavioural cookie features. This is the minimal faithful
//! substrate: binary classification, Gini-impurity splits on numeric
//! features, depth/size stopping rules, bootstrap aggregation with
//! per-split feature subsampling, and deterministic training from a
//! seed so the reproduction's experiments are replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum Gini improvement required to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            min_gain: 1e-7,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Probability of the positive class at this leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        /// Samples with `x[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted binary CART tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

fn gini(pos: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits a tree on `xs[i]` / `ys[i]`. All rows must share a length.
    /// `features` restricts which feature indices may be split on
    /// (`None` = all); the forest uses this for feature subsampling.
    pub fn fit(
        xs: &[&[f64]],
        ys: &[bool],
        cfg: &TreeConfig,
        features: Option<&[usize]>,
    ) -> DecisionTree {
        assert_eq!(xs.len(), ys.len(), "sample/label length mismatch");
        let all: Vec<usize> = match features {
            Some(f) => f.to_vec(),
            None => (0..xs.first().map_or(0, |r| r.len())).collect(),
        };
        let mut tree = DecisionTree { nodes: Vec::new() };
        let idx: Vec<usize> = (0..xs.len()).collect();
        tree.build(xs, ys, &idx, &all, cfg, 0);
        tree
    }

    fn build(
        &mut self,
        xs: &[&[f64]],
        ys: &[bool],
        idx: &[usize],
        features: &[usize],
        cfg: &TreeConfig,
        depth: usize,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| ys[i]).count();
        let total = idx.len();
        let leaf_prob = if total == 0 {
            0.0
        } else {
            pos as f64 / total as f64
        };

        let stop =
            depth >= cfg.max_depth || total < cfg.min_samples_split || pos == 0 || pos == total;
        if !stop {
            if let Some((feature, threshold, gain)) = best_split(xs, ys, idx, features) {
                if gain > cfg.min_gain {
                    let (li, ri): (Vec<usize>, Vec<usize>) =
                        idx.iter().partition(|&&i| xs[i][feature] <= threshold);
                    if !li.is_empty() && !ri.is_empty() {
                        let me = self.nodes.len();
                        self.nodes.push(Node::Leaf { prob: leaf_prob }); // placeholder
                        let left = self.build(xs, ys, &li, features, cfg, depth + 1);
                        let right = self.build(xs, ys, &ri, features, cfg, depth + 1);
                        self.nodes[me] = Node::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        };
                        return me;
                    }
                }
            }
        }
        self.nodes.push(Node::Leaf { prob: leaf_prob });
        self.nodes.len() - 1
    }

    /// Probability of the positive class for one sample.
    pub fn predict_prob(&self, x: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Maximum depth of the fitted tree (a root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Finds the (feature, threshold) pair with the highest Gini gain over
/// the rows in `idx`. Thresholds are midpoints between consecutive
/// distinct values.
fn best_split(
    xs: &[&[f64]],
    ys: &[bool],
    idx: &[usize],
    features: &[usize],
) -> Option<(usize, f64, f64)> {
    let total = idx.len();
    let total_pos = idx.iter().filter(|&&i| ys[i]).count();
    let parent = gini(total_pos, total);
    let mut best: Option<(usize, f64, f64)> = None;

    for &feature in features {
        // Sort rows by this feature.
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| {
            xs[a][feature]
                .partial_cmp(&xs[b][feature])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_pos = 0usize;
        for (k, &i) in order.iter().enumerate().take(total.saturating_sub(1)) {
            if ys[i] {
                left_pos += 1;
            }
            let this = xs[i][feature];
            let next = xs[order[k + 1]][feature];
            if next <= this {
                continue; // no boundary between equal values
            }
            let left_n = k + 1;
            let right_n = total - left_n;
            let right_pos = total_pos - left_pos;
            let weighted = (left_n as f64 * gini(left_pos, left_n)
                + right_n as f64 * gini(right_pos, right_n))
                / total as f64;
            let gain = parent - weighted;
            let threshold = (this + next) / 2.0;
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((feature, threshold, gain));
            }
        }
    }
    best
}

/// A bagged ensemble of CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap sample fraction per tree.
    pub sample_frac: f64,
    /// Features considered per tree (fraction of all, ≥1 feature).
    pub feature_frac: f64,
    /// Per-tree CART settings.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> ForestConfig {
        ForestConfig {
            n_trees: 15,
            sample_frac: 0.8,
            feature_frac: 0.7,
            tree: TreeConfig::default(),
        }
    }
}

impl RandomForest {
    /// Fits a forest; deterministic for a given `seed`.
    pub fn fit(xs: &[&[f64]], ys: &[bool], cfg: &ForestConfig, seed: u64) -> RandomForest {
        assert!(!xs.is_empty(), "cannot fit a forest on zero samples");
        let n = xs.len();
        let d = xs[0].len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0_4E57);
        let per_tree_n = ((n as f64 * cfg.sample_frac).round() as usize).clamp(1, n);
        let per_tree_d = ((d as f64 * cfg.feature_frac).round() as usize).clamp(1, d);

        let trees = (0..cfg.n_trees.max(1))
            .map(|_| {
                // Bootstrap rows (with replacement).
                let rows: Vec<usize> = (0..per_tree_n).map(|_| rng.gen_range(0..n)).collect();
                let bx: Vec<&[f64]> = rows.iter().map(|&i| xs[i]).collect();
                let by: Vec<bool> = rows.iter().map(|&i| ys[i]).collect();
                // Subsample features (without replacement).
                let mut feats: Vec<usize> = (0..d).collect();
                for k in 0..per_tree_d {
                    let j = rng.gen_range(k..d);
                    feats.swap(k, j);
                }
                feats.truncate(per_tree_d);
                feats.sort_unstable();
                DecisionTree::fit(&bx, &by, &cfg.tree, Some(&feats))
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean positive-class probability across trees.
    pub fn predict_prob(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict_prob(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the forest holds no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rows(data: &[Vec<f64>]) -> Vec<&[f64]> {
        data.iter().map(Vec::as_slice).collect()
    }

    #[test]
    fn single_feature_threshold_is_learned() {
        let data: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let tree = DecisionTree::fit(&rows(&data), &ys, &TreeConfig::default(), None);
        assert!(tree.predict_prob(&[3.0]) < 0.5);
        assert!(tree.predict_prob(&[33.0]) > 0.5);
        assert_eq!(tree.depth(), 1, "one split suffices: {tree:?}");
    }

    #[test]
    fn two_feature_interaction() {
        // Positive iff x0 > 5 AND x1 > 5 — needs depth 2.
        let mut data = Vec::new();
        let mut ys = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                data.push(vec![a as f64, b as f64]);
                ys.push(a > 5 && b > 5);
            }
        }
        let tree = DecisionTree::fit(&rows(&data), &ys, &TreeConfig::default(), None);
        assert!(tree.predict_prob(&[9.0, 9.0]) > 0.5);
        assert!(tree.predict_prob(&[9.0, 1.0]) < 0.5);
        assert!(tree.predict_prob(&[1.0, 9.0]) < 0.5);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut data = Vec::new();
        let mut ys = Vec::new();
        // Noise-free but complex parity-ish labels force deep trees.
        for i in 0..128 {
            data.push(vec![(i % 16) as f64, (i / 16) as f64]);
            ys.push((i % 3) == 0);
        }
        let cfg = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&rows(&data), &ys, &cfg, None);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![true, true, true];
        let tree = DecisionTree::fit(&rows(&data), &ys, &TreeConfig::default(), None);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_prob(&[99.0]), 1.0);
    }

    #[test]
    fn feature_restriction_is_honoured() {
        // Labels depend only on feature 1; restrict the tree to feature 0.
        let data: Vec<Vec<f64>> = (0..40).map(|i| vec![0.0, i as f64]).collect();
        let ys: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let tree = DecisionTree::fit(&rows(&data), &ys, &TreeConfig::default(), Some(&[0]));
        // Feature 0 is constant, so no split is possible.
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn forest_is_deterministic_and_beats_chance() {
        let mut data = Vec::new();
        let mut ys = Vec::new();
        for a in 0..12 {
            for b in 0..12 {
                data.push(vec![a as f64, b as f64, (a + b) as f64 % 3.0]);
                ys.push(a > 6 && b > 6);
            }
        }
        let cfg = ForestConfig::default();
        let f1 = RandomForest::fit(&rows(&data), &ys, &cfg, 42);
        let f2 = RandomForest::fit(&rows(&data), &ys, &cfg, 42);
        let correct = data
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| (f1.predict_prob(x) > 0.5) == y)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "forest accuracy {correct}/{}",
            data.len()
        );
        for x in data.iter().take(10) {
            assert_eq!(f1.predict_prob(x), f2.predict_prob(x));
        }
        assert_eq!(f1.len(), cfg.n_trees);
    }

    proptest! {
        /// Predictions are always valid probabilities.
        #[test]
        fn probabilities_in_unit_interval(
            raw in proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, 3), 2..40),
            labels in proptest::collection::vec(any::<bool>(), 40),
            query in proptest::collection::vec(-1000.0f64..1000.0, 3),
        ) {
            let ys = &labels[..raw.len()];
            let tree = DecisionTree::fit(&rows(&raw), ys, &TreeConfig::default(), None);
            let p = tree.predict_prob(&query);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        /// Fitting never panics and training accuracy on separable data
        /// with a generous depth is perfect.
        #[test]
        fn separable_data_fits_perfectly(thr in 1.0f64..9.0) {
            let data: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 5.0]).collect();
            let ys: Vec<bool> = data.iter().map(|r| r[0] > thr).collect();
            let tree = DecisionTree::fit(&rows(&data), &ys, &TreeConfig { max_depth: 12, min_samples_split: 2, min_gain: 0.0 }, None);
            for (x, &y) in data.iter().zip(&ys) {
                prop_assert_eq!(tree.predict_prob(x) > 0.5, y);
            }
        }
    }
}
