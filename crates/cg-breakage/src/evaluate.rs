//! Breakage evaluation: paired visits, probe-regression classification.

use cg_browser::{visit_site, VisitConfig};
use cg_instrument::{ProbeEvent, VisitLog};
use cg_webgen::WebGenerator;
use cookieguard_core::GuardConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's four breakage categories (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakageCategory {
    /// Moving between pages.
    Navigation,
    /// Initiating and maintaining login state.
    Sso,
    /// Visual consistency.
    Appearance,
    /// Chats, search, shopping cart, embedded widgets, ads.
    Functionality,
}

/// Severity, per the paper's rubric: minor = difficult but possible;
/// major = impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakageSeverity {
    /// Feature usable with difficulty.
    Minor,
    /// Feature unusable.
    Major,
}

/// Breakage found on one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteBreakage {
    /// Site domain.
    pub site: String,
    /// Rank.
    pub rank: usize,
    /// Which (category, severity) regressions occurred.
    pub findings: Vec<(BreakageCategory, BreakageSeverity, String)>,
}

/// The Table 3 aggregate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BreakageReport {
    /// Sites evaluated.
    pub sites: usize,
    /// Per (category, severity): number of affected sites. (Tuple keys
    /// cannot be JSON map keys, so this serializes as an entry list.)
    #[serde(with = "count_entries")]
    pub counts: HashMap<(BreakageCategory, BreakageSeverity), usize>,
    /// Detailed per-site findings (non-empty only).
    pub details: Vec<SiteBreakage>,
}

/// Serializes the tuple-keyed count map as a list of entries.
mod count_entries {
    use super::{BreakageCategory, BreakageSeverity};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::HashMap;

    type Map = HashMap<(BreakageCategory, BreakageSeverity), usize>;

    pub fn serialize<S: Serializer>(map: &Map, s: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(&BreakageCategory, &BreakageSeverity, &usize)> =
            map.iter().map(|((c, v), n)| (c, v, n)).collect();
        entries.sort_by_key(|(c, v, _)| format!("{c:?}/{v:?}"));
        entries.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Map, D::Error> {
        let entries: Vec<(BreakageCategory, BreakageSeverity, usize)> = Vec::deserialize(d)?;
        Ok(entries.into_iter().map(|(c, v, n)| ((c, v), n)).collect())
    }
}

impl BreakageReport {
    /// % of evaluated sites with a *major* breakage in `cat`.
    pub fn major_pct(&self, cat: BreakageCategory) -> f64 {
        self.pct(cat, BreakageSeverity::Major)
    }

    /// % of evaluated sites with a *minor* breakage in `cat`.
    pub fn minor_pct(&self, cat: BreakageCategory) -> f64 {
        self.pct(cat, BreakageSeverity::Minor)
    }

    fn pct(&self, cat: BreakageCategory, sev: BreakageSeverity) -> f64 {
        let c = self.counts.get(&(cat, sev)).copied().unwrap_or(0);
        100.0 * c as f64 / self.sites.max(1) as f64
    }

    /// % of sites with any breakage at all.
    pub fn any_breakage_pct(&self) -> f64 {
        100.0 * self.details.len() as f64 / self.sites.max(1) as f64
    }
}

/// Classifies a probe feature into (category, severity).
fn classify(feature: &str) -> Option<(BreakageCategory, BreakageSeverity)> {
    match feature {
        "sso" => Some((BreakageCategory::Sso, BreakageSeverity::Major)),
        "sso_reload" => Some((BreakageCategory::Sso, BreakageSeverity::Minor)),
        "functionality" | "chat" | "cart" => {
            Some((BreakageCategory::Functionality, BreakageSeverity::Major))
        }
        "ads" => Some((BreakageCategory::Functionality, BreakageSeverity::Minor)),
        "navigation" => Some((BreakageCategory::Navigation, BreakageSeverity::Major)),
        "appearance" => Some((BreakageCategory::Appearance, BreakageSeverity::Major)),
        _ => None,
    }
}

/// One functional probe that passed in a baseline visit but failed in a
/// defended visit of the same site — the unit of breakage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRegression {
    /// Feature label (`sso`, `cart`, `chat`, …).
    pub feature: String,
    /// The cookie the feature depends on.
    pub cookie: String,
    /// The probing script's domain, when attributable.
    pub actor: Option<String>,
}

/// Compares the probe outcomes of two visits of the same site and
/// returns every probe that passed in `baseline` but failed in
/// `defended`, sorted (feature, cookie, actor) for deterministic
/// downstream output. Probes already failing in the baseline are not
/// regressions (the site was broken without the defense), matching the
/// paper's manual protocol. Both Table 3
/// ([`crate::evaluate_breakage`]) and the scenario matrix
/// (`cg-scenarios`) classify breakage through this one comparison.
pub fn probe_regressions(baseline: &VisitLog, defended: &VisitLog) -> Vec<ProbeRegression> {
    let before = probe_outcomes(&baseline.probes);
    let after = probe_outcomes(&defended.probes);
    let mut out: Vec<ProbeRegression> = before
        .into_iter()
        .filter(|(_, ok_before)| *ok_before)
        .filter(|(key, _)| matches!(after.get(key), Some(false)))
        .map(|((feature, cookie, actor), _)| ProbeRegression {
            feature,
            cookie,
            actor,
        })
        .collect();
    out.sort_by(|a, b| (&a.feature, &a.cookie, &a.actor).cmp(&(&b.feature, &b.cookie, &b.actor)));
    out
}

/// Keyed probe outcomes: (feature, cookie, actor) → all-succeeded?
fn probe_outcomes(probes: &[ProbeEvent]) -> HashMap<(String, String, Option<String>), bool> {
    let mut map: HashMap<(String, String, Option<String>), bool> = HashMap::new();
    for p in probes {
        let entry = map
            .entry((p.feature.clone(), p.cookie.clone(), p.actor.clone()))
            .or_insert(true);
        *entry &= p.ok;
    }
    map
}

/// Evaluates breakage over ranks `[from, to]`: every site is visited
/// twice (regular, guarded); a probe that passes regular but fails
/// guarded is a regression. Incomplete-crawl sites are skipped, like the
/// paper's manual protocol which only assessed reachable sites.
pub fn evaluate_breakage(
    gen: &WebGenerator,
    guard: &GuardConfig,
    from: usize,
    to: usize,
    _threads: usize,
) -> BreakageReport {
    let mut report = BreakageReport::default();
    // Compile the guard engine once for the whole evaluation; each visit
    // opens a per-site session on it.
    let regular_cfg = VisitConfig::regular();
    let guarded_cfg = VisitConfig::guarded(guard.clone());
    for rank in from..=to {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank) ^ 0x0b1e;
        let regular = visit_site(&bp, &regular_cfg, seed);
        let guarded = visit_site(&bp, &guarded_cfg, seed);
        report.sites += 1;

        let mut findings: Vec<(BreakageCategory, BreakageSeverity, String)> = Vec::new();
        let mut seen: std::collections::HashSet<(BreakageCategory, BreakageSeverity)> =
            std::collections::HashSet::new();
        for r in probe_regressions(&regular.log, &guarded.log) {
            if let Some((cat, sev)) = classify(&r.feature) {
                if seen.insert((cat, sev)) {
                    findings.push((cat, sev, format!("{} depends on {}", r.feature, r.cookie)));
                }
            }
        }
        if !findings.is_empty() {
            for (cat, sev, _) in &findings {
                *report.counts.entry((*cat, *sev)).or_insert(0) += 1;
            }
            report.details.push(SiteBreakage {
                site: bp.spec.domain.clone(),
                rank,
                findings,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_features() {
        assert_eq!(
            classify("sso"),
            Some((BreakageCategory::Sso, BreakageSeverity::Major))
        );
        assert_eq!(
            classify("sso_reload"),
            Some((BreakageCategory::Sso, BreakageSeverity::Minor))
        );
        assert_eq!(
            classify("ads"),
            Some((BreakageCategory::Functionality, BreakageSeverity::Minor))
        );
        assert_eq!(
            classify("chat"),
            Some((BreakageCategory::Functionality, BreakageSeverity::Major))
        );
        assert_eq!(classify("unknown"), None);
    }

    #[test]
    fn probe_outcomes_and_of_repeats() {
        let probes = vec![
            ProbeEvent {
                feature: "sso".into(),
                cookie: "s".into(),
                ok: true,
                actor: Some("a.com".into()),
            },
            ProbeEvent {
                feature: "sso".into(),
                cookie: "s".into(),
                ok: false,
                actor: Some("a.com".into()),
            },
        ];
        let map = probe_outcomes(&probes);
        assert_eq!(map.len(), 1);
        assert!(!map[&("sso".into(), "s".into(), Some("a.com".into()))]);
    }

    #[test]
    fn report_percentages() {
        let mut r = BreakageReport {
            sites: 100,
            ..BreakageReport::default()
        };
        r.counts
            .insert((BreakageCategory::Sso, BreakageSeverity::Major), 11);
        r.counts
            .insert((BreakageCategory::Sso, BreakageSeverity::Minor), 1);
        assert!((r.major_pct(BreakageCategory::Sso) - 11.0).abs() < 1e-9);
        assert!((r.minor_pct(BreakageCategory::Sso) - 1.0).abs() < 1e-9);
        assert_eq!(r.major_pct(BreakageCategory::Navigation), 0.0);
    }
}
