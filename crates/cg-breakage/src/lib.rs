//! Website-breakage evaluation (§7.2, Table 3).
//!
//! The paper assesses 100 sites manually in four categories — navigation,
//! SSO, appearance, and other functionality — each rated none / minor /
//! major. Here breakage is *mechanistic*: the generated sites carry
//! functional probes (`Probe` ops) whose success depends on a cookie
//! being readable by the probing script. A probe that succeeds in a
//! regular visit but fails under CookieGuard is a breakage:
//!
//! * `sso` probe regression → **major SSO** (cannot sign in);
//! * `sso_reload` probe regression → **minor SSO** (login works, reload
//!   logs out — the cnn.com case);
//! * `functionality`/`chat`/`cart` probe regression → **major
//!   functionality** (the fbcdn.net Messenger case);
//! * `ads` probe regression → **minor functionality** (an ad served by a
//!   third-party script is not shown).
//!
//! Navigation and appearance have no cookie dependency in the model —
//! and the paper measures 0% breakage for both — so they are probed but
//! never regress.
//!
//! Both visit conditions run their cookie traffic through the access
//! layer (`cookieguard_core::GuardedJar`, via [`cg_browser::visit_site`]):
//! a probe regression can only come from the guard's policy decision at
//! that one chokepoint, never from a divergent guard/jar/log dance in
//! some workload-specific code path.
//!
//! **Layer:** evaluation (paired `cg-browser` visits, probe
//! comparison). **Invariant:** breakage is always a *regression* —
//! probes failing without the guard never count. **Entry points:**
//! `evaluate_breakage`, `probe_regressions` (shared with the scenario
//! matrix).

pub mod evaluate;

pub use evaluate::{
    evaluate_breakage, probe_regressions, BreakageCategory, BreakageReport, BreakageSeverity,
    ProbeRegression, SiteBreakage,
};

#[cfg(test)]
mod tests {
    use super::*;
    use cg_webgen::{GenConfig, WebGenerator};
    use cookieguard_core::GuardConfig;

    #[test]
    fn strict_guard_breaks_some_sso_entity_grouping_heals() {
        let gen = WebGenerator::new(GenConfig::small(400), 77);
        let strict = evaluate_breakage(&gen, &GuardConfig::strict(), 1, 400, 4);
        let grouped = evaluate_breakage(
            &gen,
            &GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
            1,
            400,
            4,
        );
        // Strict must break more SSO than grouped.
        assert!(
            strict.major_pct(BreakageCategory::Sso) > grouped.major_pct(BreakageCategory::Sso),
            "strict {:.1}% vs grouped {:.1}%",
            strict.major_pct(BreakageCategory::Sso),
            grouped.major_pct(BreakageCategory::Sso)
        );
        // Navigation and appearance never break.
        assert_eq!(strict.major_pct(BreakageCategory::Navigation), 0.0);
        assert_eq!(strict.major_pct(BreakageCategory::Appearance), 0.0);
    }
}
