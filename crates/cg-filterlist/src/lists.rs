//! Synthetic filter-list generation.
//!
//! The paper combines nine crowd-sourced lists (§4.3). We regenerate the
//! same *shape* of data from the vendor registry: each list covers a slice
//! of the ecosystem in its own idiom (host-anchored domain rules, path
//! rules, type-restricted rules, a few exceptions), so the classification
//! code exercises every grammar feature rather than one synthetic style.

use serde::{Deserialize, Serialize};

/// Input to list generation: the domains to cover, split by category the
/// way the real lists split coverage.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ListInputs {
    /// Advertising domains (EasyList-style coverage).
    pub ad_domains: Vec<String>,
    /// Tracking/analytics domains (EasyPrivacy-style coverage).
    pub tracking_domains: Vec<String>,
    /// Social-widget domains (Fanboy Social-style coverage).
    pub social_domains: Vec<String>,
    /// Annoyance domains: consent popups etc. (Fanboy Annoyances).
    pub annoyance_domains: Vec<String>,
    /// Domains that must never be blocked (exception coverage).
    pub allowlisted: Vec<String>,
}

/// A generated list with a name matching its real-world counterpart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticList {
    /// List name (e.g. `easylist`).
    pub name: String,
    /// The raw list text, one rule or comment per line.
    pub text: String,
}

/// Generates the nine lists the paper combines.
pub fn synthetic_lists(inputs: &ListInputs) -> Vec<SyntheticList> {
    let mut lists = Vec::with_capacity(9);

    // 1. EasyList: ad domains, host-anchored; some third-party qualified.
    let mut easylist = String::from("! Title: EasyList (synthetic)\n");
    for (i, d) in inputs.ad_domains.iter().enumerate() {
        if i % 3 == 0 {
            easylist.push_str(&format!("||{d}^$third-party\n"));
        } else {
            easylist.push_str(&format!("||{d}^\n"));
        }
    }
    lists.push(SyntheticList {
        name: "easylist".into(),
        text: easylist,
    });

    // 2. EasyPrivacy: tracking domains plus classic path rules.
    let mut easyprivacy = String::from("! Title: EasyPrivacy (synthetic)\n");
    for d in &inputs.tracking_domains {
        easyprivacy.push_str(&format!("||{d}^\n"));
    }
    for path in [
        "/analytics.js",
        "/gtag/js",
        "/collect?",
        "/pixel?",
        "/beacon.min.js",
        "/fbevents.js",
    ] {
        easyprivacy.push_str(path);
        easyprivacy.push('\n');
    }
    lists.push(SyntheticList {
        name: "easyprivacy".into(),
        text: easyprivacy,
    });

    // 3. Fanboy Annoyances: consent-manager scripts, often script-typed.
    let mut annoyance = String::from("! Title: Fanboy Annoyances (synthetic)\n");
    for d in &inputs.annoyance_domains {
        annoyance.push_str(&format!("||{d}^$script\n"));
    }
    lists.push(SyntheticList {
        name: "fanboy-annoyance".into(),
        text: annoyance,
    });

    // 4. Fanboy Social: social widgets, often subdocument+script typed.
    let mut social = String::from("! Title: Fanboy Social (synthetic)\n");
    for d in &inputs.social_domains {
        social.push_str(&format!("||{d}^$script,subdocument\n"));
    }
    lists.push(SyntheticList {
        name: "fanboy-social".into(),
        text: social,
    });

    // 5. Peter Lowe's list: hosts-file style — plain domain rules.
    let mut lowe = String::from("! Title: Peter Lowe's list (synthetic)\n");
    for d in inputs
        .ad_domains
        .iter()
        .chain(&inputs.tracking_domains)
        .step_by(2)
    {
        lowe.push_str(&format!("||{d}^\n"));
    }
    lists.push(SyntheticList {
        name: "peter-lowe".into(),
        text: lowe,
    });

    // 6. Blockzilla: aggressive patterns with wildcards.
    let mut blockzilla = String::from("! Title: Blockzilla (synthetic)\n");
    for d in inputs.tracking_domains.iter().step_by(3) {
        if let Some(stem) = d.split('.').next() {
            if stem.len() >= 4 {
                blockzilla.push_str(&format!("||{d}^\n||cdn.{d}^\n"));
                let _ = stem; // stem kept for future pattern variety
            } else {
                blockzilla.push_str(&format!("||{d}^\n"));
            }
        }
    }
    blockzilla.push_str("/adframe.\n/adserver/*$script\n");
    lists.push(SyntheticList {
        name: "blockzilla".into(),
        text: blockzilla,
    });

    // 7. Squid blacklist: document-level blocks.
    let mut squid = String::from("! Title: Squid blacklist (synthetic)\n");
    for d in inputs.ad_domains.iter().step_by(4) {
        squid.push_str(&format!("||{d}^$document,script,image\n"));
    }
    lists.push(SyntheticList {
        name: "squid".into(),
        text: squid,
    });

    // 8. Anti-Adblock Killer: a handful of path-based rules.
    let aak = "! Title: Anti-Adblock Killer (synthetic)\n/advertisement.js\n/adblock-detect\n/fuckadblock\n||btloader.com^\n".to_string();
    lists.push(SyntheticList {
        name: "anti-adblock-killer".into(),
        text: aak,
    });

    // 9. Warning-removal list: exceptions only.
    let mut warning = String::from("! Title: Warning removal (synthetic)\n");
    for d in &inputs.allowlisted {
        warning.push_str(&format!("@@||{d}^\n"));
    }
    lists.push(SyntheticList {
        name: "warning-removal".into(),
        text: warning,
    });

    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FilterEngine, MatchContext};
    use crate::rule::ResourceType;

    fn inputs() -> ListInputs {
        ListInputs {
            ad_domains: vec![
                "doubleclick.net".into(),
                "adnxs.com".into(),
                "adsrvr.org".into(),
            ],
            tracking_domains: vec![
                "google-analytics.com".into(),
                "hotjar.com".into(),
                "segment.com".into(),
            ],
            social_domains: vec!["facebook.net".into()],
            annoyance_domains: vec!["cookielaw.org".into()],
            allowlisted: vec!["jquery.org".into()],
        }
    }

    #[test]
    fn nine_lists_generated() {
        let lists = synthetic_lists(&inputs());
        assert_eq!(lists.len(), 9);
        let names: Vec<_> = lists.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"easylist"));
        assert!(names.contains(&"easyprivacy"));
        assert!(names.contains(&"warning-removal"));
    }

    #[test]
    fn combined_engine_classifies_trackers() {
        let lists = synthetic_lists(&inputs());
        let (engine, _) = FilterEngine::from_lists(lists.iter().map(|l| l.text.as_str()));
        assert!(!engine.is_empty());
        let c = MatchContext {
            page_domain: "news.com".into(),
            resource: ResourceType::Script,
            third_party: true,
        };
        assert!(engine.is_tracking("https://www.google-analytics.com/analytics.js", &c));
        assert!(engine.is_tracking("https://static.doubleclick.net/instream/ad_status.js", &c));
        assert!(engine.is_tracking("https://connect.facebook.net/en_US/fbevents.js", &c));
        assert!(!engine.is_tracking("https://cdn.jsdelivr.example/lib.js", &c));
    }

    #[test]
    fn allowlist_wins() {
        let lists = synthetic_lists(&ListInputs {
            ad_domains: vec!["jquery.org".into()],
            allowlisted: vec!["jquery.org".into()],
            ..ListInputs::default()
        });
        let (engine, _) = FilterEngine::from_lists(lists.iter().map(|l| l.text.as_str()));
        let c = MatchContext {
            page_domain: "a.com".into(),
            resource: ResourceType::Script,
            third_party: true,
        };
        assert!(!engine.is_tracking("https://code.jquery.org/jquery.js", &c));
    }

    #[test]
    fn path_rules_catch_first_party_hosted_copies() {
        // EasyPrivacy's /analytics.js path rule catches self-hosted GA.
        let lists = synthetic_lists(&inputs());
        let (engine, _) = FilterEngine::from_lists(lists.iter().map(|l| l.text.as_str()));
        let c = MatchContext {
            page_domain: "shop.com".into(),
            resource: ResourceType::Script,
            third_party: false,
        };
        assert!(engine.is_tracking("https://shop.com/assets/analytics.js", &c));
    }
}
