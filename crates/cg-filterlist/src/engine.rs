//! The filter engine: many rules, one fast classification query.

use crate::rule::{FilterRule, ResourceType};
use std::collections::HashMap;

/// The request context a classification runs in — mirrors what
/// `adblockparser` receives: the URL, the resource type, and whether the
/// request is third-party relative to the page.
#[derive(Debug, Clone)]
pub struct MatchContext {
    /// The page's registrable domain (for `domain=` options).
    pub page_domain: String,
    /// The resource type of the fetch.
    pub resource: ResourceType,
    /// Whether the URL's domain differs from the page's.
    pub third_party: bool,
}

/// The outcome of a classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A blocking rule matched (the URL is advertising/tracking).
    Blocked {
        /// The raw text of the rule that matched.
        rule: String,
    },
    /// An exception (`@@`) rule overrode blocking rules.
    Allowed {
        /// The raw text of the exception rule.
        rule: String,
    },
    /// No rule matched.
    NoMatch,
}

impl Verdict {
    /// True when the URL would be classified advertising/tracking —
    /// the binary label the measurement pipeline uses (§4.3).
    pub fn is_tracking(&self) -> bool {
        matches!(self, Verdict::Blocked { .. })
    }
}

/// A compiled set of filter rules with a token prefilter.
///
/// Rules with a distinctive literal token ≥3 bytes are indexed under that
/// token; a query only evaluates rules whose token occurs in the URL,
/// plus the small set of un-indexable rules. This is the standard design
/// of production adblock engines, scaled down.
#[derive(Debug, Default)]
pub struct FilterEngine {
    block_by_token: HashMap<String, Vec<FilterRule>>,
    block_generic: Vec<FilterRule>,
    except_by_token: HashMap<String, Vec<FilterRule>>,
    except_generic: Vec<FilterRule>,
    rule_count: usize,
}

impl FilterEngine {
    /// An empty engine.
    pub fn new() -> FilterEngine {
        FilterEngine::default()
    }

    /// Compiles an engine from raw list text(s); unparseable lines are
    /// skipped (counted by the second return value), as real consumers do.
    pub fn from_lists<'a>(lists: impl IntoIterator<Item = &'a str>) -> (FilterEngine, usize) {
        let mut engine = FilterEngine::new();
        let mut skipped = 0;
        for list in lists {
            for line in list.lines() {
                match FilterRule::parse(line) {
                    Ok(rule) => engine.add(rule),
                    Err(_) => skipped += 1,
                }
            }
        }
        (engine, skipped)
    }

    /// Adds a single compiled rule.
    pub fn add(&mut self, rule: FilterRule) {
        self.rule_count += 1;
        let token = rule.index_token();
        let (by_token, generic) = if rule.exception {
            (&mut self.except_by_token, &mut self.except_generic)
        } else {
            (&mut self.block_by_token, &mut self.block_generic)
        };
        match token {
            Some(t) => by_token.entry(t).or_default().push(rule),
            None => generic.push(rule),
        }
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// True when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Classifies a URL in context. Exceptions override blocks, as in the
    /// Adblock semantics.
    pub fn classify(&self, url: &str, ctx: &MatchContext) -> Verdict {
        let url = url.to_ascii_lowercase();
        let tokens = url_tokens(&url);
        if let Some(rule) = self.first_match(
            &self.except_by_token,
            &self.except_generic,
            &url,
            &tokens,
            ctx,
        ) {
            return Verdict::Allowed {
                rule: rule.raw.clone(),
            };
        }
        if let Some(rule) = self.first_match(
            &self.block_by_token,
            &self.block_generic,
            &url,
            &tokens,
            ctx,
        ) {
            return Verdict::Blocked {
                rule: rule.raw.clone(),
            };
        }
        Verdict::NoMatch
    }

    /// Convenience wrapper: is this URL advertising/tracking in context?
    pub fn is_tracking(&self, url: &str, ctx: &MatchContext) -> bool {
        self.classify(url, ctx).is_tracking()
    }

    fn first_match<'e>(
        &self,
        by_token: &'e HashMap<String, Vec<FilterRule>>,
        generic: &'e [FilterRule],
        url: &str,
        tokens: &[String],
        ctx: &MatchContext,
    ) -> Option<&'e FilterRule> {
        for t in tokens {
            if let Some(rules) = by_token.get(t) {
                if let Some(r) = rules.iter().find(|r| rule_applies(r, url, ctx)) {
                    return Some(r);
                }
            }
        }
        generic.iter().find(|r| rule_applies(r, url, ctx))
    }
}

fn rule_applies(rule: &FilterRule, url: &str, ctx: &MatchContext) -> bool {
    if !rule.types.is_empty() && !rule.types.contains(&ctx.resource) {
        return false;
    }
    if let Some(tp) = rule.third_party {
        if tp != ctx.third_party {
            return false;
        }
    }
    if !rule.include_domains.is_empty()
        && !rule
            .include_domains
            .iter()
            .any(|d| domain_covers(d, &ctx.page_domain))
    {
        return false;
    }
    if rule
        .exclude_domains
        .iter()
        .any(|d| domain_covers(d, &ctx.page_domain))
    {
        return false;
    }
    rule.pattern_matches(url)
}

fn domain_covers(rule_domain: &str, page_domain: &str) -> bool {
    page_domain == rule_domain
        || (page_domain.len() > rule_domain.len()
            && page_domain.ends_with(rule_domain)
            && page_domain.as_bytes()[page_domain.len() - rule_domain.len() - 1] == b'.')
}

/// Tokens of a URL for index lookup: maximal `[a-z0-9_-]` runs ≥3 bytes.
fn url_tokens(url: &str) -> Vec<String> {
    url.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        .filter(|t| t.len() >= 3)
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rules: &[&str]) -> FilterEngine {
        let text = rules.join("\n");
        let (e, _) = FilterEngine::from_lists([text.as_str()]);
        e
    }

    fn ctx(page: &str, res: ResourceType, tp: bool) -> MatchContext {
        MatchContext {
            page_domain: page.into(),
            resource: res,
            third_party: tp,
        }
    }

    #[test]
    fn blocks_tracker_script() {
        let e = engine(&["||google-analytics.com^$script"]);
        let c = ctx("news.com", ResourceType::Script, true);
        assert!(e.is_tracking("https://www.google-analytics.com/analytics.js", &c));
        assert!(!e.is_tracking("https://www.google.com/maps.js", &c));
    }

    #[test]
    fn resource_type_restriction() {
        let e = engine(&["||pixel.net^$image"]);
        assert!(e.is_tracking(
            "https://pixel.net/1.gif",
            &ctx("a.com", ResourceType::Image, true)
        ));
        assert!(!e.is_tracking(
            "https://pixel.net/1.js",
            &ctx("a.com", ResourceType::Script, true)
        ));
    }

    #[test]
    fn third_party_restriction() {
        let e = engine(&["||cdn.com^$third-party"]);
        assert!(e.is_tracking(
            "https://cdn.com/x",
            &ctx("a.com", ResourceType::Script, true)
        ));
        assert!(!e.is_tracking(
            "https://cdn.com/x",
            &ctx("cdn.com", ResourceType::Script, false)
        ));
    }

    #[test]
    fn exception_overrides_block() {
        let e = engine(&["||ads.com^", "@@||ads.com/allowed^"]);
        let c = ctx("a.com", ResourceType::Script, true);
        assert!(e.is_tracking("https://ads.com/banner.js", &c));
        let v = e.classify("https://ads.com/allowed/lib.js", &c);
        assert!(matches!(v, Verdict::Allowed { .. }));
    }

    #[test]
    fn domain_option_scopes_to_page() {
        let e = engine(&["||widget.io^$domain=news.com"]);
        assert!(e.is_tracking(
            "https://widget.io/w.js",
            &ctx("news.com", ResourceType::Script, true)
        ));
        assert!(e.is_tracking(
            "https://widget.io/w.js",
            &ctx("sub.news.com", ResourceType::Script, true)
        ));
        assert!(!e.is_tracking(
            "https://widget.io/w.js",
            &ctx("shop.com", ResourceType::Script, true)
        ));
    }

    #[test]
    fn excluded_domain_suppresses() {
        let e = engine(&["||widget.io^$domain=~shop.com"]);
        assert!(e.is_tracking(
            "https://widget.io/w.js",
            &ctx("news.com", ResourceType::Script, true)
        ));
        assert!(!e.is_tracking(
            "https://widget.io/w.js",
            &ctx("shop.com", ResourceType::Script, true)
        ));
    }

    #[test]
    fn skips_bad_lines_counts_them() {
        let (e, skipped) = FilterEngine::from_lists(["! comment\n||good.com^\nbad##cosmetic\n\n"]);
        assert_eq!(e.len(), 1);
        assert_eq!(skipped, 3);
    }

    #[test]
    fn generic_substring_rules_still_match() {
        // "/ads/" has a token "ads" — craft one with only short tokens.
        let e = engine(&["/a1/"]);
        assert!(e.is_tracking(
            "https://x.com/a1/z",
            &ctx("a.com", ResourceType::Other, true)
        ));
    }

    #[test]
    fn no_match_verdict() {
        let e = engine(&["||tracker.com^"]);
        assert_eq!(
            e.classify(
                "https://benign.org/app.js",
                &ctx("a.com", ResourceType::Script, true)
            ),
            Verdict::NoMatch
        );
    }
}
