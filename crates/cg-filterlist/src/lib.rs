//! An Adblock-Plus-syntax filter-list engine — the reproduction's analog of
//! the `adblockparser` tool the paper uses (§4.3) to classify script URLs
//! as advertising/tracking.
//!
//! The paper combines nine crowd-sourced lists (EasyList, EasyPrivacy,
//! Fanboy Annoyances/Social, Peter Lowe's, Blockzilla, Squid, Anti-Adblock
//! Killer, the warning-removal list) and classifies *each occurrence of a
//! third-party script URL within a particular website context*. This crate
//! implements the rule grammar those lists use —
//!
//! * `||domain^` host-anchored rules,
//! * `|…` / `…|` start/end anchors,
//! * `*` wildcards and the `^` separator placeholder,
//! * `@@` exception rules,
//! * `$` options: resource types (`script`, `image`, `xmlhttprequest`,
//!   `subdocument`, `ping`, `document`, `other`), `third-party` /
//!   `~third-party`, and `domain=a.com|~b.com` context restrictions,
//!
//! — plus a token-indexed matcher (the same prefilter idea real adblock
//! engines use) and a generator that derives nine synthetic lists from the
//! vendor registry so the classification decision is driven by the same
//! kind of data the paper consumed.
//!
//! **Layer:** ecosystem/analysis (blocklist baseline + §4.3 labeling).
//! **Invariant:** rule evaluation is deterministic and
//! context-sensitive (site vs. script domain), like the real engines.
//! **Entry points:** `FilterEngine`, `synthetic_lists`, `FilterRule`.

pub mod engine;
pub mod lists;
pub mod rule;

pub use engine::{FilterEngine, MatchContext, Verdict};
pub use lists::{synthetic_lists, ListInputs, SyntheticList};
pub use rule::{FilterRule, ResourceType, RuleParseError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn ctx(page: &str, third_party: bool) -> MatchContext {
        MatchContext {
            page_domain: page.to_string(),
            resource: ResourceType::Script,
            third_party,
        }
    }

    proptest! {
        /// Rule parsing is total over printable input: parse or error,
        /// never panic — and parsed rules classify arbitrary URLs
        /// without panicking either.
        #[test]
        fn parser_and_matcher_total(line in "\\PC{0,80}", url in "\\PC{0,80}") {
            if let Ok(rule) = FilterRule::parse(&line) {
                // pattern_matches' contract: the caller lowercases (the
                // engine does; we do the same here).
                let _ = rule.pattern_matches(&url.to_ascii_lowercase());
                let mut engine = FilterEngine::new();
                engine.add(rule);
                let _ = engine.classify(&url, &ctx("example.com", true));
            }
        }

        /// An `@@` exception for the same pattern always overrides its
        /// blocking twin, whatever the domain shape.
        #[test]
        fn exception_overrides_block(host in "[a-z]{2,10}\\.(com|net|io)") {
            let block = FilterRule::parse(&format!("||{host}^")).unwrap();
            let except = FilterRule::parse(&format!("@@||{host}^")).unwrap();
            let url = format!("https://{host}/t.js");

            let mut blocking_only = FilterEngine::new();
            blocking_only.add(block.clone());
            prop_assert!(blocking_only.is_tracking(&url, &ctx("example.com", true)));

            let mut with_exception = FilterEngine::new();
            with_exception.add(block);
            with_exception.add(except);
            prop_assert!(!with_exception.is_tracking(&url, &ctx("example.com", true)));
        }

        /// `||domain^` anchors to the domain *boundary*: it matches the
        /// domain and its subdomains, never an unrelated host that merely
        /// contains the text.
        #[test]
        fn domain_anchor_respects_boundaries(host in "[a-z]{3,10}\\.com", sub in "[a-z]{1,6}") {
            let rule = FilterRule::parse(&format!("||{host}^")).unwrap();
            let exact = format!("https://{host}/x");
            let subdomain = format!("https://{sub}.{host}/x");
            let glued = format!("https://{sub}{host}/x");
            prop_assert!(rule.pattern_matches(&exact));
            prop_assert!(rule.pattern_matches(&subdomain));
            prop_assert!(!rule.pattern_matches(&glued), "prefix-glued host {} must not match", glued);
        }
    }
}
