//! Parsing of individual Adblock-Plus filter rules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource types supported in `$` options (the subset the measurement
/// exercises; unknown types cause the rule to be skipped, like real
/// parsers do for unsupported options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// `$script`
    Script,
    /// `$image`
    Image,
    /// `$xmlhttprequest`
    Xhr,
    /// `$subdocument`
    Subdocument,
    /// `$ping` (beacons)
    Ping,
    /// `$document`
    Document,
    /// `$other`
    Other,
}

impl ResourceType {
    fn from_option(s: &str) -> Option<ResourceType> {
        Some(match s {
            "script" => ResourceType::Script,
            "image" => ResourceType::Image,
            "xmlhttprequest" => ResourceType::Xhr,
            "subdocument" => ResourceType::Subdocument,
            "ping" => ResourceType::Ping,
            "document" => ResourceType::Document,
            "other" => ResourceType::Other,
            _ => return None,
        })
    }

    /// Parses the option name used by `cg_http::RequestKind::option_name`.
    pub fn from_kind_name(s: &str) -> ResourceType {
        ResourceType::from_option(s).unwrap_or(ResourceType::Other)
    }
}

/// How the pattern anchors to the URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anchor {
    /// No anchor: substring match anywhere.
    None,
    /// `||` host anchor: pattern must start at a host-label boundary.
    Host,
    /// `|` at the start: pattern matches from the beginning of the URL.
    Start,
}

/// Why a rule failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleParseError {
    /// Comments (`!`), cosmetic rules (`##`), and empty lines.
    NotANetworkRule,
    /// The rule uses an option we do not support (real engines skip these).
    UnsupportedOption(String),
    /// Rule was only an anchor or otherwise empty.
    EmptyPattern,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleParseError::NotANetworkRule => write!(f, "not a network rule"),
            RuleParseError::UnsupportedOption(o) => write!(f, "unsupported option {o:?}"),
            RuleParseError::EmptyPattern => write!(f, "empty pattern"),
        }
    }
}

impl std::error::Error for RuleParseError {}

/// One parsed network filter rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterRule {
    /// The raw text the rule was parsed from (for reporting).
    pub raw: String,
    /// `@@` exception rule (allowlist).
    pub exception: bool,
    /// Anchoring mode.
    pub anchor: Anchor,
    /// `|` at the end: pattern must reach the end of the URL.
    pub end_anchor: bool,
    /// Pattern split on `*` wildcards; parts must appear in order.
    /// `^` separator placeholders are kept verbatim within parts and
    /// handled by the matcher.
    pub parts: Vec<String>,
    /// Resource-type restrictions (empty = any type).
    pub types: Vec<ResourceType>,
    /// `third-party` / `~third-party` restriction.
    pub third_party: Option<bool>,
    /// `domain=` include list (empty = any context domain).
    pub include_domains: Vec<String>,
    /// `domain=` exclude list (`~`-prefixed entries).
    pub exclude_domains: Vec<String>,
}

impl FilterRule {
    /// Parses one line of a filter list.
    pub fn parse(line: &str) -> Result<FilterRule, RuleParseError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
            return Err(RuleParseError::NotANetworkRule);
        }
        // Cosmetic rules contain "##" or "#@#" or "#?#".
        if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
            return Err(RuleParseError::NotANetworkRule);
        }

        let (mut pattern, exception) = match line.strip_prefix("@@") {
            Some(rest) => (rest, true),
            None => (line, false),
        };

        // Split off options at the last '$' that is followed by known
        // option syntax. Simplification: lists we generate always put
        // options after the final '$'.
        let mut types = Vec::new();
        let mut third_party = None;
        let mut include_domains = Vec::new();
        let mut exclude_domains = Vec::new();
        if let Some(idx) = pattern.rfind('$') {
            let (pat, opts) = pattern.split_at(idx);
            let opts = &opts[1..];
            // Heuristic like real parsers: only treat as options when the
            // remainder looks like a comma-separated option list.
            if !opts.is_empty() && opts.split(',').all(looks_like_option) {
                pattern = pat;
                for opt in opts.split(',') {
                    let opt = opt.trim();
                    if let Some(rt) = ResourceType::from_option(opt) {
                        types.push(rt);
                    } else if opt == "third-party" || opt == "3p" {
                        third_party = Some(true);
                    } else if opt == "~third-party" || opt == "1p" {
                        third_party = Some(false);
                    } else if let Some(domains) = opt.strip_prefix("domain=") {
                        for d in domains.split('|') {
                            if let Some(ex) = d.strip_prefix('~') {
                                exclude_domains.push(ex.to_ascii_lowercase());
                            } else if !d.is_empty() {
                                include_domains.push(d.to_ascii_lowercase());
                            }
                        }
                    } else {
                        return Err(RuleParseError::UnsupportedOption(opt.to_string()));
                    }
                }
            }
        }

        let (anchor, rest) = if let Some(rest) = pattern.strip_prefix("||") {
            (Anchor::Host, rest)
        } else if let Some(rest) = pattern.strip_prefix('|') {
            (Anchor::Start, rest)
        } else {
            (Anchor::None, pattern)
        };
        let (end_anchor, rest) = match rest.strip_suffix('|') {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let parts: Vec<String> = rest.split('*').map(|s| s.to_ascii_lowercase()).collect();
        if parts.iter().all(|p| p.is_empty()) {
            return Err(RuleParseError::EmptyPattern);
        }
        Ok(FilterRule {
            raw: line.to_string(),
            exception,
            anchor,
            end_anchor,
            parts,
            types,
            third_party,
            include_domains,
            exclude_domains,
        })
    }

    /// The longest literal token of the rule (used for the engine's
    /// token index). Tokens are maximal runs of `[a-z0-9_-]` at least
    /// 3 bytes long; returns `None` for rules too generic to index.
    pub fn index_token(&self) -> Option<String> {
        self.parts
            .iter()
            .flat_map(|p| {
                p.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
                    .filter(|t| t.len() >= 3)
                    .map(str::to_string)
            })
            .max_by_key(String::len)
    }

    /// Whether the rule's pattern matches `url` (lowercased by caller).
    /// Options are checked separately by the engine.
    pub fn pattern_matches(&self, url: &str) -> bool {
        debug_assert_eq!(url, url.to_ascii_lowercase());
        let mut positions: Vec<usize> = match self.anchor {
            Anchor::Start => vec![0],
            Anchor::None => vec![], // any position — handled below
            Anchor::Host => host_anchor_positions(url),
        };
        if self.anchor == Anchor::None {
            // Any starting position is allowed.
            positions = (0..=url.len()).collect();
        }
        'pos: for start in positions {
            let mut cursor = start;
            for (i, part) in self.parts.iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let found = if i == 0 {
                    if part_matches_at(url, cursor, part) {
                        Some(cursor)
                    } else {
                        None
                    }
                } else {
                    find_part_from(url, cursor, part)
                };
                match found {
                    // Clamp: a trailing '^' may match the end of the URL and
                    // would otherwise push the cursor one past it.
                    Some(pos) => cursor = (pos + part_len(part)).min(url.len()),
                    None => continue 'pos,
                }
            }
            if self.end_anchor {
                // The last matched position must consume to the end
                // (a trailing `^` may also match end-of-input, which
                // part_len already accounted for only when a char was
                // consumed — accept equality or one-past for '^'-at-end).
                if cursor == url.len() {
                    return true;
                }
                continue 'pos;
            }
            return true;
        }
        false
    }
}

fn looks_like_option(opt: &str) -> bool {
    let opt = opt.trim();
    opt == "third-party"
        || opt == "~third-party"
        || opt == "3p"
        || opt == "1p"
        || opt.starts_with("domain=")
        || ResourceType::from_option(opt).is_some()
        // Unknown-but-option-shaped (letters/tildes only) so we can report
        // UnsupportedOption instead of treating "$" as part of the pattern.
        || opt.chars().all(|c| c.is_ascii_alphabetic() || c == '~' || c == '-')
}

/// Positions in `url` where a `||` host-anchored pattern may begin: the
/// start of the host, and after each `.` within the host.
fn host_anchor_positions(url: &str) -> Vec<usize> {
    let host_start = match url.find("://") {
        Some(i) => i + 3,
        None => 0,
    };
    let host_end = url[host_start..]
        .find(['/', '?', '#', ':'])
        .map(|i| host_start + i)
        .unwrap_or(url.len());
    let mut positions = vec![host_start];
    for (i, b) in url[host_start..host_end].bytes().enumerate() {
        if b == b'.' {
            positions.push(host_start + i + 1);
        }
    }
    positions
}

/// Byte length a part consumes when matched (parts are ASCII patterns).
fn part_len(part: &str) -> usize {
    part.len()
}

/// Does `part` (which may contain `^` separators) match at `pos`?
fn part_matches_at(url: &str, pos: usize, part: &str) -> bool {
    let bytes = url.as_bytes();
    let pbytes = part.as_bytes();
    if pos + pbytes.len() > bytes.len() + 1 {
        return false;
    }
    for (i, &pc) in pbytes.iter().enumerate() {
        let ui = pos + i;
        if pc == b'^' {
            match bytes.get(ui) {
                None => return i == pbytes.len() - 1, // '^' may match end of URL
                Some(&ub) => {
                    if is_separator(ub) {
                        continue;
                    }
                    return false;
                }
            }
        }
        match bytes.get(ui) {
            Some(&ub) if ub.eq_ignore_ascii_case(&pc) => continue,
            _ => return false,
        }
    }
    true
}

/// First position ≥ `from` where `part` matches.
fn find_part_from(url: &str, from: usize, part: &str) -> Option<usize> {
    (from..=url.len()).find(|&pos| part_matches_at(url, pos, part))
}

/// Adblock separator class: anything that is not a letter, digit, or one
/// of `_ - . %`.
fn is_separator(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'%')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(s: &str) -> FilterRule {
        FilterRule::parse(s).unwrap()
    }

    #[test]
    fn host_anchor_matches_domain_and_subdomains() {
        let r = rule("||ads.example.com^");
        assert!(r.pattern_matches("https://ads.example.com/x.js"));
        assert!(r.pattern_matches("https://sub.ads.example.com/x.js"));
        assert!(!r.pattern_matches("https://badads.example.com.evil.net/"));
        assert!(!r.pattern_matches("https://example.com/ads.example.com"));
    }

    #[test]
    fn separator_matches_boundary_or_end() {
        let r = rule("||tracker.io^");
        assert!(r.pattern_matches("https://tracker.io/"));
        assert!(r.pattern_matches("https://tracker.io"));
        assert!(r.pattern_matches("https://tracker.io:8443/a"));
        assert!(!r.pattern_matches("https://tracker.iox/"));
    }

    #[test]
    fn substring_rule() {
        let r = rule("/analytics.js");
        assert!(r.pattern_matches("https://cdn.site.com/analytics.js?x=1"));
        assert!(!r.pattern_matches("https://cdn.site.com/analytics.css"));
    }

    #[test]
    fn wildcard_rule() {
        let r = rule("||cdn.*/pixel^");
        assert!(r.pattern_matches("https://cdn.tracker.com/pixel?id=1"));
        assert!(!r.pattern_matches("https://cdn.tracker.com/img"));
    }

    #[test]
    fn start_and_end_anchor() {
        let r = rule("|https://exact.com/path|");
        assert!(r.pattern_matches("https://exact.com/path"));
        assert!(!r.pattern_matches("https://exact.com/path/more"));
        assert!(!r.pattern_matches("https://prefix.com/https://exact.com/path"));
    }

    #[test]
    fn exception_flag() {
        let r = rule("@@||goodcdn.com^$script");
        assert!(r.exception);
        assert_eq!(r.types, vec![ResourceType::Script]);
    }

    #[test]
    fn options_parse() {
        let r = rule("||adnet.com^$script,third-party,domain=news.com|~shop.com");
        assert_eq!(r.third_party, Some(true));
        assert_eq!(r.include_domains, vec!["news.com"]);
        assert_eq!(r.exclude_domains, vec!["shop.com"]);
    }

    #[test]
    fn comments_and_cosmetics_rejected() {
        assert_eq!(
            FilterRule::parse("! comment").unwrap_err(),
            RuleParseError::NotANetworkRule
        );
        assert_eq!(
            FilterRule::parse("example.com##.ad").unwrap_err(),
            RuleParseError::NotANetworkRule
        );
        assert_eq!(
            FilterRule::parse("").unwrap_err(),
            RuleParseError::NotANetworkRule
        );
        assert_eq!(
            FilterRule::parse("[Adblock Plus 2.0]").unwrap_err(),
            RuleParseError::NotANetworkRule
        );
    }

    #[test]
    fn unsupported_option_rejected() {
        assert!(matches!(
            FilterRule::parse("||x.com^$websocket").unwrap_err(),
            RuleParseError::UnsupportedOption(_)
        ));
    }

    #[test]
    fn index_token_prefers_longest() {
        let r = rule("||googletagmanager.com^/gtm.js");
        assert_eq!(r.index_token().as_deref(), Some("googletagmanager"));
    }

    #[test]
    fn dollar_in_path_not_treated_as_options() {
        // "$" followed by non-option-shaped text stays part of the pattern…
        let r = rule("/checkout$49.99");
        assert!(r.pattern_matches("https://x.com/checkout$49.99"));
        // …while "$" followed by an option-shaped word is an (unsupported)
        // option, so the whole rule is skipped — like real parsers.
        assert!(matches!(
            FilterRule::parse("/checkout$price").unwrap_err(),
            RuleParseError::UnsupportedOption(_)
        ));
    }

    #[test]
    fn case_insensitive_matching() {
        let r = rule("||Tracker.COM^");
        assert!(r.pattern_matches("https://tracker.com/"));
    }
}
