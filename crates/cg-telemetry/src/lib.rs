//! **Runtime telemetry** — the observability layer threaded through
//! crawl, analysis, and serving: a lock-free metrics registry,
//! structured spans, and a per-thread flight recorder.
//!
//! The paper's §4.1 instrumentation gives epistemic visibility into
//! *cookie events*; this crate gives operational visibility into the
//! *system* moving them — how many bytes the crawl store fsynced, how
//! long a policy swap took to install, how many sessions a tenant has
//! live — without ever touching a deterministic surface.
//!
//! Three pieces:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   named values registered once and incremented from any thread.
//!   Counters stripe across cache-padded atomic cells; everything is
//!   `Relaxed`; a global kill switch ([`Registry::set_enabled`]) turns
//!   every increment into one relaxed load. Snapshots split metrics by
//!   declared [`Class`] into a `workload` section (byte-identical
//!   across worker counts) and a `runtime` section carrying a
//!   `deterministic: false` marker, which the determinism harness
//!   masks.
//! * **Spans** ([`Span`], [`span!`]): RAII guards timing coarse work
//!   units (a visit, a segment batch, a fold shard, a session, an
//!   engine swap) on the monotonic clock, with parent links from a
//!   per-thread stack.
//! * **Flight recorder** ([`recorder`]): each thread keeps its last
//!   [`recorder::RING_CAPACITY`] span events in a ring; on error or on
//!   demand the rings merge into one sequenced post-mortem dump
//!   ([`recorder::dump_json`], [`recorder::dump_to_stderr`]).
//!
//! **Layer:** infrastructure — below every instrumented crate
//! (`cg-crawlstore`, `cg-browser`, `cg-analysis`, `cg-service`),
//! depending only on the serde facade. **Invariants:** telemetry never
//! appears on any wire or deterministic surface (store bytes,
//! `VisitLog`s, counter reports are unchanged whether telemetry is on
//! or off); the `workload` snapshot section is byte-identical across
//! worker counts for the same job; the decision hot path stays
//! atomic-free (per-worker [`LatencyHistogram`]s, merged after join);
//! disabled telemetry costs one relaxed load per site. **Entry
//! points:** [`global()`], [`span!`], [`Registry::snapshot`],
//! [`recorder::dump_json`], [`Stopwatch`].

#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use export::{prometheus_text, snapshot_json};
pub use hist::{LatencyHistogram, LatencySummary};
pub use metrics::{global, Class, Counter, Gauge, Histogram, Registry};
pub use span::{now_ns, per_sec, render_ms, Span, Stopwatch};
