//! The lock-free metrics registry: sharded counters, gauges, and
//! atomic histograms, merged on snapshot.
//!
//! # Handle model
//!
//! A subsystem registers each metric once (typically inside a
//! `OnceLock`-initialized handle struct, so every metric of the group
//! appears in the snapshot schema together — even the ones that never
//! fire) and then increments through the returned handle. Handles are
//! cheap `Arc` clones; the registry's interior `Mutex` is touched only
//! at registration and snapshot time, never on an increment.
//!
//! # Determinism classes
//!
//! Every counter and gauge declares a [`Class`]:
//!
//! * [`Class::Workload`] — a pure function of the work performed
//!   (visits crawled, records written, decisions made). Snapshots place
//!   these in a `workload` section that must be byte-identical across
//!   worker counts for the same job.
//! * [`Class::Runtime`] — anything scheduling-dependent (fsync batches,
//!   segments opened, live-session high-water marks, latencies).
//!   Snapshots place these under `runtime`, which carries a
//!   `deterministic: false` marker and is nulled by
//!   `cg_experiments::determinism` masking.
//!
//! Histograms record latencies, so they are always `Runtime`.
//!
//! # Concurrency
//!
//! Counters are striped across cache-line-padded `AtomicU64` cells
//! indexed by a per-thread slot, so concurrent workers rarely contend
//! on a line; `value()` sums the stripes. All atomics use `Relaxed`
//! ordering — metrics observe no cross-variable invariants, and
//! snapshot totals taken after worker joins are exact because the join
//! itself synchronizes.

use crate::hist::{bucket_of, LatencyHistogram, BUCKETS};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Stripes per counter. A power of two comfortably above typical worker
/// counts; 16 × 64 B = 1 KiB per counter.
const STRIPES: usize = 16;

/// One cache-line-padded counter cell, so two stripes never share a
/// line.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// The per-thread stripe slot, assigned round-robin at first use.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    SLOT.with(|s| *s)
}

/// Determinism class of a counter or gauge — decides which snapshot
/// section (and therefore which masking rule) the metric lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Pure function of the work performed; byte-identical across
    /// worker counts.
    Workload,
    /// Scheduling/timing dependent; masked by determinism checks.
    Runtime,
}

/// Shared per-registry state every handle needs on the hot path.
struct Shared {
    enabled: AtomicBool,
}

struct CounterInner {
    shared: Arc<Shared>,
    stripes: [Stripe; STRIPES],
}

/// A monotonically increasing `u64` metric, striped across threads.
#[derive(Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    /// Adds `n`. A single `Relaxed` fetch-add on a thread-local stripe
    /// when telemetry is enabled; one relaxed load when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.0.shared.enabled.load(Ordering::Relaxed) {
            self.0.stripes[stripe_index()]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The summed value across stripes.
    pub fn value(&self) -> u64 {
        self.0
            .stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.0.stripes {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

struct GaugeInner {
    shared: Arc<Shared>,
    value: AtomicI64,
}

/// A point-in-time `i64` metric (live sessions, undrained engines).
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.0.shared.enabled.load(Ordering::Relaxed) {
            self.0.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.0.shared.enabled.load(Ordering::Relaxed) {
            self.0.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn decr(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.value.store(0, Ordering::Relaxed);
    }
}

struct HistogramInner {
    shared: Arc<Shared>,
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
    max_ns: AtomicU64,
}

/// A shared atomic histogram handle over the same log-scaled buckets as
/// [`LatencyHistogram`]. Use where per-worker plain histograms are
/// impractical (events recorded from arbitrary threads, e.g. swap
/// installs); hot per-worker paths should keep private
/// [`LatencyHistogram`]s and stay atomic-free.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one nanosecond observation.
    #[inline]
    pub fn record(&self, ns: u64) {
        if self.0.shared.enabled.load(Ordering::Relaxed) {
            self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
            self.0.total.fetch_add(1, Ordering::Relaxed);
            self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
    }

    /// A plain-histogram snapshot of the current bucket state.
    pub fn to_latency_histogram(&self) -> LatencyHistogram {
        let counts: Box<[u64]> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        LatencyHistogram::from_parts(
            counts,
            self.0.total.load(Ordering::Relaxed),
            self.0.max_ns.load(Ordering::Relaxed),
        )
    }

    fn reset(&self) {
        for b in &self.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.0.total.store(0, Ordering::Relaxed);
        self.0.max_ns.store(0, Ordering::Relaxed);
    }
}

/// One registered metric, as stored in the registry map.
enum Metric {
    Counter(Counter, Class),
    Gauge(Gauge, Class),
    Histogram(Histogram),
}

/// A metrics registry: a named set of counters/gauges/histograms with
/// one runtime kill switch. Most code uses the process-wide
/// [`global()`] registry; tests construct private instances.
pub struct Registry {
    shared: Arc<Shared>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Registry {
        Registry {
            shared: Arc::new(Shared {
                enabled: AtomicBool::new(true),
            }),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Runtime kill switch: when disabled, every handle's increment is
    /// a single relaxed load and no state changes. Always-compiled,
    /// toggleable — the overhead bench measures exactly this delta.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether increments are currently recorded.
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) the counter `name`. Panics if `name` is
    /// already registered as a different kind or class — metric names
    /// are a global namespace and a mismatch is a programming error.
    pub fn counter(&self, name: &str, class: Class) -> Counter {
        assert_ne!(name, "deterministic", "reserved snapshot marker key");
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(Metric::Counter(c, existing)) => {
                assert_eq!(
                    *existing, class,
                    "counter {name} re-registered as {class:?}"
                );
                c.clone()
            }
            Some(_) => panic!("metric {name} already registered as a different kind"),
            None => {
                let c = Counter(Arc::new(CounterInner {
                    shared: self.shared.clone(),
                    stripes: Default::default(),
                }));
                map.insert(name.to_string(), Metric::Counter(c.clone(), class));
                c
            }
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        assert_ne!(name, "deterministic", "reserved snapshot marker key");
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(Metric::Gauge(g, existing)) => {
                assert_eq!(*existing, class, "gauge {name} re-registered as {class:?}");
                g.clone()
            }
            Some(_) => panic!("metric {name} already registered as a different kind"),
            None => {
                let g = Gauge(Arc::new(GaugeInner {
                    shared: self.shared.clone(),
                    value: AtomicI64::new(0),
                }));
                map.insert(name.to_string(), Metric::Gauge(g.clone(), class));
                g
            }
        }
    }

    /// Registers (or retrieves) the histogram `name` (always
    /// [`Class::Runtime`] — histograms hold latencies).
    pub fn histogram(&self, name: &str) -> Histogram {
        assert_ne!(name, "deterministic", "reserved snapshot marker key");
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(Metric::Histogram(h)) => h.clone(),
            Some(_) => panic!("metric {name} already registered as a different kind"),
            None => {
                let h = Histogram(Arc::new(HistogramInner {
                    shared: self.shared.clone(),
                    buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                    total: AtomicU64::new(0),
                    max_ns: AtomicU64::new(0),
                }));
                map.insert(name.to_string(), Metric::Histogram(h.clone()));
                h
            }
        }
    }

    /// Zeroes every registered value, keeping registrations (and
    /// outstanding handles) intact. A harness API: benches reset
    /// between runs so per-run snapshots are comparable.
    pub fn reset(&self) {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        for metric in map.values() {
            match metric {
                Metric::Counter(c, _) => c.reset(),
                Metric::Gauge(g, _) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// The snapshot document: `workload` (deterministic across worker
    /// counts) and `runtime` (marked `deterministic: false`; masked by
    /// the determinism surface). Keys within each section are sorted,
    /// so two snapshots of the same registry state are byte-identical.
    pub fn snapshot(&self) -> Value {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        let mut workload = serde_json::Map::new();
        let mut runtime = serde_json::Map::new();
        runtime.insert("deterministic".to_string(), Value::Bool(false));
        for (name, metric) in map.iter() {
            let (section, value) = match metric {
                Metric::Counter(c, Class::Workload) => (&mut workload, num_u64(c.value())),
                Metric::Counter(c, Class::Runtime) => (&mut runtime, num_u64(c.value())),
                Metric::Gauge(g, Class::Workload) => (&mut workload, num_i64(g.value())),
                Metric::Gauge(g, Class::Runtime) => (&mut runtime, num_i64(g.value())),
                Metric::Histogram(h) => {
                    let s = h.to_latency_histogram().summary();
                    (
                        &mut runtime,
                        serde_json::to_value(s).expect("serialize latency summary"),
                    )
                }
            };
            section.insert(name.clone(), value);
        }
        let mut root = serde_json::Map::new();
        root.insert("workload".to_string(), Value::Object(workload));
        root.insert("runtime".to_string(), Value::Object(runtime));
        Value::Object(root)
    }

    /// Per-metric iteration for the Prometheus exporter.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&str, MetricView<'_>)) {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c, class) => f(name, MetricView::Counter(c.value(), *class)),
                Metric::Gauge(g, class) => f(name, MetricView::Gauge(g.value(), *class)),
                Metric::Histogram(h) => f(name, MetricView::Histogram(h.to_latency_histogram())),
            }
        }
    }
}

/// A borrowed view of one metric's current value, for exporters.
pub(crate) enum MetricView<'a> {
    Counter(u64, Class),
    Gauge(i64, Class),
    Histogram(LatencyHistogram),
    #[allow(dead_code)]
    Phantom(&'a ()),
}

fn num_u64(v: u64) -> Value {
    serde_json::to_value(v).expect("serialize u64")
}

fn num_i64(v: i64) -> Value {
    serde_json::to_value(v).expect("serialize i64")
}

/// The process-wide registry almost all instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = Registry::new();
        let c = reg.counter("t.ops", Class::Workload);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        let c = reg.counter("t.ops", Class::Workload);
        let g = reg.gauge("t.live", Class::Runtime);
        let h = reg.histogram("t.lat");
        reg.set_enabled(false);
        c.add(5);
        g.set(9);
        h.record(123);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.to_latency_histogram().count(), 0);
        reg.set_enabled(true);
        c.add(5);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let reg = Registry::new();
        let a = reg.counter("t.ops", Class::Workload);
        let b = reg.counter("t.ops", Class::Workload);
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("t.ops", Class::Runtime)
        }));
        assert!(err.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn snapshot_sections_follow_class() {
        let reg = Registry::new();
        reg.counter("w.records", Class::Workload).add(7);
        reg.counter("r.fsyncs", Class::Runtime).add(3);
        reg.gauge("r.live", Class::Runtime).set(2);
        reg.histogram("r.lat").record(500);
        let snap = reg.snapshot();
        assert_eq!(snap["workload"]["w.records"].as_u64(), Some(7));
        assert_eq!(snap["runtime"]["deterministic"].as_bool(), Some(false));
        assert_eq!(snap["runtime"]["r.fsyncs"].as_u64(), Some(3));
        assert_eq!(snap["runtime"]["r.live"].as_i64(), Some(2));
        assert_eq!(snap["runtime"]["r.lat"]["count"].as_u64(), Some(1));
        assert!(snap["workload"].get("r.fsyncs").is_none());
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let reg = Registry::new();
        let c = reg.counter("t.ops", Class::Workload);
        let h = reg.histogram("t.lat");
        c.add(9);
        h.record(10);
        reg.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(h.to_latency_histogram().count(), 0);
        // The key survives the reset (schema stability).
        assert!(reg.snapshot()["workload"].get("t.ops").is_some());
        c.add(1);
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn histogram_handle_matches_plain_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("t.lat");
        let mut plain = LatencyHistogram::new();
        for v in [3u64, 77, 500, 12_345, 1_000_000] {
            h.record(v);
            plain.record(v);
        }
        let snap = h.to_latency_histogram();
        assert_eq!(snap.count(), plain.count());
        for q in [0.5, 0.99, 0.999] {
            assert_eq!(snap.quantile(q), plain.quantile(q));
        }
    }
}
