//! Structured spans: RAII guards with monotonic-clock timings and
//! parent links, recorded into the per-thread flight-recorder rings.
//!
//! A span is opened with the [`span!`](crate::span!) macro (or
//! [`Span::enter`]) and closed by drop. On close it appends one
//! [`Event`] — name, one `u64` attribute,
//! start offset, duration, parent span id — to the calling thread's
//! ring buffer. Spans cover *coarse* units (a visit, a segment append
//! batch, a fold shard, a session, an engine swap), never per-decision
//! work: one uncontended mutex push per close is cheap at that
//! granularity and keeps the decision hot path atomic-free.
//!
//! Parent links come from a per-thread stack (a single `Cell`): the
//! span open while another opens becomes its parent, giving the flight
//! recorder a tree per thread without any allocation on open.
//!
//! Timings are offsets from a process-wide monotonic epoch
//! ([`now_ns`]), so events from different threads order consistently
//! and no wall-clock ever enters the telemetry stream.

use crate::metrics::global;
use crate::recorder::{self, Event};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process's telemetry epoch (the first call).
/// Monotonic; never wall-clock.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Span ids: process-unique, never 0 (0 means "no parent").
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The innermost open span on this thread (0 when none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// An open span. Closing (dropping) it records one event into the
/// flight recorder; see the module docs for granularity guidance.
#[must_use = "a span records on drop; binding it to _ closes it immediately"]
pub struct Span {
    id: u64,
    parent: u64,
    name: &'static str,
    attr: u64,
    start_ns: u64,
    /// False when telemetry was disabled at open: drop is then a no-op,
    /// so a disable mid-span loses that span rather than recording a
    /// half-timed event.
    active: bool,
}

impl Span {
    /// Opens a span named `name` carrying one numeric attribute
    /// (a rank, a tenant id, a segment number — 0 when nothing fits).
    pub fn enter(name: &'static str, attr: u64) -> Span {
        if !global().enabled() {
            return Span {
                id: 0,
                parent: 0,
                name,
                attr,
                start_ns: 0,
                active: false,
            };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = CURRENT.with(|c| c.replace(id));
        Span {
            id,
            parent,
            name,
            attr,
            start_ns: now_ns(),
            active: true,
        }
    }

    /// This span's id (0 for an inactive span).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nanoseconds since this span opened (0 for an inactive span).
    pub fn elapsed_ns(&self) -> u64 {
        if self.active {
            now_ns().saturating_sub(self.start_ns)
        } else {
            0
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CURRENT.with(|c| c.set(self.parent));
        let end = now_ns();
        recorder::record(Event {
            seq: 0, // assigned by the recorder
            id: self.id,
            parent: self.parent,
            name: self.name,
            attr: self.attr,
            start_ns: self.start_ns,
            duration_ns: end.saturating_sub(self.start_ns),
        });
    }
}

/// Opens a [`Span`]: `span!("visit")` or `span!("visit", rank)`. The
/// attribute is any expression convertible to `u64` with `as`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, 0)
    };
    ($name:expr, $attr:expr) => {
        $crate::Span::enter($name, $attr as u64)
    };
}

/// A monotonic stopwatch plus the one shared way to render elapsed
/// time, consolidating the `elapsed().as_millis().max(1)` pattern that
/// used to be duplicated across the experiment subcommands.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed whole milliseconds, floored at 1 so rates derived from
    /// it never divide by zero.
    pub fn elapsed_ms(&self) -> u64 {
        (self.started.elapsed().as_millis() as u64).max(1)
    }

    /// `n` items over the elapsed time, per second.
    pub fn per_sec(&self, n: u64) -> f64 {
        per_sec(n, self.elapsed_ms())
    }
}

/// `n` items over `elapsed_ms` milliseconds, per second — the one rate
/// helper behind every "visits/s" figure the benches print. A zero
/// elapsed time is floored at 1 ms, so a sub-millisecond run yields a
/// lower bound instead of a division by zero.
pub fn per_sec(n: u64, elapsed_ms: u64) -> f64 {
    n as f64 * 1000.0 / elapsed_ms.max(1) as f64
}

/// Renders an elapsed-milliseconds figure the one canonical way
/// (`"1234 ms"`), so progress lines across subcommands stay uniform.
pub fn render_ms(ms: u64) -> String {
    format!("{ms} ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_floors_at_one_ms() {
        let w = Stopwatch::start();
        assert!(w.elapsed_ms() >= 1);
        assert!(w.per_sec(1000) > 0.0);
    }

    #[test]
    fn render_ms_is_stable() {
        assert_eq!(render_ms(42), "42 ms");
    }
}
