//! The flight recorder: fixed-size per-thread ring buffers of recent
//! span events, dumped on error or on demand.
//!
//! Every thread that closes a span lazily registers one [`Ring`] of
//! [`RING_CAPACITY`] slots in a process-wide list (the ring outlives
//! the thread, so a worker that exited before a crash still contributes
//! its tail). Recording is one push under the ring's own mutex —
//! uncontended in steady state because only the owning thread writes,
//! while dumps briefly lock each ring to copy it.
//!
//! A dump merges every ring and sorts by the global close sequence, so
//! the result is the interleaved "last N events per thread" picture a
//! post-mortem needs: what each worker was doing, under which parent
//! span, for how long. [`dump_json`] renders it as a JSON array;
//! [`dump_to_stderr`] is the error-path hook the service and crawl
//! seams call before propagating a failure.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread. 1024 spans ≈ the last few seconds of
/// coarse-grained work per worker, in ~64 KiB.
pub const RING_CAPACITY: usize = 1024;

/// One recorded span close.
#[derive(Debug, Clone, Serialize)]
pub struct Event {
    /// Global close-order sequence number (dump sort key).
    pub seq: u64,
    /// Span id (process-unique, never 0).
    pub id: u64,
    /// Parent span id; 0 when the span was a root on its thread.
    pub parent: u64,
    /// Span name (`"visit"`, `"segment_append"`, …).
    pub name: &'static str,
    /// The span's one numeric attribute (rank, segment, tenant — 0 when
    /// unused).
    pub attr: u64,
    /// Open time, nanoseconds since the process telemetry epoch.
    pub start_ns: u64,
    /// Close minus open, nanoseconds.
    pub duration_ns: u64,
}

/// A fixed-capacity overwrite-oldest buffer of [`Event`]s.
pub struct Ring {
    slots: Vec<Event>,
    /// Next slot to overwrite once full.
    head: usize,
    capacity: usize,
}

impl Ring {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Ring {
        Ring {
            slots: Vec::with_capacity(capacity.min(1024)),
            head: 0,
            capacity: capacity.max(1),
        }
    }

    /// Appends `event`, overwriting the oldest once full.
    pub fn push(&mut self, event: Event) {
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        if self.slots.len() < self.capacity {
            out.extend(self.slots.iter().cloned());
        } else {
            out.extend(self.slots[self.head..].iter().cloned());
            out.extend(self.slots[..self.head].iter().cloned());
        }
        out
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// The list of every thread's ring (rings outlive their threads).
fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's ring, registered in the global list at first use.
    static THREAD_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring::new(RING_CAPACITY)));
        rings()
            .lock()
            .expect("flight recorder list poisoned")
            .push(ring.clone());
        ring
    };
}

/// Global close-order sequence (the merge sort key across rings).
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// Records one event into the calling thread's ring, stamping its
/// global sequence number. Called by [`Span`](crate::Span) on drop.
pub fn record(mut event: Event) {
    event.seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    THREAD_RING.with(|ring| {
        ring.lock()
            .expect("flight recorder ring poisoned")
            .push(event);
    });
}

/// Merges every thread's retained events, sorted by close sequence
/// (oldest first).
pub fn dump() -> Vec<Event> {
    let list = rings().lock().expect("flight recorder list poisoned");
    let mut all: Vec<Event> = Vec::new();
    for ring in list.iter() {
        all.extend(ring.lock().expect("flight recorder ring poisoned").events());
    }
    drop(list);
    all.sort_by_key(|e| e.seq);
    all
}

/// Discards every retained event (rings stay registered). A harness
/// API, mirroring [`Registry::reset`](crate::Registry::reset).
pub fn clear() {
    let list = rings().lock().expect("flight recorder list poisoned");
    for ring in list.iter() {
        let mut ring = ring.lock().expect("flight recorder ring poisoned");
        *ring = Ring::new(RING_CAPACITY);
    }
}

/// The merged dump as a JSON array (one object per event, oldest
/// first). Timings inside are non-deterministic by construction; the
/// dump is a post-mortem artifact, never a compared surface.
pub fn dump_json() -> String {
    serde_json::to_string(&dump()).expect("serialize flight recorder dump")
}

/// Error-path hook: prints the last `limit` merged events to stderr
/// with a context header. The service and crawl seams call this before
/// propagating a failure so the operator sees what every worker was
/// doing when things went wrong.
pub fn dump_to_stderr(context: &str, limit: usize) {
    let all = dump();
    let tail = &all[all.len().saturating_sub(limit)..];
    eprintln!(
        "[telemetry] flight recorder ({context}): last {} of {} events",
        tail.len(),
        all.len()
    );
    for e in tail {
        eprintln!(
            "[telemetry]   #{:<8} {:<16} attr={:<8} parent={:<8} {:>10} ns",
            e.seq, e.name, e.attr, e.parent, e.duration_ns
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            id: seq,
            parent: 0,
            name: "t",
            attr: seq,
            start_ns: 0,
            duration_ns: 1,
        }
    }

    #[test]
    fn ring_keeps_newest_when_wrapping() {
        let mut ring = Ring::new(4);
        for i in 1..=10 {
            ring.push(ev(i));
        }
        let kept: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![7, 8, 9, 10]);
        assert_eq!(ring.len(), 4);
    }

    #[test]
    fn ring_below_capacity_keeps_everything_in_order() {
        let mut ring = Ring::new(8);
        for i in 1..=3 {
            ring.push(ev(i));
        }
        let kept: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![1, 2, 3]);
    }

    #[test]
    fn span_close_lands_in_dump_with_parent_link() {
        // Other tests in this binary may be recording concurrently;
        // filter on names unique to this test.
        let (outer_id, inner_id) = {
            let outer = crate::span!("rec_test_outer", 7);
            let outer_id = outer.id();
            let inner = crate::span!("rec_test_inner", 8);
            (outer_id, inner.id())
        };
        let all = dump();
        let inner = all
            .iter()
            .find(|e| e.name == "rec_test_inner")
            .expect("inner span recorded");
        assert_eq!(inner.parent, outer_id);
        assert_eq!(inner.id, inner_id);
        assert_eq!(inner.attr, 8);
        let outer = all
            .iter()
            .find(|e| e.name == "rec_test_outer")
            .expect("outer span recorded");
        assert_eq!(outer.attr, 7);
        // Inner closed first, so its sequence is lower.
        assert!(inner.seq < outer.seq);
    }
}
