//! Per-worker latency histograms, merged deterministically.
//!
//! Each worker owns a private [`LatencyHistogram`] and records into it
//! with plain (non-atomic) increments — no sharing, no locks, no
//! contention on the hot path. After the workers join, the per-worker
//! histograms [`merge`](LatencyHistogram::merge) element-wise; because
//! bucket counts are order-independent sums, the merged histogram (and
//! every quantile drawn from it) is identical at any worker count for
//! the same recorded multiset.
//!
//! Buckets are log-scaled with 16 linear sub-buckets per power of two
//! (HdrHistogram-style): relative quantile error is bounded by 1/16
//! (~6%) across the full `u64` nanosecond range in under 8 KiB of
//! counters, so 77 ns decisions and millisecond-scale stalls land in
//! one structure without tuning.
//!
//! Hoisted out of `cg-service` (PR 7) so the crawl, analysis, and
//! serving layers share one histogram type; `cg_service::stats`
//! re-exports it, so existing imports and the `BENCH_service.json`
//! shape are unchanged. The shared-registry
//! [`Histogram`](crate::metrics::Histogram) handle in
//! [`crate::metrics`] wraps the same bucket math in atomics.

use serde::Serialize;

/// log2(sub-buckets per octave).
pub(crate) const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power of two.
pub(crate) const SUB: usize = 1 << SUB_BITS;
/// Total buckets: 16 exact values below 16, then 16 per octave up to
/// 2^63.
pub(crate) const BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// Index of the bucket containing `v`.
pub(crate) fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - SUB_BITS as usize)) as usize) & (SUB - 1);
        (exp - SUB_BITS as usize + 1) * SUB + sub
    }
}

/// Smallest value that lands in bucket `i` (the quantile estimate we
/// report — a conservative lower bound).
pub(crate) fn bucket_floor(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = i / SUB - 1 + SUB_BITS as usize;
        let sub = (i % SUB) as u64;
        (1u64 << exp) + (sub << (exp - SUB_BITS as usize))
    }
}

/// A log-scaled histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS].into_boxed_slice(),
            total: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Folds `other` into `self` (element-wise sum; commutative and
    /// associative, hence worker-count-independent).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The value at quantile `q` in `[0, 1]` — the floor of the bucket
    /// holding the `ceil(q · count)`-th smallest observation. Returns 0
    /// on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(i);
            }
        }
        self.max_ns
    }

    /// The fixed quantile set the service reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: self.max_ns,
        }
    }

    /// Raw bucket counts (for the atomic registry handle's snapshot).
    pub(crate) fn from_parts(counts: Box<[u64]>, total: u64, max_ns: u64) -> LatencyHistogram {
        debug_assert_eq!(counts.len(), BUCKETS);
        LatencyHistogram {
            counts,
            total,
            max_ns,
        }
    }
}

/// The serialized latency block of `BENCH_service.json`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencySummary {
    /// Observations behind the quantiles.
    pub count: u64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
    /// Largest single observation, nanoseconds (exact).
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every bucket's floor maps back to that bucket, and floors
        // strictly increase — no gaps, no overlaps.
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i, "floor of bucket {i}");
            if i > 0 {
                assert!(bucket_floor(i) > bucket_floor(i - 1));
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_error_is_bounded() {
        // The floor underestimates by less than one sub-bucket width:
        // v - floor(bucket(v)) < v / 16 for v >= 16.
        for v in [16u64, 100, 77, 1_000, 123_456, 7_777_777, u64::MAX / 3] {
            let floor = bucket_floor(bucket_of(v));
            assert!(floor <= v);
            assert!(v - floor <= v / SUB as u64, "error too large at {v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.summary().max_ns, 15);
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let values_a = [3u64, 77, 500, 12_345];
        let values_b = [9u64, 77, 1_000_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in values_a {
            a.record(v);
            whole.record(v);
        }
        for v in values_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        assert_eq!(a.summary().max_ns, whole.summary().max_ns);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 % 1_000_000);
        }
        let s = h.summary();
        assert!(s.p50_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = LatencyHistogram::new().summary();
        assert_eq!((s.count, s.p50_ns, s.p999_ns, s.max_ns), (0, 0, 0, 0));
    }
}
