//! Snapshot exporters: the stable JSON document and the
//! Prometheus-style text page.
//!
//! Both render the same registry state. The JSON form is the
//! machine-checked surface — CI flattens its key schema and diffs it
//! against `ci/telemetry_keys.txt`, and the determinism harness
//! byte-compares its masked form across worker counts. The text form
//! is for scrape endpoints and eyeballs: `# TYPE` headers, sanitized
//! `cg_`-prefixed names, histograms rendered as summary quantiles.

use crate::metrics::{Class, MetricView, Registry};

/// The snapshot as a compact JSON string (sorted keys — byte-stable
/// for identical registry state).
pub fn snapshot_json(registry: &Registry) -> String {
    serde_json::to_string(&registry.snapshot()).expect("serialize telemetry snapshot")
}

/// A metric name as a Prometheus metric name: `cg_` prefix, every
/// non-alphanumeric character folded to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("cg_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// The registry as a Prometheus-style text page. Counters and gauges
/// carry a `class` label (`workload` / `runtime`); histograms export as
/// summaries (`quantile` labels plus `_count` and `_max_ns`).
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    registry.for_each(|name, view| {
        let pname = prom_name(name);
        match view {
            MetricView::Counter(v, class) => {
                out.push_str(&format!("# TYPE {pname} counter\n"));
                out.push_str(&format!(
                    "{pname}{{class=\"{}\"}} {v}\n",
                    class_label(class)
                ));
            }
            MetricView::Gauge(v, class) => {
                out.push_str(&format!("# TYPE {pname} gauge\n"));
                out.push_str(&format!(
                    "{pname}{{class=\"{}\"}} {v}\n",
                    class_label(class)
                ));
            }
            MetricView::Histogram(h) => {
                let s = h.summary();
                out.push_str(&format!("# TYPE {pname} summary\n"));
                for (q, v) in [(0.5, s.p50_ns), (0.99, s.p99_ns), (0.999, s.p999_ns)] {
                    out.push_str(&format!("{pname}{{quantile=\"{q}\"}} {v}\n"));
                }
                out.push_str(&format!("{pname}_count {}\n", s.count));
                out.push_str(&format!("{pname}_max_ns {}\n", s.max_ns));
            }
            MetricView::Phantom(_) => {}
        }
    });
    out
}

fn class_label(class: Class) -> &'static str {
    match class {
        Class::Workload => "workload",
        Class::Runtime => "runtime",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_page_renders_all_kinds() {
        let reg = Registry::new();
        reg.counter("store.bytes_written", Class::Workload).add(42);
        reg.gauge("service.sessions_live", Class::Runtime).set(3);
        reg.histogram("service.swap_install").record(1500);
        let page = prometheus_text(&reg);
        assert!(page.contains("# TYPE cg_store_bytes_written counter"));
        assert!(page.contains("cg_store_bytes_written{class=\"workload\"} 42"));
        assert!(page.contains("cg_service_sessions_live{class=\"runtime\"} 3"));
        assert!(page.contains("# TYPE cg_service_swap_install summary"));
        assert!(page.contains("cg_service_swap_install_count 1"));
    }

    #[test]
    fn snapshot_json_is_byte_stable() {
        let reg = Registry::new();
        reg.counter("a.one", Class::Workload).add(1);
        reg.counter("b.two", Class::Runtime).add(2);
        assert_eq!(snapshot_json(&reg), snapshot_json(&reg));
        assert!(snapshot_json(&reg).contains("\"deterministic\":false"));
    }
}
