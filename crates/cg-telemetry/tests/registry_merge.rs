//! Snapshot determinism: per-thread counter shards must merge to the
//! same totals — and the same snapshot bytes — at any worker count.
//!
//! Each worker claims a disjoint residue class of a fixed work range,
//! so the *multiset* of recorded operations is identical regardless of
//! how many workers split it. Striped counters accumulate in
//! thread-assigned shards and merge on snapshot; if that merge were
//! order-sensitive or lossy, the snapshots below would diverge.

use cg_telemetry::{snapshot_json, Class, Registry};

const WORK: u64 = 10_000;

/// Runs the fixed workload split across `workers` threads and returns
/// the registry's snapshot JSON.
fn run(workers: u64) -> String {
    let reg = Registry::new();
    // Register everything up front so registration order (and hence
    // the key set) cannot depend on which worker gets there first.
    reg.counter("work.items", Class::Workload);
    reg.counter("work.bytes", Class::Workload);
    reg.gauge("run.live", Class::Runtime);
    reg.histogram("run.lat_ns");
    std::thread::scope(|scope| {
        for w in 0..workers {
            let reg = &reg;
            scope.spawn(move || {
                let items = reg.counter("work.items", Class::Workload);
                let bytes = reg.counter("work.bytes", Class::Workload);
                let live = reg.gauge("run.live", Class::Runtime);
                let lat = reg.histogram("run.lat_ns");
                live.incr();
                let mut r = w;
                while r < WORK {
                    items.incr();
                    bytes.add(r);
                    lat.record((r % 500 + 1) * 1_000);
                    r += workers;
                }
                live.decr();
            });
        }
    });
    snapshot_json(&reg)
}

/// The counter sum is associative and commutative across shards: the
/// same snapshot bytes fall out at 1, 2, and 8 workers, including the
/// histogram summary (a pure function of the recorded multiset) and
/// the drained gauge.
#[test]
fn snapshots_are_byte_identical_across_worker_counts() {
    let one = run(1);
    assert_eq!(one, run(2), "1-worker vs 2-worker snapshot diverged");
    assert_eq!(one, run(8), "1-worker vs 8-worker snapshot diverged");
    // Spot-check the totals really reflect the whole workload, not
    // some identical-but-wrong subset.
    assert!(
        one.contains(&format!("\"work.items\":{WORK}")),
        "items total wrong in {one}"
    );
    let byte_total: u64 = (0..WORK).sum();
    assert!(
        one.contains(&format!("\"work.bytes\":{byte_total}")),
        "bytes total wrong in {one}"
    );
    assert!(
        one.contains("\"deterministic\":false"),
        "runtime section must carry the marker in {one}"
    );
}

/// Interleaved increments from racing threads never lose an update:
/// the striped shards are each touched by many threads (slots are
/// assigned round-robin, so 16 threads over 16 stripes collide), and
/// the merged value still lands exactly.
#[test]
fn racing_increments_never_drop() {
    let reg = Registry::new();
    let c = reg.counter("race.hits", Class::Workload);
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let c = c.clone();
            scope.spawn(move || {
                for _ in 0..50_000 {
                    c.incr();
                }
            });
        }
    });
    assert_eq!(c.value(), 16 * 50_000);
}
