//! The crawl dataset and per-site cookie-ownership reconstruction.

use cg_instrument::{CookieApi, SetEvent, VisitLog, WriteKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A unique cookie pair, as the paper defines it (§5.2, footnote 2):
/// the tuple of cookie name and the eTLD+1 of the script that set it —
/// `(_ga, google-analytics.com)` is distinct from
/// `(_ga, googletagmanager.com)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairKey {
    /// Cookie name.
    pub name: String,
    /// eTLD+1 of the creating script/server.
    pub owner: String,
}

/// One cookie pair's reconstructed history on one site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairHistory {
    /// The API that created the cookie.
    pub api: Option<CookieApi>,
    /// Every value the pair held (identifier extraction runs over all).
    pub values: Vec<String>,
    /// Full URL of the creating script, when known.
    pub owner_url: Option<String>,
}

/// Per-site ownership reconstruction: the §4.4 step-1/step-2 replay.
#[derive(Debug, Clone, Default)]
pub struct SiteCookies {
    /// The site's eTLD+1.
    pub site: String,
    /// Every pair observed, with history.
    pub pairs: HashMap<PairKey, PairHistory>,
    /// Cross-domain overwrite events: (pair, acting domain, attr flags).
    pub cross_overwrites: Vec<(PairKey, String, Option<cg_instrument::AttrChangeFlags>)>,
    /// Cross-domain delete events: (pair, acting domain, via which API).
    pub cross_deletes: Vec<(PairKey, String, CookieApi)>,
}

/// The effective actor of a set event: inline/unattributed scripts count
/// as first-party (the paper's attribution fallback), so they map to the
/// site domain.
pub fn effective_actor(ev: &SetEvent, site: &str) -> String {
    ev.actor.clone().unwrap_or_else(|| site.to_string())
}

/// Replays a visit log into ownership + manipulation events.
pub fn reconstruct(log: &VisitLog) -> SiteCookies {
    let mut out = SiteCookies {
        site: log.site_domain.clone(),
        ..SiteCookies::default()
    };
    // live owner per cookie name
    let mut live: HashMap<String, PairKey> = HashMap::new();
    for ev in &log.sets {
        if ev.blocked {
            continue; // the operation never reached the jar
        }
        let actor = effective_actor(ev, &log.site_domain);
        match ev.kind {
            WriteKind::Create => {
                let key = PairKey {
                    name: ev.name.clone(),
                    owner: actor.clone(),
                };
                let hist = out.pairs.entry(key.clone()).or_default();
                if hist.api.is_none() {
                    hist.api = Some(ev.api);
                    hist.owner_url = ev.actor_url.clone();
                }
                hist.values.push(ev.value.clone());
                live.insert(ev.name.clone(), key);
            }
            WriteKind::Overwrite => {
                let key = live.get(&ev.name).cloned().unwrap_or_else(|| PairKey {
                    name: ev.name.clone(),
                    owner: actor.clone(),
                });
                if key.owner != actor {
                    out.cross_overwrites
                        .push((key.clone(), actor.clone(), ev.changes));
                }
                if let Some(hist) = out.pairs.get_mut(&key) {
                    hist.values.push(ev.value.clone());
                } else {
                    // Overwrite of a cookie we never saw created (e.g. a
                    // blind write that the jar treated as an overwrite of
                    // an HttpOnly-invisible cookie): register the pair.
                    out.pairs.insert(
                        key.clone(),
                        PairHistory {
                            api: Some(ev.api),
                            values: vec![ev.value.clone()],
                            owner_url: ev.actor_url.clone(),
                        },
                    );
                }
            }
            WriteKind::Delete => {
                if let Some(key) = live.remove(&ev.name) {
                    if key.owner != actor {
                        out.cross_deletes.push((key, actor.clone(), ev.api));
                    }
                } else if out.pairs.keys().any(|k| k.name == ev.name) {
                    // Deleting a cookie whose live entry was already
                    // removed: attribute against the recorded pair.
                    if let Some(key) = out.pairs.keys().find(|k| k.name == ev.name).cloned() {
                        if key.owner != actor {
                            out.cross_deletes.push((key, actor.clone(), ev.api));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The crawl dataset: complete visit logs plus reconstructed ownership.
///
/// # Retained vs streaming analysis
///
/// `Dataset` is the **retained** mode: it keeps every complete
/// [`VisitLog`] (plus its [`SiteCookies`] reconstruction) because the
/// deeper analyses — exfiltration matching, manipulation
/// classification, server-side inference — replay raw events. Memory
/// therefore grows linearly with the number of complete visits, no
/// matter which constructor built it. For crawls too large to retain,
/// use the **streaming** mode instead:
/// [`StreamStats`](crate::stream::StreamStats) folds each visit into
/// pure aggregates and drops it, so peak memory is independent of
/// crawl size — at the cost of only answering aggregate questions.
/// Both modes are pure folds over the same `VisitLog` stream, so on
/// the statistics they share they agree exactly.
pub struct Dataset {
    /// Logs retained by the §4.2 completeness filter.
    pub logs: Vec<VisitLog>,
    /// Per-site reconstruction, parallel to `logs`.
    pub sites: Vec<SiteCookies>,
    /// Number of visits before filtering.
    pub crawled: usize,
}

impl Dataset {
    /// An empty dataset, ready to be grown one log at a time with
    /// [`Dataset::fold_log`].
    pub fn empty() -> Dataset {
        Dataset {
            logs: Vec::new(),
            sites: Vec::new(),
            crawled: 0,
        }
    }

    /// Folds one visit into the dataset: counts it, and — when complete
    /// — reconstructs ownership and retains it for analysis. This is
    /// the fold unit every constructor builds on. Folding from a stream
    /// avoids buffering the *raw* crawl (incomplete visits are dropped
    /// on the fly and no second `Vec<VisitLog>` copy exists), but make
    /// no mistake: the dataset **retains every complete log** — several
    /// analyses replay them — so memory grows linearly with the number
    /// of complete visits. When only aggregate statistics are needed,
    /// fold into [`StreamStats`](crate::stream::StreamStats) instead,
    /// which clones nothing and retains nothing per-visit.
    pub fn fold_log(&mut self, log: VisitLog) {
        self.crawled += 1;
        if log.complete {
            self.sites.push(reconstruct(&log));
            self.logs.push(log);
        }
    }

    /// Builds a dataset from raw visit logs, dropping incomplete visits.
    pub fn from_logs(all: Vec<VisitLog>) -> Dataset {
        let mut ds = Dataset::empty();
        for log in all {
            ds.fold_log(log);
        }
        ds
    }

    /// Builds a dataset by folding a fallible stream of visit logs —
    /// e.g. a `cg_crawlstore::CrawlReader` replaying a store in rank
    /// order. Equivalent to [`Dataset::from_logs`] over the collected
    /// stream, without ever materializing the crawl.
    ///
    /// ```no_run
    /// # use cg_analysis::Dataset;
    /// # fn open_reader() -> Vec<Result<cg_instrument::VisitLog, std::io::Error>> { vec![] }
    /// let ds = Dataset::from_reader(open_reader()).unwrap();
    /// println!("{} analyzable sites of {}", ds.site_count(), ds.crawled);
    /// ```
    pub fn from_reader<E>(
        logs: impl IntoIterator<Item = Result<VisitLog, E>>,
    ) -> Result<Dataset, E> {
        let mut ds = Dataset::empty();
        for log in logs {
            ds.fold_log(log?);
        }
        Ok(ds)
    }

    /// Merges two datasets built from **disjoint rank ranges** (e.g.
    /// per-segment partials from `cg_crawlstore::par_fold`) into one,
    /// interleaving their logs back into global rank order. Associative,
    /// with [`Dataset::empty`] as identity, so partials may combine in
    /// any grouping; equal ranks (which disjoint partials never produce)
    /// keep `self`'s copy first for stability.
    pub fn merge(self, other: Dataset) -> Dataset {
        let crawled = self.crawled + other.crawled;
        let mut logs = Vec::with_capacity(self.logs.len() + other.logs.len());
        let mut sites = Vec::with_capacity(self.sites.len() + other.sites.len());
        let mut a = self.logs.into_iter().zip(self.sites).peekable();
        let mut b = other.logs.into_iter().zip(other.sites).peekable();
        loop {
            let take_a = match (a.peek(), b.peek()) {
                (Some((la, _)), Some((lb, _))) => la.rank <= lb.rank,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (log, site) = if take_a {
                a.next().expect("peeked")
            } else {
                b.next().expect("peeked")
            };
            logs.push(log);
            sites.push(site);
        }
        Dataset {
            logs,
            sites,
            crawled,
        }
    }

    /// Builds a (retained) dataset from the crawl store at `dir`, using
    /// up to `threads` parallel per-segment folds merged back into rank
    /// order. Byte-identical to [`Dataset::from_reader`] over a
    /// `CrawlReader` of the same store, at any thread count — segments
    /// hold disjoint rank sets and partials merge in fixed order.
    pub fn from_store(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> Result<Dataset, cg_crawlstore::StoreError> {
        Dataset::from_store_with(dir, threads, cg_crawlstore::ReadBackend::default())
    }

    /// [`Dataset::from_store`] with an explicit
    /// [`ReadBackend`](cg_crawlstore::ReadBackend): partials are folded
    /// per *chunk* (frame-index boundaries inside binary segments) and
    /// rank-interleaved back by [`Dataset::merge`] — chunks hold
    /// disjoint rank ranges, so the merged dataset is byte-identical at
    /// any thread count and through any backend.
    pub fn from_store_with(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
        backend: cg_crawlstore::ReadBackend,
    ) -> Result<Dataset, cg_crawlstore::StoreError> {
        let partials = cg_crawlstore::par_fold_with(dir, threads, backend, Dataset::from_reader)?;
        Ok(partials.into_iter().fold(Dataset::empty(), Dataset::merge))
    }

    /// Number of analyzable sites.
    pub fn site_count(&self) -> usize {
        self.logs.len()
    }

    /// All unique cookie pairs created through `api` across the dataset.
    pub fn unique_pairs(&self, api: CookieApi) -> std::collections::HashSet<PairKey> {
        let mut set = std::collections::HashSet::new();
        for site in &self.sites {
            for (key, hist) in &site.pairs {
                if hist.api == Some(api) {
                    set.insert(key.clone());
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{Recorder, VisitLog};

    fn set(r: &mut Recorder, name: &str, value: &str, actor: Option<&str>, kind: WriteKind) {
        r.record_set(
            name,
            value,
            actor,
            None,
            CookieApi::DocumentCookie,
            kind,
            None,
            false,
            0,
        );
    }

    fn log_with(events: impl FnOnce(&mut Recorder)) -> VisitLog {
        let mut r = Recorder::new("site.com", 1);
        events(&mut r);
        r.finish()
    }

    #[test]
    fn ownership_follows_first_creator() {
        let log = log_with(|r| {
            set(r, "_ga", "GA1.1.1.2", Some("gtm.com"), WriteKind::Create);
            set(
                r,
                "_ga",
                "GA1.1.9.9",
                Some("other.com"),
                WriteKind::Overwrite,
            );
        });
        let sc = reconstruct(&log);
        let key = PairKey {
            name: "_ga".into(),
            owner: "gtm.com".into(),
        };
        assert!(sc.pairs.contains_key(&key));
        assert_eq!(sc.cross_overwrites.len(), 1);
        assert_eq!(sc.cross_overwrites[0].1, "other.com");
        // Values accumulate under the original pair.
        assert_eq!(sc.pairs[&key].values.len(), 2);
    }

    #[test]
    fn same_domain_overwrite_not_cross() {
        let log = log_with(|r| {
            set(r, "c", "1", Some("a.com"), WriteKind::Create);
            set(r, "c", "2", Some("a.com"), WriteKind::Overwrite);
        });
        assert!(reconstruct(&log).cross_overwrites.is_empty());
    }

    #[test]
    fn inline_actor_maps_to_site() {
        let log = log_with(|r| {
            set(r, "c", "1", None, WriteKind::Create);
            set(r, "c", "", Some("cm.com"), WriteKind::Delete);
        });
        let sc = reconstruct(&log);
        assert!(sc.pairs.contains_key(&PairKey {
            name: "c".into(),
            owner: "site.com".into()
        }));
        assert_eq!(sc.cross_deletes.len(), 1);
    }

    #[test]
    fn blocked_events_ignored() {
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "x",
            "1",
            Some("a.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            true,
            0,
        );
        let sc = reconstruct(&r.finish());
        assert!(sc.pairs.is_empty());
    }

    #[test]
    fn recreate_after_delete_makes_new_pair() {
        let log = log_with(|r| {
            set(r, "n", "1", Some("a.com"), WriteKind::Create);
            set(r, "n", "", Some("a.com"), WriteKind::Delete);
            set(r, "n", "2", Some("b.com"), WriteKind::Create);
        });
        let sc = reconstruct(&log);
        assert!(sc.pairs.contains_key(&PairKey {
            name: "n".into(),
            owner: "a.com".into()
        }));
        assert!(sc.pairs.contains_key(&PairKey {
            name: "n".into(),
            owner: "b.com".into()
        }));
        assert!(sc.cross_deletes.is_empty());
    }

    #[test]
    fn dataset_filters_incomplete() {
        let mut incomplete = Recorder::new("bad.com", 2);
        incomplete.mark_incomplete();
        let ds = Dataset::from_logs(vec![log_with(|_| {}), incomplete.finish()]);
        assert_eq!(ds.crawled, 2);
        assert_eq!(ds.site_count(), 1);
    }

    #[test]
    fn from_reader_matches_from_logs() {
        let mut incomplete = Recorder::new("bad.com", 2);
        incomplete.mark_incomplete();
        let logs = vec![
            log_with(|r| set(r, "a", "1", Some("x.com"), WriteKind::Create)),
            incomplete.finish(),
        ];
        let folded =
            Dataset::from_reader(logs.clone().into_iter().map(Ok::<_, std::io::Error>)).unwrap();
        let batch = Dataset::from_logs(logs);
        assert_eq!(folded.crawled, batch.crawled);
        assert_eq!(folded.site_count(), batch.site_count());
        assert_eq!(
            serde_json::to_string(&folded.logs).unwrap(),
            serde_json::to_string(&batch.logs).unwrap()
        );
    }

    #[test]
    fn merge_interleaves_disjoint_rank_partials() {
        let at = |rank: usize| {
            let mut r = Recorder::new(&format!("site{rank}.com"), rank);
            set(&mut r, "c", "1", Some("x.com"), WriteKind::Create);
            r.finish()
        };
        let a = Dataset::from_logs(vec![at(1), at(4), at(5)]);
        let b = Dataset::from_logs(vec![at(2), at(3), at(6)]);
        let merged = a.merge(b);
        let ranks: Vec<usize> = merged.logs.iter().map(|l| l.rank).collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(merged.crawled, 6);
        // sites stay parallel to logs
        assert_eq!(merged.sites[3].site, "site4.com");
        // identity element
        let again = merged.merge(Dataset::empty());
        assert_eq!(again.site_count(), 6);
    }

    #[test]
    fn from_reader_propagates_stream_errors() {
        let items: Vec<Result<VisitLog, String>> =
            vec![Ok(log_with(|_| {})), Err("torn".to_string())];
        let Err(e) = Dataset::from_reader(items) else {
            panic!("stream error must propagate");
        };
        assert_eq!(e, "torn");
    }
}
