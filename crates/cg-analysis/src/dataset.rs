//! The crawl dataset and per-site cookie-ownership reconstruction.

use cg_instrument::{CookieApi, SetEvent, VisitLog, WriteKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A unique cookie pair, as the paper defines it (§5.2, footnote 2):
/// the tuple of cookie name and the eTLD+1 of the script that set it —
/// `(_ga, google-analytics.com)` is distinct from
/// `(_ga, googletagmanager.com)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairKey {
    /// Cookie name.
    pub name: String,
    /// eTLD+1 of the creating script/server.
    pub owner: String,
}

/// One cookie pair's reconstructed history on one site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairHistory {
    /// The API that created the cookie.
    pub api: Option<CookieApi>,
    /// Every value the pair held (identifier extraction runs over all).
    pub values: Vec<String>,
    /// Full URL of the creating script, when known.
    pub owner_url: Option<String>,
}

/// Per-site ownership reconstruction: the §4.4 step-1/step-2 replay.
#[derive(Debug, Clone, Default)]
pub struct SiteCookies {
    /// The site's eTLD+1.
    pub site: String,
    /// Every pair observed, with history.
    pub pairs: HashMap<PairKey, PairHistory>,
    /// Cross-domain overwrite events: (pair, acting domain, attr flags).
    pub cross_overwrites: Vec<(PairKey, String, Option<cg_instrument::AttrChangeFlags>)>,
    /// Cross-domain delete events: (pair, acting domain, via which API).
    pub cross_deletes: Vec<(PairKey, String, CookieApi)>,
}

/// The effective actor of a set event: inline/unattributed scripts count
/// as first-party (the paper's attribution fallback), so they map to the
/// site domain.
pub fn effective_actor(ev: &SetEvent, site: &str) -> String {
    ev.actor.clone().unwrap_or_else(|| site.to_string())
}

/// Replays a visit log into ownership + manipulation events.
pub fn reconstruct(log: &VisitLog) -> SiteCookies {
    let mut out = SiteCookies {
        site: log.site_domain.clone(),
        ..SiteCookies::default()
    };
    // live owner per cookie name
    let mut live: HashMap<String, PairKey> = HashMap::new();
    for ev in &log.sets {
        if ev.blocked {
            continue; // the operation never reached the jar
        }
        let actor = effective_actor(ev, &log.site_domain);
        match ev.kind {
            WriteKind::Create => {
                let key = PairKey {
                    name: ev.name.clone(),
                    owner: actor.clone(),
                };
                let hist = out.pairs.entry(key.clone()).or_default();
                if hist.api.is_none() {
                    hist.api = Some(ev.api);
                    hist.owner_url = ev.actor_url.clone();
                }
                hist.values.push(ev.value.clone());
                live.insert(ev.name.clone(), key);
            }
            WriteKind::Overwrite => {
                let key = live.get(&ev.name).cloned().unwrap_or_else(|| PairKey {
                    name: ev.name.clone(),
                    owner: actor.clone(),
                });
                if key.owner != actor {
                    out.cross_overwrites
                        .push((key.clone(), actor.clone(), ev.changes));
                }
                if let Some(hist) = out.pairs.get_mut(&key) {
                    hist.values.push(ev.value.clone());
                } else {
                    // Overwrite of a cookie we never saw created (e.g. a
                    // blind write that the jar treated as an overwrite of
                    // an HttpOnly-invisible cookie): register the pair.
                    out.pairs.insert(
                        key.clone(),
                        PairHistory {
                            api: Some(ev.api),
                            values: vec![ev.value.clone()],
                            owner_url: ev.actor_url.clone(),
                        },
                    );
                }
            }
            WriteKind::Delete => {
                if let Some(key) = live.remove(&ev.name) {
                    if key.owner != actor {
                        out.cross_deletes.push((key, actor.clone(), ev.api));
                    }
                } else if out.pairs.keys().any(|k| k.name == ev.name) {
                    // Deleting a cookie whose live entry was already
                    // removed: attribute against the recorded pair.
                    if let Some(key) = out.pairs.keys().find(|k| k.name == ev.name).cloned() {
                        if key.owner != actor {
                            out.cross_deletes.push((key, actor.clone(), ev.api));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The crawl dataset: complete visit logs plus reconstructed ownership.
pub struct Dataset {
    /// Logs retained by the §4.2 completeness filter.
    pub logs: Vec<VisitLog>,
    /// Per-site reconstruction, parallel to `logs`.
    pub sites: Vec<SiteCookies>,
    /// Number of visits before filtering.
    pub crawled: usize,
}

impl Dataset {
    /// Builds a dataset from raw visit logs, dropping incomplete visits.
    pub fn from_logs(all: Vec<VisitLog>) -> Dataset {
        let crawled = all.len();
        let logs: Vec<VisitLog> = all.into_iter().filter(|l| l.complete).collect();
        let sites = logs.iter().map(reconstruct).collect();
        Dataset {
            logs,
            sites,
            crawled,
        }
    }

    /// Number of analyzable sites.
    pub fn site_count(&self) -> usize {
        self.logs.len()
    }

    /// All unique cookie pairs created through `api` across the dataset.
    pub fn unique_pairs(&self, api: CookieApi) -> std::collections::HashSet<PairKey> {
        let mut set = std::collections::HashSet::new();
        for site in &self.sites {
            for (key, hist) in &site.pairs {
                if hist.api == Some(api) {
                    set.insert(key.clone());
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{Recorder, VisitLog};

    fn set(r: &mut Recorder, name: &str, value: &str, actor: Option<&str>, kind: WriteKind) {
        r.record_set(
            name,
            value,
            actor,
            None,
            CookieApi::DocumentCookie,
            kind,
            None,
            false,
            0,
        );
    }

    fn log_with(events: impl FnOnce(&mut Recorder)) -> VisitLog {
        let mut r = Recorder::new("site.com", 1);
        events(&mut r);
        r.finish()
    }

    #[test]
    fn ownership_follows_first_creator() {
        let log = log_with(|r| {
            set(r, "_ga", "GA1.1.1.2", Some("gtm.com"), WriteKind::Create);
            set(
                r,
                "_ga",
                "GA1.1.9.9",
                Some("other.com"),
                WriteKind::Overwrite,
            );
        });
        let sc = reconstruct(&log);
        let key = PairKey {
            name: "_ga".into(),
            owner: "gtm.com".into(),
        };
        assert!(sc.pairs.contains_key(&key));
        assert_eq!(sc.cross_overwrites.len(), 1);
        assert_eq!(sc.cross_overwrites[0].1, "other.com");
        // Values accumulate under the original pair.
        assert_eq!(sc.pairs[&key].values.len(), 2);
    }

    #[test]
    fn same_domain_overwrite_not_cross() {
        let log = log_with(|r| {
            set(r, "c", "1", Some("a.com"), WriteKind::Create);
            set(r, "c", "2", Some("a.com"), WriteKind::Overwrite);
        });
        assert!(reconstruct(&log).cross_overwrites.is_empty());
    }

    #[test]
    fn inline_actor_maps_to_site() {
        let log = log_with(|r| {
            set(r, "c", "1", None, WriteKind::Create);
            set(r, "c", "", Some("cm.com"), WriteKind::Delete);
        });
        let sc = reconstruct(&log);
        assert!(sc.pairs.contains_key(&PairKey {
            name: "c".into(),
            owner: "site.com".into()
        }));
        assert_eq!(sc.cross_deletes.len(), 1);
    }

    #[test]
    fn blocked_events_ignored() {
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "x",
            "1",
            Some("a.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            true,
            0,
        );
        let sc = reconstruct(&r.finish());
        assert!(sc.pairs.is_empty());
    }

    #[test]
    fn recreate_after_delete_makes_new_pair() {
        let log = log_with(|r| {
            set(r, "n", "1", Some("a.com"), WriteKind::Create);
            set(r, "n", "", Some("a.com"), WriteKind::Delete);
            set(r, "n", "2", Some("b.com"), WriteKind::Create);
        });
        let sc = reconstruct(&log);
        assert!(sc.pairs.contains_key(&PairKey {
            name: "n".into(),
            owner: "a.com".into()
        }));
        assert!(sc.pairs.contains_key(&PairKey {
            name: "n".into(),
            owner: "b.com".into()
        }));
        assert!(sc.cross_deletes.is_empty());
    }

    #[test]
    fn dataset_filters_incomplete() {
        let mut incomplete = Recorder::new("bad.com", 2);
        incomplete.mark_incomplete();
        let ds = Dataset::from_logs(vec![log_with(|_| {}), incomplete.finish()]);
        assert_eq!(ds.crawled, 2);
        assert_eq!(ds.site_count(), 1);
    }
}
