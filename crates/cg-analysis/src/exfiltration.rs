//! Exfiltration detection (§4.4) and its aggregations (Table 2, Fig. 2).
//!
//! Pipeline, exactly as the paper specifies:
//!
//! 1. split every cookie value on non-alphanumeric delimiters and keep
//!    candidate identifiers of ≥8 characters;
//! 2. compute the Base64, MD5, and SHA-1 encodings of each candidate;
//! 3. scan the outbound requests' URLs for any encoded form;
//! 4. confirm exfiltration when a form appears in a request to a
//!    domain other than the visited site, and label it *cross-domain*
//!    when the initiating script's eTLD+1 differs from the cookie
//!    pair's owner.

use crate::dataset::{Dataset, PairKey};
use cg_entity::EntityMap;
use cg_hash::EncodedForms;
use cg_instrument::CookieApi;
use cg_script::value::split_segments;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One confirmed exfiltration event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExfilEvent {
    /// The site on which the event occurred.
    pub site: String,
    /// The exfiltrated cookie pair.
    pub pair: PairKey,
    /// eTLD+1 of the script that sent the request.
    pub exfiltrator: String,
    /// eTLD+1 of the receiving endpoint.
    pub destination: String,
    /// True when the exfiltrator is not the pair's owner.
    pub cross_domain: bool,
}

/// Per-pair aggregate for Table 2.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairExfilAggregate {
    /// Cross-domain exfiltrator entities (excluding the owner's own).
    pub exfiltrator_entities: HashSet<String>,
    /// Destination entities.
    pub destination_entities: HashSet<String>,
    /// Sites on which the pair was cross-domain exfiltrated.
    pub sites: HashSet<String>,
    /// Exfiltrator entity → how many sites it exfiltrated this pair on.
    pub exfiltrator_counts: HashMap<String, usize>,
    /// Destination entity → receive count.
    pub destination_counts: HashMap<String, usize>,
}

/// The complete exfiltration analysis result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExfilAnalysis {
    /// All events (cross-domain and authorized).
    pub events: Vec<ExfilEvent>,
    /// Sites with ≥1 cross-domain exfiltration of a `document.cookie`
    /// pair.
    pub sites_with_cross_exfil_doc: HashSet<String>,
    /// Sites with ≥1 cross-domain exfiltration of a CookieStore pair.
    pub sites_with_cross_exfil_store: HashSet<String>,
    /// Pairs (document.cookie) cross-domain exfiltrated.
    pub cross_exfiltrated_pairs_doc: HashSet<PairKey>,
    /// Pairs (CookieStore) cross-domain exfiltrated.
    pub cross_exfiltrated_pairs_store: HashSet<PairKey>,
    /// Table 2 aggregates, keyed by pair.
    pub per_pair: HashMap<PairKey, PairExfilAggregate>,
    /// Fig. 2: exfiltrator script domain → unique pairs it exfiltrated
    /// cross-domain.
    pub per_exfiltrator_domain: HashMap<String, HashSet<PairKey>>,
}

/// Runs the detection pipeline over a dataset.
pub fn detect_exfiltration(ds: &Dataset, entities: &EntityMap) -> ExfilAnalysis {
    let mut out = ExfilAnalysis::default();

    for (log, site) in ds.logs.iter().zip(&ds.sites) {
        // Candidate forms for this site's pairs.
        let mut forms: Vec<(&PairKey, CookieApi, EncodedForms)> = Vec::new();
        for (key, hist) in &site.pairs {
            let api = match hist.api {
                Some(a) => a,
                None => continue,
            };
            let mut seen: HashSet<&str> = HashSet::new();
            for value in &hist.values {
                for seg in split_segments(value) {
                    if seen.insert(seg) {
                        forms.push((key, api, EncodedForms::of(seg)));
                    }
                }
            }
        }
        if forms.is_empty() {
            continue;
        }

        for req in &log.requests {
            // Only third-party destinations can receive an exfiltration.
            let Some(dest) = &req.dest_domain else {
                continue;
            };
            if dest.eq_ignore_ascii_case(&log.site_domain) {
                continue;
            }
            // The initiator must be attributable for per-script analysis.
            let Some(initiator) = &req.initiator else {
                continue;
            };
            for (key, api, form) in &forms {
                if !form.appears_in(&req.url) {
                    continue;
                }
                let cross = !initiator.eq_ignore_ascii_case(&key.owner);
                out.events.push(ExfilEvent {
                    site: log.site_domain.clone(),
                    pair: (*key).clone(),
                    exfiltrator: initiator.clone(),
                    destination: dest.clone(),
                    cross_domain: cross,
                });
                if cross {
                    match api {
                        CookieApi::CookieStore => {
                            out.sites_with_cross_exfil_store
                                .insert(log.site_domain.clone());
                            out.cross_exfiltrated_pairs_store.insert((*key).clone());
                        }
                        _ => {
                            out.sites_with_cross_exfil_doc
                                .insert(log.site_domain.clone());
                            out.cross_exfiltrated_pairs_doc.insert((*key).clone());
                        }
                    }
                    let agg = out.per_pair.entry((*key).clone()).or_default();
                    let ex_entity = entities.entity_of(initiator);
                    let dest_entity = entities.entity_of(dest);
                    // The paper excludes the owner's own entity from the
                    // exfiltrator count (Table 2 "excluding Google").
                    if ex_entity != entities.entity_of(&key.owner) {
                        agg.exfiltrator_entities.insert(ex_entity.clone());
                        *agg.exfiltrator_counts.entry(ex_entity).or_insert(0) += 1;
                    }
                    agg.destination_entities.insert(dest_entity.clone());
                    *agg.destination_counts.entry(dest_entity).or_insert(0) += 1;
                    agg.sites.insert(log.site_domain.clone());
                    out.per_exfiltrator_domain
                        .entry(initiator.clone())
                        .or_default()
                        .insert((*key).clone());
                }
            }
        }
    }
    out
}

impl ExfilAnalysis {
    /// Table 2: the top `n` pairs by destination-entity count, with the
    /// top-3 exfiltrator and destination entities each.
    pub fn table2(&self, n: usize) -> Vec<Table2Row> {
        let mut rows: Vec<Table2Row> = self
            .per_pair
            .iter()
            .map(|(key, agg)| Table2Row {
                cookie: key.name.clone(),
                owner: key.owner.clone(),
                exfiltrator_entities: agg.exfiltrator_entities.len(),
                destination_entities: agg.destination_entities.len(),
                top_exfiltrators: top_k(&agg.exfiltrator_counts, 3),
                top_destinations: top_k(&agg.destination_counts, 3),
                consent_signal: is_consent_signal(&key.name),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.destination_entities
                .cmp(&a.destination_entities)
                .then(b.exfiltrator_entities.cmp(&a.exfiltrator_entities))
                .then(a.cookie.cmp(&b.cookie))
                // Owner completes the pair key: without it, equal-count
                // same-name pairs order by HashMap iteration and the
                // report is not byte-reproducible across runs.
                .then(a.owner.cmp(&b.owner))
        });
        rows.truncate(n);
        rows
    }

    /// Fig. 2: the top `n` exfiltrator script domains by unique pairs
    /// exfiltrated, with the share of all `total_pairs`.
    pub fn fig2(&self, n: usize, total_pairs: usize) -> Vec<(String, usize, f64)> {
        let mut rows: Vec<(String, usize)> = self
            .per_exfiltrator_domain
            .iter()
            .map(|(d, pairs)| (d.clone(), pairs.len()))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows.into_iter()
            .map(|(d, c)| {
                let share = if total_pairs == 0 {
                    0.0
                } else {
                    100.0 * c as f64 / total_pairs as f64
                };
                (d, c, share)
            })
            .collect()
    }
}

/// One Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Cookie name.
    pub cookie: String,
    /// Creating domain.
    pub owner: String,
    /// Distinct cross-domain exfiltrator entities.
    pub exfiltrator_entities: usize,
    /// Distinct destination entities.
    pub destination_entities: usize,
    /// Most frequent exfiltrator entities.
    pub top_exfiltrators: Vec<String>,
    /// Most frequent destination entities.
    pub top_destinations: Vec<String>,
    /// True for IAB consent strings (`us_privacy`): *intended* to be
    /// read downstream, flagged as a consent signal rather than a
    /// tracking identifier (the paper's §5.4 exception).
    pub consent_signal: bool,
}

/// Whether a cookie name carries the IAB U.S. Privacy (CCPA) consent
/// string — §5.4 flags these as consent signals, not tracking
/// identifiers, since downstream ad tech is *supposed* to read them.
pub fn is_consent_signal(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "us_privacy" || lower == "usprivacy"
}

fn top_k(counts: &HashMap<String, usize>, k: usize) -> Vec<String> {
    let mut v: Vec<(&String, &usize)> = counts.iter().collect();
    v.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    v.into_iter()
        .take(k)
        .map(|(name, _)| name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{Recorder, WriteKind};

    fn dataset_one_site() -> Dataset {
        let mut r = Recorder::new("shop.example", 1);
        // gtm.com sets _ga.
        r.record_set(
            "_ga",
            "GA1.1.444332364.1746838827",
            Some("gtm.com"),
            Some("https://gtm.com/gtm.js"),
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        // a short cookie that can never match
        r.record_set(
            "tiny",
            "v1",
            Some("gtm.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            1,
        );
        // licdn.com exfiltrates the _ga segment, Base64-encoded.
        let b64 = cg_hash::b64encode_no_pad(b"444332364");
        let script = cg_url::Url::parse("https://snap.licdn.com/insight.min.js").unwrap();
        r.record_request(
            &format!("https://px.ads.linkedin.com/attribution_trigger?pid=1&ga={b64}"),
            cg_http::RequestKind::Image,
            Some(&script),
            "shop.example",
            None,
            10,
        );
        // gtm.com also sends its own cookie home (authorized, not cross).
        let gtm_script = cg_url::Url::parse("https://gtm.com/gtm.js").unwrap();
        r.record_request(
            "https://collect.gtm.com/g?id=444332364",
            cg_http::RequestKind::Beacon,
            Some(&gtm_script),
            "shop.example",
            None,
            11,
        );
        Dataset::from_logs(vec![r.finish()])
    }

    #[test]
    fn detects_base64_segment_exfiltration() {
        let ds = dataset_one_site();
        let analysis = detect_exfiltration(&ds, &cg_entity::builtin_entity_map());
        let cross: Vec<&ExfilEvent> = analysis.events.iter().filter(|e| e.cross_domain).collect();
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].exfiltrator, "licdn.com");
        assert_eq!(cross[0].destination, "linkedin.com");
        assert_eq!(cross[0].pair.owner, "gtm.com");
        // The authorized gtm→gtm.com event is recorded but not cross.
        assert!(analysis
            .events
            .iter()
            .any(|e| !e.cross_domain && e.exfiltrator == "gtm.com"));
        assert_eq!(analysis.sites_with_cross_exfil_doc.len(), 1);
    }

    #[test]
    fn table2_aggregates_entities() {
        let ds = dataset_one_site();
        let analysis = detect_exfiltration(&ds, &cg_entity::builtin_entity_map());
        let rows = analysis.table2(5);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cookie, "_ga");
        // licdn.com belongs to Microsoft in the entity map.
        assert_eq!(rows[0].top_exfiltrators, vec!["Microsoft".to_string()]);
        assert_eq!(rows[0].exfiltrator_entities, 1);
        assert_eq!(rows[0].destination_entities, 1);
    }

    #[test]
    fn us_privacy_flagged_as_consent_signal() {
        // §5.4: the IAB CCPA string is *meant* to be read downstream.
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "us_privacy",
            "1YNN8437206153",
            Some("ketchjs.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        let script = cg_url::Url::parse("https://cdn.yieldpartner.io/bid.js").unwrap();
        r.record_request(
            "https://sync.yieldpartner.io/px?usp=1YNN8437206153",
            cg_http::RequestKind::Image,
            Some(&script),
            "site.com",
            None,
            3,
        );
        let ds = Dataset::from_logs(vec![r.finish()]);
        let analysis = detect_exfiltration(&ds, &cg_entity::builtin_entity_map());
        let rows = analysis.table2(5);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].consent_signal, "us_privacy must be flagged");
        assert!(is_consent_signal("usprivacy"));
        assert!(!is_consent_signal("_ga"));
    }

    #[test]
    fn fig2_ranks_exfiltrators() {
        let ds = dataset_one_site();
        let analysis = detect_exfiltration(&ds, &cg_entity::builtin_entity_map());
        let rows = analysis.fig2(10, 2);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "licdn.com");
        assert_eq!(rows[0].1, 1);
        assert!((rows[0].2 - 50.0).abs() < 1e-9);
    }

    #[test]
    fn full_value_base64_is_missed() {
        // Encoding the FULL value (with a prefix whose length is not a
        // multiple of 3) destroys Base64 segment alignment: the detector
        // (faithfully) cannot match it. Note that when the prefix length
        // IS a multiple of 3 — e.g. `GA1.1.` — the segment's Base64 runs
        // appear verbatim inside the full-value encoding and detection
        // still succeeds; this test pins the genuinely-evasive case.
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "_ga",
            "uid_444332364_tail",
            Some("gtm.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        let b64_full = cg_hash::b64encode_no_pad(b"uid_444332364_tail");
        let script = cg_url::Url::parse("https://sneaky.io/t.js").unwrap();
        r.record_request(
            &format!("https://sink.sneaky.io/c?x={b64_full}"),
            cg_http::RequestKind::Xhr,
            Some(&script),
            "site.com",
            None,
            5,
        );
        let ds = Dataset::from_logs(vec![r.finish()]);
        let analysis = detect_exfiltration(&ds, &cg_entity::builtin_entity_map());
        assert!(
            analysis.events.is_empty(),
            "full-value encoding must evade segment matching"
        );
    }

    #[test]
    fn own_site_requests_not_exfiltration() {
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "c",
            "abcdefgh12345678",
            Some("t.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        let script = cg_url::Url::parse("https://t.com/t.js").unwrap();
        r.record_request(
            "https://api.site.com/save?v=abcdefgh12345678",
            cg_http::RequestKind::Xhr,
            Some(&script),
            "site.com",
            None,
            1,
        );
        let ds = Dataset::from_logs(vec![r.finish()]);
        let analysis = detect_exfiltration(&ds, &cg_entity::builtin_entity_map());
        assert!(analysis.events.is_empty());
    }
}
