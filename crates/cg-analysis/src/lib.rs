//! The analysis framework (§4.4): consumes instrumentation logs and
//! produces every number the paper reports in §5, plus the inputs of the
//! §7 evaluation figures.
//!
//! The framework deliberately sees only [`cg_instrument::VisitLog`]s —
//! the same events the paper's extension records — so detection of
//! cross-domain access, manipulation, and exfiltration is an *inference*
//! over observable events, with the same blind spots (e.g. full-value
//! Base64 encodings defeat segment-level identifier matching).
//!
//! Two consumption modes exist: the retained [`Dataset`] (keeps every
//! complete log for event-replay analyses) and the bounded-memory
//! [`StreamStats`] (aggregates only; peak memory independent of crawl
//! size). Both can fold a crawl store's segments in parallel —
//! `Dataset::from_store` / `StreamStats::from_store` — with
//! byte-identical results at any thread count.
//!
//! **Layer:** analysis (consumes `cg-instrument` logs and replays
//! `cg-crawlstore` streams; never touches the simulator).
//! **Invariant:** every statistic is a pure fold over `VisitLog`s, so
//! in-memory, streamed, and parallel per-segment analyses agree.
//! **Entry points:** `Dataset`, `StreamStats`, `detect_exfiltration`,
//! `detect_manipulation`, `cross_domain_summary`, `build_filter_engine`.

pub mod dataset;
pub mod dom_pilot;
pub mod exfiltration;
pub mod intent;
pub mod manipulation;
pub mod prevalence;
pub mod server_side;
pub mod sketch;
pub mod stats;
pub mod stream;
pub mod table1;

pub use dataset::{Dataset, PairKey, SiteCookies};
pub use dom_pilot::dom_pilot_stats;
pub use exfiltration::{detect_exfiltration, ExfilAnalysis};
pub use intent::{classify_intents, IntentReport, ManipulationIntent};
pub use manipulation::{detect_manipulation, ManipulationAnalysis};
pub use prevalence::{api_usage, build_filter_engine, inclusion_stats, prevalence_stats};
pub use server_side::{detect_server_side, ForwardMap, ServerSideReport};
pub use sketch::DistinctSketch;
pub use stream::{StreamStats, StreamSummary};
pub use table1::{cross_domain_summary, CrossDomainSummary};
