//! Bounded-memory streaming statistics: the aggregate-only alternative
//! to [`Dataset`](crate::Dataset) for crawls too large to retain.
//!
//! [`Dataset`](crate::Dataset) keeps every complete [`VisitLog`]
//! because several
//! analyses (exfiltration matching, manipulation classification) replay
//! raw events — that is its *retained* mode, and its memory grows
//! linearly with the crawl. [`StreamStats`] is the *streaming* mode:
//! each visit is folded into pure aggregates and dropped, so peak
//! memory is independent of visit count. The only non-scalar state is
//! the unique cookie-pair counters, and those are fixed-memory
//! [`DistinctSketch`]es rather than exact sets: first-party pairs
//! carry the site's own eTLD+1 as their owner, so the distinct-pair
//! population grows with the crawl (a 1M-visit crawl has ~3M distinct
//! `document.cookie` pairs) and exact sets would quietly reintroduce
//! linear memory. The sketches are exact for every test- and CI-sized
//! crawl and ~1%-accurate at campaign scale.
//!
//! `StreamStats` is a commutative monoid ([`StreamStats::merge`] is
//! associative, [`StreamStats::default`] is the identity), which is
//! what makes parallel per-segment folds sound: fold each store
//! segment on its own worker, then merge the partials in fixed segment
//! order — byte-identical serialized output at any thread count
//! (`cg_crawlstore::par_fold` supplies the orchestration).

use crate::dataset::reconstruct;
use crate::sketch::DistinctSketch;
use cg_crawlstore::{ReadBackend, StoreError};
use cg_instrument::{CookieApi, VisitLog, WriteKind};
use cg_telemetry::{global, Class, Counter};
use serde::Serialize;
use std::path::Path;
use std::sync::OnceLock;

/// The analysis layer's registered metric handles (see `cg-telemetry`):
/// visits folded is a pure function of the folded store, so it is
/// `Workload`-class.
struct AnalysisMetrics {
    logs_folded: Counter,
}

fn analysis_metrics() -> &'static AnalysisMetrics {
    static METRICS: OnceLock<AnalysisMetrics> = OnceLock::new();
    METRICS.get_or_init(|| AnalysisMetrics {
        logs_folded: global().counter("analysis.logs_folded", Class::Workload),
    })
}

/// Aggregate crawl statistics, computed one visit at a time without
/// retaining any [`VisitLog`]. All counters are event/site totals over
/// *complete* visits (the §4.2 completeness filter), except `crawled`
/// which counts every visit seen.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct StreamStats {
    /// Visits folded, complete or not.
    pub crawled: u64,
    /// Visits retained by the completeness filter.
    pub complete: u64,
    /// Unblocked cookie creations.
    pub creates: u64,
    /// Unblocked overwrites.
    pub overwrites: u64,
    /// Unblocked deletes.
    pub deletes: u64,
    /// Set events a policy blocked before the jar.
    pub blocked_sets: u64,
    /// Cookie read events.
    pub reads: u64,
    /// Outbound requests.
    pub requests: u64,
    /// Feature probes.
    pub probes: u64,
    /// DOM mutations.
    pub dom_events: u64,
    /// Script inclusions.
    pub inclusions: u64,
    /// Sites with at least one third-party script inclusion.
    pub third_party_script_sites: u64,
    /// Sites with ≥1 unblocked `document.cookie` write.
    pub doc_cookie_sites: u64,
    /// Sites with ≥1 unblocked `cookieStore` write.
    pub cookie_store_sites: u64,
    /// Cross-domain overwrite events (reconstructed ownership).
    pub cross_overwrite_events: u64,
    /// Cross-domain delete events.
    pub cross_delete_events: u64,
    /// Sites with ≥1 cross-domain overwrite.
    pub cross_overwrite_sites: u64,
    /// Sites with ≥1 cross-domain delete.
    pub cross_delete_sites: u64,
    /// Distinct pairs created via `document.cookie` (fixed-memory
    /// sketch: exact below ~16k distinct pairs, ~1% beyond).
    pub doc_cookie_pairs: DistinctSketch,
    /// Distinct pairs created via `cookieStore`.
    pub cookie_store_pairs: DistinctSketch,
    /// Distinct pairs created via HTTP `Set-Cookie`.
    pub http_pairs: DistinctSketch,
}

impl StreamStats {
    /// Folds one visit and drops it: the caller keeps no reference and
    /// the stats keep no copy.
    pub fn fold(&mut self, log: &VisitLog) {
        analysis_metrics().logs_folded.incr();
        self.crawled += 1;
        if !log.complete {
            return;
        }
        self.complete += 1;
        let mut doc_write = false;
        let mut store_write = false;
        for ev in &log.sets {
            if ev.blocked {
                self.blocked_sets += 1;
                continue;
            }
            match ev.kind {
                WriteKind::Create => self.creates += 1,
                WriteKind::Overwrite => self.overwrites += 1,
                WriteKind::Delete => self.deletes += 1,
            }
            match ev.api {
                CookieApi::DocumentCookie => doc_write = true,
                CookieApi::CookieStore => store_write = true,
                CookieApi::HttpHeader => {}
            }
        }
        self.doc_cookie_sites += u64::from(doc_write);
        self.cookie_store_sites += u64::from(store_write);
        self.reads += log.reads.len() as u64;
        self.requests += log.requests.len() as u64;
        self.probes += log.probes.len() as u64;
        self.dom_events += log.dom_events.len() as u64;
        self.inclusions += log.inclusions.len() as u64;
        if log
            .inclusions
            .iter()
            .any(|inc| inc.domain.as_deref().is_some_and(|d| d != log.site_domain))
        {
            self.third_party_script_sites += 1;
        }
        // Ownership replay is per-visit state; it is built, read, and
        // dropped inside this call.
        let site = reconstruct(log);
        for (key, hist) in &site.pairs {
            let sketch = match hist.api {
                Some(CookieApi::DocumentCookie) => &mut self.doc_cookie_pairs,
                Some(CookieApi::CookieStore) => &mut self.cookie_store_pairs,
                Some(CookieApi::HttpHeader) => &mut self.http_pairs,
                None => continue,
            };
            sketch.observe(&[key.name.as_bytes(), key.owner.as_bytes()]);
        }
        self.cross_overwrite_events += site.cross_overwrites.len() as u64;
        self.cross_delete_events += site.cross_deletes.len() as u64;
        self.cross_overwrite_sites += u64::from(!site.cross_overwrites.is_empty());
        self.cross_delete_sites += u64::from(!site.cross_deletes.is_empty());
    }

    /// Absorbs another partial. Associative and commutative (sums and
    /// order-independent sketch unions), so per-segment partials can
    /// merge in any grouping — `par_fold` still merges in fixed segment
    /// order for a fully deterministic pipeline.
    pub fn merge(mut self, other: StreamStats) -> StreamStats {
        self.crawled += other.crawled;
        self.complete += other.complete;
        self.creates += other.creates;
        self.overwrites += other.overwrites;
        self.deletes += other.deletes;
        self.blocked_sets += other.blocked_sets;
        self.reads += other.reads;
        self.requests += other.requests;
        self.probes += other.probes;
        self.dom_events += other.dom_events;
        self.inclusions += other.inclusions;
        self.third_party_script_sites += other.third_party_script_sites;
        self.doc_cookie_sites += other.doc_cookie_sites;
        self.cookie_store_sites += other.cookie_store_sites;
        self.cross_overwrite_events += other.cross_overwrite_events;
        self.cross_delete_events += other.cross_delete_events;
        self.cross_overwrite_sites += other.cross_overwrite_sites;
        self.cross_delete_sites += other.cross_delete_sites;
        self.doc_cookie_pairs.absorb(other.doc_cookie_pairs);
        self.cookie_store_pairs.absorb(other.cookie_store_pairs);
        self.http_pairs.absorb(other.http_pairs);
        self
    }

    /// Folds a fallible stream of visit logs (e.g. a
    /// `cg_crawlstore::CrawlReader` or one `SegmentStream`).
    pub fn from_reader<E>(
        logs: impl IntoIterator<Item = Result<VisitLog, E>>,
    ) -> Result<StreamStats, E> {
        let mut stats = StreamStats::default();
        for log in logs {
            stats.fold(&log?);
        }
        Ok(stats)
    }

    /// Streams the store at `dir` into aggregates using up to `threads`
    /// parallel per-segment folds. Byte-identical serialized output at
    /// any thread count, with peak memory independent of crawl size.
    pub fn from_store(dir: impl AsRef<Path>, threads: usize) -> Result<StreamStats, StoreError> {
        StreamStats::from_store_with(dir, threads, ReadBackend::default())
    }

    /// [`StreamStats::from_store`] with an explicit [`ReadBackend`]:
    /// folds the store chunk-granular (frame-index boundaries inside
    /// binary segments), so even a single-segment store parallelizes,
    /// through mmap'd windows, positioned reads, or buffered streams.
    /// All backends and thread counts serialize byte-identically.
    pub fn from_store_with(
        dir: impl AsRef<Path>,
        threads: usize,
        backend: ReadBackend,
    ) -> Result<StreamStats, StoreError> {
        let partials =
            cg_crawlstore::par_fold_with(dir, threads, backend, StreamStats::from_reader)?;
        Ok(partials
            .into_iter()
            .fold(StreamStats::default(), StreamStats::merge))
    }

    /// The flat summary (pair sketches reduced to their counts) — what
    /// the CLI surfaces print and the bench report embeds.
    pub fn summary(&self) -> StreamSummary {
        StreamSummary {
            crawled: self.crawled,
            complete: self.complete,
            creates: self.creates,
            overwrites: self.overwrites,
            deletes: self.deletes,
            blocked_sets: self.blocked_sets,
            reads: self.reads,
            requests: self.requests,
            third_party_script_sites: self.third_party_script_sites,
            doc_cookie_sites: self.doc_cookie_sites,
            cookie_store_sites: self.cookie_store_sites,
            doc_cookie_pairs: self.doc_cookie_pairs.estimate(),
            cookie_store_pairs: self.cookie_store_pairs.estimate(),
            http_pairs: self.http_pairs.estimate(),
            cross_overwrite_events: self.cross_overwrite_events,
            cross_delete_events: self.cross_delete_events,
            cross_overwrite_sites: self.cross_overwrite_sites,
            cross_delete_sites: self.cross_delete_sites,
        }
    }
}

/// [`StreamStats`] with the pair sketches collapsed to counts: small
/// enough to print or embed in a machine-readable report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StreamSummary {
    /// Visits folded, complete or not.
    pub crawled: u64,
    /// Visits retained by the completeness filter.
    pub complete: u64,
    /// Unblocked cookie creations.
    pub creates: u64,
    /// Unblocked overwrites.
    pub overwrites: u64,
    /// Unblocked deletes.
    pub deletes: u64,
    /// Set events a policy blocked before the jar.
    pub blocked_sets: u64,
    /// Cookie read events.
    pub reads: u64,
    /// Outbound requests.
    pub requests: u64,
    /// Sites with at least one third-party script inclusion.
    pub third_party_script_sites: u64,
    /// Sites with ≥1 unblocked `document.cookie` write.
    pub doc_cookie_sites: u64,
    /// Sites with ≥1 unblocked `cookieStore` write.
    pub cookie_store_sites: u64,
    /// Distinct pairs created via `document.cookie` (sketch count:
    /// exact below ~16k, ~1% at campaign scale).
    pub doc_cookie_pairs: u64,
    /// Distinct pairs created via `cookieStore` (sketch count).
    pub cookie_store_pairs: u64,
    /// Distinct pairs created via HTTP `Set-Cookie` (sketch count).
    pub http_pairs: u64,
    /// Cross-domain overwrite events.
    pub cross_overwrite_events: u64,
    /// Cross-domain delete events.
    pub cross_delete_events: u64,
    /// Sites with ≥1 cross-domain overwrite.
    pub cross_overwrite_sites: u64,
    /// Sites with ≥1 cross-domain delete.
    pub cross_delete_sites: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::Recorder;

    fn log(rank: usize, site: &str, events: impl FnOnce(&mut Recorder)) -> VisitLog {
        let mut r = Recorder::new(site, rank);
        events(&mut r);
        r.finish()
    }

    fn set(r: &mut Recorder, name: &str, actor: Option<&str>, api: CookieApi, kind: WriteKind) {
        r.record_set(name, "v", actor, None, api, kind, None, false, 0);
    }

    #[test]
    fn fold_counts_aggregates_without_retention() {
        let mut stats = StreamStats::default();
        stats.fold(&log(1, "a.com", |r| {
            set(
                r,
                "_ga",
                Some("gtm.com"),
                CookieApi::DocumentCookie,
                WriteKind::Create,
            );
            set(
                r,
                "_ga",
                Some("other.com"),
                CookieApi::DocumentCookie,
                WriteKind::Overwrite,
            );
        }));
        let mut incomplete = Recorder::new("bad.com", 2);
        incomplete.mark_incomplete();
        stats.fold(&incomplete.finish());
        assert_eq!(stats.crawled, 2);
        assert_eq!(stats.complete, 1);
        assert_eq!(stats.creates, 1);
        assert_eq!(stats.overwrites, 1);
        assert_eq!(stats.doc_cookie_sites, 1);
        assert_eq!(stats.doc_cookie_pairs.estimate(), 1);
        assert_eq!(stats.cross_overwrite_events, 1);
        assert_eq!(stats.cross_overwrite_sites, 1);
    }

    #[test]
    fn merge_is_associative_and_has_identity() {
        let mk = |rank: usize, owner: &'static str| {
            let mut s = StreamStats::default();
            s.fold(&log(rank, "s.com", |r| {
                set(
                    r,
                    "c",
                    Some(owner),
                    CookieApi::CookieStore,
                    WriteKind::Create,
                );
            }));
            s
        };
        let (a, b, c) = (mk(1, "x.com"), mk(2, "y.com"), mk(3, "x.com"));
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.clone().merge(b.merge(c));
        assert_eq!(
            serde_json::to_string(&left).unwrap(),
            serde_json::to_string(&right).unwrap()
        );
        assert_eq!(
            left.cookie_store_pairs.estimate(),
            2,
            "sketches deduplicate"
        );
        assert_eq!(
            serde_json::to_string(&a.clone().merge(StreamStats::default())).unwrap(),
            serde_json::to_string(&a).unwrap()
        );
    }

    #[test]
    fn summary_collapses_sets_to_counts() {
        let mut stats = StreamStats::default();
        stats.fold(&log(1, "a.com", |r| {
            set(
                r,
                "sid",
                Some("a.com"),
                CookieApi::HttpHeader,
                WriteKind::Create,
            );
        }));
        let summary = stats.summary();
        assert_eq!(summary.http_pairs, 1);
        assert_eq!(summary.crawled, 1);
        // The summary is plain scalars: serializing it stays small.
        assert!(serde_json::to_string(&summary).unwrap().len() < 600);
    }
}
