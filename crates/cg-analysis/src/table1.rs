//! Table 1: prevalence of cross-domain cookie actions across websites
//! and affected cookies, per API.

use crate::dataset::Dataset;
use crate::exfiltration::ExfilAnalysis;
use crate::manipulation::ManipulationAnalysis;
use cg_instrument::CookieApi;
use serde::{Deserialize, Serialize};

/// One Table 1 row: an action on one API's cookies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActionRow {
    /// % of sites with ≥1 such cross-domain action.
    pub sites_pct: f64,
    /// % of that API's unique pairs affected.
    pub cookies_pct: f64,
    /// Absolute number of affected pairs.
    pub cookies_count: usize,
}

/// The whole of Table 1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrossDomainSummary {
    /// Total analyzable sites.
    pub sites: usize,
    /// Unique `document.cookie` pairs in the dataset.
    pub doc_pairs_total: usize,
    /// Unique CookieStore pairs in the dataset.
    pub store_pairs_total: usize,
    /// document.cookie: exfiltration.
    pub doc_exfiltration: ActionRow,
    /// document.cookie: overwriting.
    pub doc_overwriting: ActionRow,
    /// document.cookie: deleting.
    pub doc_deleting: ActionRow,
    /// CookieStore: exfiltration.
    pub store_exfiltration: ActionRow,
    /// CookieStore: overwriting.
    pub store_overwriting: ActionRow,
    /// CookieStore: deleting.
    pub store_deleting: ActionRow,
}

/// Assembles Table 1 from the two analyses.
pub fn cross_domain_summary(
    ds: &Dataset,
    exfil: &ExfilAnalysis,
    manip: &ManipulationAnalysis,
) -> CrossDomainSummary {
    let sites = ds.site_count();
    let n = sites.max(1) as f64;
    let doc_total = ds.unique_pairs(CookieApi::DocumentCookie).len()
        + ds.unique_pairs(CookieApi::HttpHeader).len();
    let store_total = ds.unique_pairs(CookieApi::CookieStore).len();

    let row = |site_count: usize, pair_count: usize, total: usize| ActionRow {
        sites_pct: 100.0 * site_count as f64 / n,
        cookies_pct: if total == 0 {
            0.0
        } else {
            100.0 * pair_count as f64 / total as f64
        },
        cookies_count: pair_count,
    };

    CrossDomainSummary {
        sites,
        doc_pairs_total: doc_total,
        store_pairs_total: store_total,
        doc_exfiltration: row(
            exfil.sites_with_cross_exfil_doc.len(),
            exfil.cross_exfiltrated_pairs_doc.len(),
            doc_total,
        ),
        doc_overwriting: row(
            manip.sites_with_overwrite_doc.len(),
            manip.overwritten_pairs_doc.len(),
            doc_total,
        ),
        doc_deleting: row(
            manip.sites_with_delete_doc.len(),
            manip.deleted_pairs_doc.len(),
            doc_total,
        ),
        store_exfiltration: row(
            exfil.sites_with_cross_exfil_store.len(),
            exfil.cross_exfiltrated_pairs_store.len(),
            store_total,
        ),
        store_overwriting: row(
            manip.sites_with_overwrite_store.len(),
            manip.overwritten_pairs_store.len(),
            store_total,
        ),
        store_deleting: row(
            manip.sites_with_delete_store.len(),
            manip.deleted_pairs_store.len(),
            store_total,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exfiltration::detect_exfiltration;
    use crate::manipulation::detect_manipulation;
    use cg_instrument::{Recorder, WriteKind};

    #[test]
    fn summary_assembles() {
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "_ga",
            "GA1.1.444332364.17468",
            Some("gtm.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        r.record_set(
            "_ga",
            "GA1.1.999999999.17468",
            Some("evil.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Overwrite,
            None,
            false,
            1,
        );
        let script = cg_url::Url::parse("https://evil.com/e.js").unwrap();
        r.record_request(
            "https://sink.evil.com/c?id=444332364",
            cg_http::RequestKind::Image,
            Some(&script),
            "site.com",
            None,
            2,
        );
        let ds = Dataset::from_logs(vec![r.finish()]);

        let entities = cg_entity::builtin_entity_map();
        let exfil = detect_exfiltration(&ds, &entities);
        let manip = detect_manipulation(&ds, &entities);
        let summary = cross_domain_summary(&ds, &exfil, &manip);

        assert_eq!(summary.sites, 1);
        assert_eq!(summary.doc_pairs_total, 1);
        assert!((summary.doc_exfiltration.sites_pct - 100.0).abs() < 1e-9);
        assert!((summary.doc_overwriting.sites_pct - 100.0).abs() < 1e-9);
        assert!((summary.doc_deleting.sites_pct - 0.0).abs() < 1e-9);
        assert_eq!(summary.doc_exfiltration.cookies_count, 1);
        assert_eq!(summary.store_pairs_total, 0);
    }
}
