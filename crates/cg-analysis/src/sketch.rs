//! A K-minimum-values (KMV) distinct-count sketch: exact below K,
//! fixed-memory and ~1%-accurate above it, deterministic everywhere.
//!
//! [`StreamStats`](crate::StreamStats) needs unique cookie-pair counts
//! over populations that grow with the crawl — first-party pairs carry
//! the *site's own* eTLD+1 as their owner, so a 1M-visit crawl has
//! millions of distinct pairs and an exact set would reintroduce the
//! linear memory growth the streaming mode exists to avoid (measured:
//! ~750 MB peak RSS at 1M visits with exact `BTreeSet<PairKey>`s).
//!
//! KMV keeps only the K smallest 64-bit hashes of the keys observed.
//! While fewer than K distinct hashes have been seen the sketch *is*
//! the exact distinct count (every test- and CI-sized crawl lives
//! here); beyond K, the K-th smallest hash estimates the population
//! density: `estimate = (K-1) · 2⁶⁴ / kth_min`, with relative standard
//! error ≈ 1/√(K−2) (≈0.8% at K = 16384). Memory is capped at K hashes
//! no matter how many keys stream past.
//!
//! Determinism: the sketch's state is "the K smallest hashes of the
//! distinct keys observed" — a pure function of the key *set*,
//! independent of observation order, duplication, or how observations
//! were partitioned across workers. [`DistinctSketch::absorb`] is
//! therefore associative, commutative, and idempotent, which preserves
//! the streaming pipeline's byte-identical-at-any-thread-count
//! guarantee.

use serde::{Content, Serialize};

/// Hashes retained. 16384 × 8 B ≈ 128 KiB ceiling per sketch; exact
/// counts up to 16383 distinct keys; ~0.8% standard error beyond.
const K: usize = 16 * 1024;

/// A fixed-memory distinct-count sketch over byte-string keys.
///
/// `Default` is the empty sketch (the merge identity). Equality
/// compares retained hashes, so two sketches that saw the same key set
/// are equal however the observations were ordered or partitioned.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistinctSketch {
    /// The K smallest key hashes seen, ascending. `mins.len() < K`
    /// means every distinct hash is retained (exact regime).
    mins: std::collections::BTreeSet<u64>,
}

/// 64-bit FNV-1a over the key bytes, passed through the splitmix64
/// finalizer. FNV alone clusters in the low bits; KMV ranks hashes as
/// uniform draws from [0, 2⁶⁴), so the mixer's avalanche matters to
/// the estimate's accuracy.
fn key_hash(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Length-prefix-free separator: a byte that cannot appear in
        // either part (keys are cookie names / domain names).
        h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl DistinctSketch {
    /// Observes one key, given as parts (hashed with an unambiguous
    /// separator, so `("ab","c")` and `("a","bc")` are distinct keys).
    pub fn observe(&mut self, parts: &[&[u8]]) {
        self.insert_hash(key_hash(parts));
    }

    fn insert_hash(&mut self, h: u64) {
        if self.mins.len() < K {
            self.mins.insert(h);
            return;
        }
        let max = *self.mins.iter().next_back().expect("non-empty at K");
        if h < max && self.mins.insert(h) {
            self.mins.remove(&max);
        }
    }

    /// Absorbs another sketch. Associative, commutative, idempotent:
    /// the union's K smallest hashes are a function of the combined
    /// key set only.
    pub fn absorb(&mut self, other: DistinctSketch) {
        for h in other.mins {
            self.insert_hash(h);
        }
    }

    /// The distinct-key count: exact while fewer than K distinct keys
    /// have been observed, the KMV estimate beyond.
    pub fn estimate(&self) -> u64 {
        if self.mins.len() < K {
            return self.mins.len() as u64;
        }
        let kth = *self.mins.iter().next_back().expect("non-empty at K");
        // (K-1) uniform draws fall below the K-th smallest; density
        // extrapolation over the full 2⁶⁴ space. `kth` is never 0 here:
        // that would require 2⁶⁴ distinct observed hashes.
        ((K as f64 - 1.0) * ((u64::MAX as f64 + 1.0) / kth as f64)) as u64
    }
}

// Serializes as the estimate: sketches exist to be counted, and the
// retained hashes are an implementation detail no consumer should pin.
impl Serialize for DistinctSketch {
    fn to_content(&self) -> Content {
        Content::U64(self.estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i}").into_bytes()
    }

    #[test]
    fn exact_below_k_and_deduplicating() {
        let mut s = DistinctSketch::default();
        for i in 0..1000 {
            s.observe(&[&key(i), b"owner.com"]);
        }
        for i in 0..1000 {
            s.observe(&[&key(i), b"owner.com"]); // duplicates
        }
        assert_eq!(s.estimate(), 1000);
    }

    #[test]
    fn part_boundaries_are_unambiguous() {
        let mut a = DistinctSketch::default();
        a.observe(&[b"ab", b"c"]);
        let mut b = DistinctSketch::default();
        b.observe(&[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn estimate_above_k_is_within_a_few_percent() {
        let n = 200_000u64;
        let mut s = DistinctSketch::default();
        for i in 0..n {
            s.observe(&[&key(i)]);
        }
        let est = s.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.05, "estimate {est} vs {n}: {:.1}% off", err * 100.0);
    }

    #[test]
    fn memory_is_capped_at_k_hashes() {
        let mut s = DistinctSketch::default();
        for i in 0..(K as u64 * 4) {
            s.observe(&[&key(i)]);
        }
        assert_eq!(s.mins.len(), K);
    }

    #[test]
    fn absorb_is_order_and_partition_independent() {
        // Split one population three ways, absorb in different
        // groupings and orders: identical sketches, byte-identical
        // serialization — the parallel-fold determinism contract.
        let n = 60_000u64;
        let part = |range: std::ops::Range<u64>| {
            let mut s = DistinctSketch::default();
            for i in range {
                s.observe(&[&key(i)]);
            }
            s
        };
        let (a, b, c) = (part(0..20_000), part(20_000..40_000), part(40_000..n));
        let mut left = a.clone();
        left.absorb(b.clone());
        left.absorb(c.clone());
        let mut right = c;
        right.absorb(a);
        right.absorb(b);
        assert_eq!(left, right);
        assert_eq!(
            serde_json::to_string(&left).unwrap(),
            serde_json::to_string(&right).unwrap()
        );
        // And overlapping absorbs are idempotent.
        let mut again = left.clone();
        again.absorb(right);
        assert_eq!(again, left);
    }

    #[test]
    fn serializes_as_the_estimate() {
        let mut s = DistinctSketch::default();
        s.observe(&[b"sid", b"a.com"]);
        s.observe(&[b"uid", b"b.com"]);
        assert_eq!(serde_json::to_string(&s).unwrap(), "2");
    }
}
