//! Server-side tracking analysis (§5.7).
//!
//! The paper warns that "emerging practices like server-side tracking
//! bypass client-side defenses, including our own CookieGuard, by
//! proxying exfiltration through seemingly first-party endpoints". This
//! module quantifies that blind spot: it resolves each site's
//! server-side relay rules (a ground truth the client can never observe)
//! against the recorded first-party requests and counts the cookie pairs
//! that reach a tracker *through the site's own server*.
//!
//! Two channels feed the relay:
//!
//! * the **query payload** a collector script assembled from its
//!   script-visible jar (the site-owned sGTM loader sees everything even
//!   under CookieGuard; a third-party gateway pixel sees only its own
//!   cookies when guarded);
//! * the **`Cookie:` request header**, which the browser attaches to any
//!   first-party request with the *entire* jar — HttpOnly included —
//!   regardless of script-level isolation.

use crate::dataset::Dataset;
use cg_script::event_loop::parse_pairs;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One site's relay rules: `(path_prefix, tracker eTLD+1)` on the site's
/// own host. Keyed by site domain in [`ForwardMap`].
pub type ForwardRules = Vec<(String, String)>;

/// Site domain → server-side relay rules (ground truth from the
/// generator; in the real world, only the site operator knows these).
pub type ForwardMap = HashMap<String, ForwardRules>;

/// What the server-side analysis found.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerSideReport {
    /// Sites in the analyzable dataset.
    pub sites_analyzed: usize,
    /// Sites with at least one relay rule configured.
    pub sites_with_gateway: usize,
    /// First-party requests that matched a relay rule (i.e. were
    /// forwarded to a tracker server-side).
    pub gateway_requests: usize,
    /// Sites where at least one relayed request exposed cookies created
    /// by a party other than the receiving tracker (cross-domain
    /// exfiltration, executed server-side).
    pub sites_with_server_relay: usize,
    /// Unique `(site, cookie name)` pairs relayed to a foreign tracker.
    pub cross_domain_cookies_relayed: usize,
    /// Of the relayed requests, how many carried the jar in the
    /// `Cookie:` header (the channel no script-level defense touches).
    pub requests_with_header_payload: usize,
}

impl ServerSideReport {
    /// Percentage of analyzed sites with server-side cross-domain relay.
    pub fn pct_sites_with_relay(&self) -> f64 {
        if self.sites_analyzed == 0 {
            0.0
        } else {
            100.0 * self.sites_with_server_relay as f64 / self.sites_analyzed as f64
        }
    }
}

/// Resolves `forwards` against the dataset's first-party requests.
///
/// A cookie counts as *cross-domain relayed* when a matching gateway
/// request exposed it (header or query) and its recorded creator is
/// neither the receiving tracker nor the site itself — the same
/// cross-domain predicate as Table 1, executed on the server instead of
/// in the page.
pub fn detect_server_side(ds: &Dataset, forwards: &ForwardMap) -> ServerSideReport {
    let mut report = ServerSideReport {
        sites_analyzed: ds.site_count(),
        ..Default::default()
    };

    for (log, site) in ds.logs.iter().zip(&ds.sites) {
        let Some(rules) = forwards.get(&log.site_domain) else {
            continue;
        };
        if rules.is_empty() {
            continue;
        }
        report.sites_with_gateway += 1;

        // name → owners, reconstructed from the same log the client-side
        // pipeline uses.
        let mut owners: HashMap<&str, HashSet<&str>> = HashMap::new();
        for key in site.pairs.keys() {
            owners
                .entry(key.name.as_str())
                .or_default()
                .insert(key.owner.as_str());
        }

        let mut relayed_here: HashSet<String> = HashSet::new();
        for req in &log.requests {
            // Only requests to the site's own host can hit the gateway.
            if req.dest_domain.as_deref() != Some(log.site_domain.as_str()) {
                continue;
            }
            let path = path_of(&req.url);
            let Some((_, tracker)) = rules
                .iter()
                .find(|(prefix, _)| path.starts_with(prefix.as_str()))
            else {
                continue;
            };
            report.gateway_requests += 1;

            // Exposed cookie names: the attached Cookie header plus the
            // query-string parameter names the collector assembled.
            let mut exposed: HashSet<String> = HashSet::new();
            if let Some(header) = &req.cookie_header {
                report.requests_with_header_payload += 1;
                for (name, _) in parse_pairs(header) {
                    if !name.is_empty() {
                        exposed.insert(name);
                    }
                }
            }
            if let Some(query) = req.url.split_once('?').map(|(_, q)| q) {
                for param in query.split('&') {
                    if let Some((name, _)) = param.split_once('=') {
                        exposed.insert(name.to_string());
                    }
                }
            }

            for name in exposed {
                let Some(who) = owners.get(name.as_str()) else {
                    continue;
                };
                let foreign = who.iter().any(|o| {
                    !o.eq_ignore_ascii_case(tracker) && !o.eq_ignore_ascii_case(&log.site_domain)
                });
                if foreign {
                    relayed_here.insert(name);
                }
            }
        }
        if !relayed_here.is_empty() {
            report.sites_with_server_relay += 1;
            report.cross_domain_cookies_relayed += relayed_here.len();
        }
    }
    report
}

fn path_of(url: &str) -> &str {
    let rest = url.split_once("://").map(|(_, r)| r).unwrap_or(url);
    let rest = rest.split_once('?').map(|(p, _)| p).unwrap_or(rest);
    match rest.find('/') {
        Some(i) => &rest[i..],
        None => "/",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{CookieApi, Recorder, WriteKind};

    fn forwards_for(site: &str) -> ForwardMap {
        let mut m = ForwardMap::new();
        m.insert(
            site.to_string(),
            vec![("/g/collect".to_string(), "google-analytics.com".to_string())],
        );
        m
    }

    fn gateway_log(cookie_owner: &str) -> cg_instrument::VisitLog {
        let mut r = Recorder::new("shop.example", 1);
        // A third-party pixel ghost-writes an identifier…
        r.record_set(
            "_fbp",
            "fb.1.17.868308499",
            Some(cookie_owner),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        // …and the site's own collector posts the jar to the first-party
        // endpoint, Cookie header attached by the browser.
        let loader = cg_url::Url::parse("https://www.shop.example/sgtm/loader.js").unwrap();
        r.record_request(
            "https://www.shop.example/g/collect?v=2&_fbp=fb.1.17.868308499",
            cg_http::RequestKind::Beacon,
            Some(&loader),
            "shop.example",
            Some("_fbp=fb.1.17.868308499; session_id=abc"),
            5,
        );
        r.finish()
    }

    #[test]
    fn relay_of_foreign_cookie_detected() {
        let ds = Dataset::from_logs(vec![gateway_log("facebook.net")]);
        let report = detect_server_side(&ds, &forwards_for("shop.example"));
        assert_eq!(report.sites_with_gateway, 1);
        assert_eq!(report.gateway_requests, 1);
        assert_eq!(report.sites_with_server_relay, 1);
        assert_eq!(report.cross_domain_cookies_relayed, 1);
        assert_eq!(report.requests_with_header_payload, 1);
        assert!((report.pct_sites_with_relay() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn relay_to_own_tracker_not_cross_domain() {
        // The cookie's creator IS the receiving tracker: authorized sync,
        // not cross-domain exfiltration.
        let ds = Dataset::from_logs(vec![gateway_log("google-analytics.com")]);
        let report = detect_server_side(&ds, &forwards_for("shop.example"));
        assert_eq!(report.sites_with_gateway, 1);
        assert_eq!(report.sites_with_server_relay, 0);
    }

    #[test]
    fn non_matching_paths_ignored() {
        let mut m = ForwardMap::new();
        m.insert(
            "shop.example".to_string(),
            vec![("/other".to_string(), "ga.com".to_string())],
        );
        let ds = Dataset::from_logs(vec![gateway_log("facebook.net")]);
        let report = detect_server_side(&ds, &m);
        assert_eq!(report.gateway_requests, 0);
        assert_eq!(report.sites_with_server_relay, 0);
    }

    #[test]
    fn sites_without_rules_skipped() {
        let ds = Dataset::from_logs(vec![gateway_log("facebook.net")]);
        let report = detect_server_side(&ds, &ForwardMap::new());
        assert_eq!(report.sites_with_gateway, 0);
        assert_eq!(report.pct_sites_with_relay(), 0.0);
    }

    #[test]
    fn path_extraction() {
        assert_eq!(path_of("https://www.x.com/g/collect?a=1"), "/g/collect");
        assert_eq!(path_of("https://www.x.com"), "/");
        assert_eq!(path_of("www.x.com/p"), "/p");
    }
}
