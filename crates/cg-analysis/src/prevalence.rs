//! Prevalence statistics: §5.1 (third-party scripts), §5.2 (cookie API
//! usage), §5.6 (inclusion paths).

use crate::dataset::Dataset;
use cg_filterlist::{synthetic_lists, FilterEngine, ListInputs, MatchContext, ResourceType};
use cg_instrument::CookieApi;
use cg_webgen::VendorRegistry;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Builds the nine-list filter engine from the vendor registry — the
/// §4.3 classification setup.
pub fn build_filter_engine(registry: &VendorRegistry) -> FilterEngine {
    let like = registry.filter_list_inputs();
    let inputs = ListInputs {
        ad_domains: like.ads,
        tracking_domains: like.tracking,
        social_domains: like.social,
        annoyance_domains: like.annoyance,
        allowlisted: Vec::new(),
    };
    let lists = synthetic_lists(&inputs);
    let (engine, _skipped) = FilterEngine::from_lists(lists.iter().map(|l| l.text.as_str()));
    engine
}

/// §5.1's headline statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrevalenceStats {
    /// Analyzable sites.
    pub sites: usize,
    /// % of sites with ≥1 third-party script in the main frame.
    pub sites_with_third_party_pct: f64,
    /// Mean distinct third-party script URLs per site.
    pub avg_third_party_scripts: f64,
    /// % of third-party script occurrences classified ad/tracking.
    pub ad_tracking_share_pct: f64,
    /// Mean cookies set by third-party scripts per site.
    pub avg_cookies_third_party: f64,
    /// Mean cookies set by first-party scripts per site.
    pub avg_cookies_first_party: f64,
}

/// Computes §5.1.
pub fn prevalence_stats(ds: &Dataset, engine: &FilterEngine) -> PrevalenceStats {
    let mut with_tp = 0usize;
    let mut tp_script_counts = 0usize;
    let mut tp_occurrences = 0usize;
    let mut tracking_occurrences = 0usize;
    let mut tp_cookie_total = 0usize;
    let mut fp_cookie_total = 0usize;

    for (log, site) in ds.logs.iter().zip(&ds.sites) {
        let mut tp_urls: HashSet<&str> = HashSet::new();
        for inc in log.third_party_inclusions() {
            tp_urls.insert(inc.url.as_str());
            tp_occurrences += 1;
            let ctx = MatchContext {
                page_domain: log.site_domain.clone(),
                resource: ResourceType::Script,
                third_party: true,
            };
            if engine.is_tracking(&inc.url, &ctx) {
                tracking_occurrences += 1;
            }
        }
        if !tp_urls.is_empty() {
            with_tp += 1;
        }
        tp_script_counts += tp_urls.len();

        // Script-set cookies only (document.cookie + CookieStore).
        let mut tp_names: HashSet<&str> = HashSet::new();
        let mut fp_names: HashSet<&str> = HashSet::new();
        for (key, hist) in &site.pairs {
            if hist.api == Some(CookieApi::HttpHeader) {
                continue;
            }
            if key.owner.eq_ignore_ascii_case(&log.site_domain) {
                fp_names.insert(&key.name);
            } else {
                tp_names.insert(&key.name);
            }
        }
        tp_cookie_total += tp_names.len();
        fp_cookie_total += fp_names.len();
    }

    let n = ds.site_count().max(1) as f64;
    PrevalenceStats {
        sites: ds.site_count(),
        sites_with_third_party_pct: 100.0 * with_tp as f64 / n,
        avg_third_party_scripts: tp_script_counts as f64 / n,
        ad_tracking_share_pct: if tp_occurrences == 0 {
            0.0
        } else {
            100.0 * tracking_occurrences as f64 / tp_occurrences as f64
        },
        avg_cookies_third_party: tp_cookie_total as f64 / n,
        avg_cookies_first_party: fp_cookie_total as f64 / n,
    }
}

/// §5.2's API-usage statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ApiUsageStats {
    /// % of sites where `document.cookie` is invoked.
    pub doc_cookie_sites_pct: f64,
    /// Unique (name, setter-domain) pairs created via `document.cookie`.
    pub doc_cookie_pairs: usize,
    /// Distinct setter script URLs (document.cookie).
    pub doc_cookie_setter_scripts: usize,
    /// Distinct setter domains (document.cookie).
    pub doc_cookie_setter_domains: usize,
    /// % of sites using the CookieStore API.
    pub cookie_store_sites_pct: f64,
    /// Unique pairs created via CookieStore.
    pub cookie_store_pairs: usize,
    /// Distinct CookieStore cookie names.
    pub cookie_store_names: usize,
    /// Share of CookieStore sets carried by the top-2 names.
    pub cookie_store_top2_share_pct: f64,
}

/// Computes §5.2.
pub fn api_usage(ds: &Dataset) -> ApiUsageStats {
    let mut doc_sites = 0usize;
    let mut store_sites = 0usize;
    let mut setter_urls: HashSet<String> = HashSet::new();
    let mut setter_domains: HashSet<String> = HashSet::new();
    let mut store_name_counts: HashMap<String, usize> = HashMap::new();

    for (log, site) in ds.logs.iter().zip(&ds.sites) {
        let uses_doc = log.reads.iter().any(|r| r.api == CookieApi::DocumentCookie)
            || log.sets.iter().any(|s| s.api == CookieApi::DocumentCookie);
        if uses_doc {
            doc_sites += 1;
        }
        let uses_store = log.reads.iter().any(|r| r.api == CookieApi::CookieStore)
            || log.sets.iter().any(|s| s.api == CookieApi::CookieStore);
        if uses_store {
            store_sites += 1;
        }
        for (key, hist) in &site.pairs {
            match hist.api {
                Some(CookieApi::DocumentCookie) => {
                    if let Some(u) = &hist.owner_url {
                        setter_urls.insert(u.clone());
                    }
                    setter_domains.insert(key.owner.clone());
                }
                Some(CookieApi::CookieStore) => {
                    *store_name_counts.entry(key.name.clone()).or_insert(0) += 1;
                }
                _ => {}
            }
        }
    }

    let doc_pairs = ds.unique_pairs(CookieApi::DocumentCookie).len();
    let store_pairs = ds.unique_pairs(CookieApi::CookieStore).len();
    let total_store_sets: usize = store_name_counts.values().sum();
    let mut counts: Vec<usize> = store_name_counts.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top2: usize = counts.iter().take(2).sum();

    let n = ds.site_count().max(1) as f64;
    ApiUsageStats {
        doc_cookie_sites_pct: 100.0 * doc_sites as f64 / n,
        doc_cookie_pairs: doc_pairs,
        doc_cookie_setter_scripts: setter_urls.len(),
        doc_cookie_setter_domains: setter_domains.len(),
        cookie_store_sites_pct: 100.0 * store_sites as f64 / n,
        cookie_store_pairs: store_pairs,
        cookie_store_names: store_name_counts.len(),
        cookie_store_top2_share_pct: if total_store_sets == 0 {
            0.0
        } else {
            100.0 * top2 as f64 / total_store_sets as f64
        },
    }
}

/// §5.6's inclusion-path statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InclusionStats {
    /// Direct third-party inclusions (occurrences).
    pub direct: usize,
    /// Indirect (injected) third-party inclusions.
    pub indirect: usize,
    /// indirect / direct.
    pub indirect_to_direct_ratio: f64,
    /// % of indirect inclusions classified ad/tracking.
    pub indirect_tracking_pct: f64,
}

/// Computes §5.6.
pub fn inclusion_stats(ds: &Dataset, engine: &FilterEngine) -> InclusionStats {
    let mut direct = 0usize;
    let mut indirect = 0usize;
    let mut indirect_tracking = 0usize;
    for log in &ds.logs {
        for inc in log.third_party_inclusions() {
            if inc.direct {
                direct += 1;
            } else {
                indirect += 1;
                let ctx = MatchContext {
                    page_domain: log.site_domain.clone(),
                    resource: ResourceType::Script,
                    third_party: true,
                };
                if engine.is_tracking(&inc.url, &ctx) {
                    indirect_tracking += 1;
                }
            }
        }
    }
    InclusionStats {
        direct,
        indirect,
        indirect_to_direct_ratio: if direct == 0 {
            0.0
        } else {
            indirect as f64 / direct as f64
        },
        indirect_tracking_pct: if indirect == 0 {
            0.0
        } else {
            100.0 * indirect_tracking as f64 / indirect as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{Recorder, WriteKind};
    use cg_webgen::VendorRegistry;

    fn engine() -> FilterEngine {
        build_filter_engine(&VendorRegistry::new(Vec::new()))
    }

    fn make_log(site: &str, tp_scripts: &[(&str, bool)]) -> cg_instrument::VisitLog {
        let mut r = Recorder::new(site, 1);
        r.record_inclusion(Some(&format!("https://www.{site}/app.js")), true);
        for (url, direct) in tp_scripts {
            r.record_inclusion(Some(url), *direct);
        }
        r.record_set(
            "own",
            "abcdefgh1234",
            Some(site),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        r.record_set(
            "_ga",
            "GA1.1.123456789.99",
            Some("googletagmanager.com"),
            Some("https://www.googletagmanager.com/gtm.js"),
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            1,
        );
        r.finish()
    }

    #[test]
    fn prevalence_counts_third_party() {
        let ds = Dataset::from_logs(vec![
            make_log(
                "a-site.com",
                &[
                    ("https://www.googletagmanager.com/gtm.js", true),
                    ("https://www.google-analytics.com/analytics.js", false),
                ],
            ),
            make_log("b-site.com", &[]),
        ]);
        let stats = prevalence_stats(&ds, &engine());
        assert_eq!(stats.sites, 2);
        assert!((stats.sites_with_third_party_pct - 50.0).abs() < 1e-9);
        assert!((stats.avg_third_party_scripts - 1.0).abs() < 1e-9);
        // Both tp scripts are tracking (gtm + ga).
        assert!((stats.ad_tracking_share_pct - 100.0).abs() < 1e-9);
        assert!((stats.avg_cookies_third_party - 1.0).abs() < 1e-9);
        assert!((stats.avg_cookies_first_party - 1.0).abs() < 1e-9);
    }

    #[test]
    fn api_usage_pairs_and_sites() {
        let ds = Dataset::from_logs(vec![make_log("a-site.com", &[])]);
        let usage = api_usage(&ds);
        assert!((usage.doc_cookie_sites_pct - 100.0).abs() < 1e-9);
        assert_eq!(usage.doc_cookie_pairs, 2);
        assert_eq!(usage.doc_cookie_setter_domains, 2);
        assert_eq!(usage.doc_cookie_setter_scripts, 1); // only gtm had a URL
        assert_eq!(usage.cookie_store_pairs, 0);
        assert!((usage.cookie_store_sites_pct - 0.0).abs() < 1e-9);
    }

    #[test]
    fn inclusion_ratio() {
        let ds = Dataset::from_logs(vec![make_log(
            "a-site.com",
            &[
                ("https://www.googletagmanager.com/gtm.js", true),
                ("https://www.google-analytics.com/analytics.js", false),
                (
                    "https://securepubads.g.doubleclick.net/tag/js/gpt.js",
                    false,
                ),
            ],
        )]);
        let stats = inclusion_stats(&ds, &engine());
        assert_eq!(stats.direct, 1);
        assert_eq!(stats.indirect, 2);
        assert!((stats.indirect_to_direct_ratio - 2.0).abs() < 1e-9);
        assert!(stats.indirect_tracking_pct > 99.0);
    }
}
