//! The §8 pilot: cross-domain DOM manipulation prevalence.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// DOM-pilot result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DomPilotStats {
    /// % of sites with ≥1 cross-domain DOM mutation that *applied*.
    pub sites_with_cross_dom_pct: f64,
    /// Cross-domain mutation events that reached the document.
    pub events: usize,
    /// Cross-domain mutation events a DOM guard blocked (zero in
    /// unguarded crawls).
    pub blocked_events: usize,
    /// % of sites where every attempted cross-domain mutation was
    /// blocked (the guard's per-site win rate).
    pub sites_fully_protected_pct: f64,
}

/// Computes the pilot statistic: a mutation is cross-domain when the
/// acting script's eTLD+1 is known and differs from the element owner's.
/// Blocked events (DOM-guard crawls) are tallied separately — they never
/// reached the document.
pub fn dom_pilot_stats(ds: &Dataset) -> DomPilotStats {
    let mut sites_with = 0usize;
    let mut events = 0usize;
    let mut blocked_events = 0usize;
    let mut sites_fully_protected = 0usize;
    for log in &ds.logs {
        let (mut applied, mut blocked) = (0usize, 0usize);
        for e in log.dom_events.iter().filter(|e| e.is_cross_domain()) {
            if e.blocked {
                blocked += 1;
            } else {
                applied += 1;
            }
        }
        if applied > 0 {
            sites_with += 1;
        }
        if blocked > 0 && applied == 0 {
            sites_fully_protected += 1;
        }
        events += applied;
        blocked_events += blocked;
    }
    let denom = ds.site_count().max(1) as f64;
    DomPilotStats {
        sites_with_cross_dom_pct: 100.0 * sites_with as f64 / denom,
        events,
        blocked_events,
        sites_fully_protected_pct: 100.0 * sites_fully_protected as f64 / denom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::Recorder;

    #[test]
    fn counts_cross_domain_mutations() {
        let mut a = Recorder::new("a.com", 1);
        a.record_dom(Some("ads.net"), "a.com", "Content", false);
        a.record_dom(Some("a.com"), "a.com", "Style", false); // same-domain: ignored
        let mut b = Recorder::new("b.com", 2);
        b.record_dom(None, "b.com", "Content", false); // unattributed: ignored
        let ds = Dataset::from_logs(vec![a.finish(), b.finish()]);
        let stats = dom_pilot_stats(&ds);
        assert!((stats.sites_with_cross_dom_pct - 50.0).abs() < 1e-9);
        assert_eq!(stats.events, 1);
        assert_eq!(stats.blocked_events, 0);
    }

    #[test]
    fn blocked_mutations_count_toward_protection() {
        let mut a = Recorder::new("a.com", 1);
        a.record_dom(Some("ads.net"), "a.com", "Content", true); // guard blocked it
        let mut b = Recorder::new("b.com", 2);
        b.record_dom(Some("ads.net"), "b.com", "Content", true);
        b.record_dom(Some("other.io"), "b.com", "Remove", false); // one slipped through
        let ds = Dataset::from_logs(vec![a.finish(), b.finish()]);
        let stats = dom_pilot_stats(&ds);
        // Only b.com still has an applied cross-domain mutation.
        assert!((stats.sites_with_cross_dom_pct - 50.0).abs() < 1e-9);
        assert_eq!(stats.events, 1);
        assert_eq!(stats.blocked_events, 2);
        assert!((stats.sites_fully_protected_pct - 50.0).abs() < 1e-9);
    }
}
