//! Intent classification for cross-domain manipulations — the §5.5
//! "Case Study: Intention behind manipulations" taxonomy, systematized.
//!
//! The paper identifies three recurring explanations for why a script
//! overwrites or deletes a cookie it did not create:
//!
//! * **Collision** — generic names (`cookie_test`, `user_id`, …) targeted
//!   by many unrelated scripts: accidental namespace clashes, not
//!   adversarial behaviour.
//! * **Privacy compliance** — consent-management platforms deleting
//!   tracking identifiers to enforce declined consent (GDPR/CCPA).
//! * **Collusion or competition** — deliberate overwrites of non-trivial,
//!   hard-to-guess identifiers by a *different* ad-tech party (the
//!   `cto_bundle` Criteo→PubMatic case: a 194-char hash replaced by a
//!   258-char hash).
//!
//! Anything that fits none of the patterns is reported as **unclear**,
//! which the paper acknowledges is common — manipulations ship no
//! documentation.

use crate::dataset::{Dataset, PairKey};
use cg_entity::EntityMap;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The §5.5 intent taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ManipulationIntent {
    /// Generic-name namespace clash.
    Collision,
    /// Consent-platform enforcement deletion.
    PrivacyCompliance,
    /// Deliberate identifier takeover between ad-tech parties.
    CollusionOrCompetition,
    /// No pattern matched.
    Unclear,
}

/// Generic, collision-prone cookie names (the paper names `cookie_test`
/// and `user_id`; the list covers the common test/ID idioms).
const GENERIC_NAMES: &[&str] = &[
    "cookie_test",
    "_cookie_test",
    "test_cookie",
    "cookietest",
    "user_id",
    "userid",
    "uid",
    "_uid",
    "token",
    "_token",
    "session",
    "_session",
    "consent",
    "locale",
    "_guest",
    "_seg",
    "_cart",
];

/// Consent-management platforms whose deletions the paper attributes to
/// privacy compliance (Table 5's deleting column).
const CONSENT_PLATFORM_DOMAINS: &[&str] = &[
    "cookie-script.com",
    "cdn-cookieyes.com",
    "cookieyes.com",
    "cookielaw.org",
    "onetrust.com",
    "osano.com",
    "cookiebot.com",
    "civiccomputing.com",
    "ketchjs.com",
    "usercentrics.eu",
    "trustarc.com",
    "quantcast.com",
    "sourcepoint.com",
];

/// Whether `name` is a generic, collision-prone cookie name. Exact
/// matches plus `<generic>_<suffix>` variants (`user_id_6075`).
pub fn is_generic_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    GENERIC_NAMES
        .iter()
        .any(|g| lower == *g || lower.starts_with(&format!("{g}_")))
}

/// Whether `domain` belongs to a known consent-management platform.
pub fn is_consent_platform(domain: &str) -> bool {
    let lower = domain.to_ascii_lowercase();
    CONSENT_PLATFORM_DOMAINS.iter().any(|d| lower == *d)
}

/// Whether a value looks like an opaque identifier (hash/UUID-ish):
/// long, and almost entirely alphanumeric/`-._` with a digit somewhere.
fn looks_hash_like(value: &str) -> bool {
    value.len() >= 16
        && value.chars().any(|c| c.is_ascii_digit())
        && value
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '.' | '_' | '%' | '='))
}

/// One classified manipulation pattern with supporting evidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntentFinding {
    /// The manipulated pair.
    pub pair: PairKey,
    /// Overwrite (`false`) or delete (`true`).
    pub delete: bool,
    /// Acting script domain.
    pub actor: String,
    /// The classification.
    pub intent: ManipulationIntent,
    /// Human-readable evidence line.
    pub evidence: String,
}

/// Aggregate intent report (§5.5 case-study section, systematized).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntentReport {
    /// Count per intent class.
    pub counts: HashMap<String, usize>,
    /// Every classified event (order: sites, then pairs).
    pub findings: Vec<IntentFinding>,
    /// Generic names seen manipulated by ≥3 distinct actors, with the
    /// actor count — the paper's "eight distinct cookie_test cookies …
    /// overwritten or deleted by more than 70 unique scripts".
    pub collision_hotspots: Vec<(String, usize)>,
}

impl IntentReport {
    /// Count for one intent class.
    pub fn count(&self, intent: ManipulationIntent) -> usize {
        self.counts.get(intent_label(intent)).copied().unwrap_or(0)
    }
}

fn intent_label(intent: ManipulationIntent) -> &'static str {
    match intent {
        ManipulationIntent::Collision => "collision",
        ManipulationIntent::PrivacyCompliance => "privacy_compliance",
        ManipulationIntent::CollusionOrCompetition => "collusion_or_competition",
        ManipulationIntent::Unclear => "unclear",
    }
}

/// Classifies every cross-domain manipulation in the dataset.
pub fn classify_intents(ds: &Dataset, entities: &EntityMap) -> IntentReport {
    let mut report = IntentReport::default();
    let mut actors_per_generic: HashMap<String, HashSet<String>> = HashMap::new();

    for site in &ds.sites {
        // Overwrites.
        for (pair, actor, _changes) in &site.cross_overwrites {
            let intent = if is_generic_name(&pair.name) {
                actors_per_generic
                    .entry(pair.name.clone())
                    .or_default()
                    .insert(actor.clone());
                ManipulationIntent::Collision
            } else if hash_takeover(site, pair) && distinct_entities(entities, actor, &pair.owner) {
                ManipulationIntent::CollusionOrCompetition
            } else if is_consent_platform(actor) {
                // Consent platforms sometimes *reset* rather than delete.
                ManipulationIntent::PrivacyCompliance
            } else {
                ManipulationIntent::Unclear
            };
            push_finding(&mut report, site, pair, actor, false, intent);
        }
        // Deletes.
        for (pair, actor, _api) in &site.cross_deletes {
            let intent = if is_consent_platform(actor) {
                ManipulationIntent::PrivacyCompliance
            } else if is_generic_name(&pair.name) {
                actors_per_generic
                    .entry(pair.name.clone())
                    .or_default()
                    .insert(actor.clone());
                ManipulationIntent::Collision
            } else {
                ManipulationIntent::Unclear
            };
            push_finding(&mut report, site, pair, actor, true, intent);
        }
    }

    let mut hotspots: Vec<(String, usize)> = actors_per_generic
        .into_iter()
        .filter(|(_, actors)| actors.len() >= 3)
        .map(|(name, actors)| (name, actors.len()))
        .collect();
    hotspots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    report.collision_hotspots = hotspots;
    report
}

/// A "collusion or competition" overwrite replaces one opaque identifier
/// with a *different-length* opaque identifier (the `cto_bundle`
/// 194→258 signature).
fn hash_takeover(site: &crate::dataset::SiteCookies, pair: &PairKey) -> bool {
    let Some(hist) = site.pairs.get(pair) else {
        return false;
    };
    hist.values
        .windows(2)
        .any(|w| looks_hash_like(&w[0]) && looks_hash_like(&w[1]) && w[0].len() != w[1].len())
}

fn distinct_entities(entities: &EntityMap, a: &str, b: &str) -> bool {
    !(entities.contains(a) && entities.contains(b) && entities.same_entity(a, b))
}

fn push_finding(
    report: &mut IntentReport,
    site: &crate::dataset::SiteCookies,
    pair: &PairKey,
    actor: &str,
    delete: bool,
    intent: ManipulationIntent,
) {
    *report
        .counts
        .entry(intent_label(intent).to_string())
        .or_insert(0) += 1;
    let action = if delete { "deleted" } else { "overwrote" };
    let evidence = format!(
        "{actor} {action} ({}, {}) on {} [{}]",
        pair.name,
        pair.owner,
        site.site,
        intent_label(intent)
    );
    report.findings.push(IntentFinding {
        pair: pair.clone(),
        delete,
        actor: actor.to_string(),
        intent,
        evidence,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{CookieApi, Recorder, WriteKind};

    fn log_with(
        site: &str,
        sets: &[(&str, &str, &str, WriteKind)], // (name, value, actor, kind)
    ) -> cg_instrument::VisitLog {
        let mut r = Recorder::new(site, 1);
        for (i, (name, value, actor, kind)) in sets.iter().enumerate() {
            r.record_set(
                name,
                value,
                Some(actor),
                None,
                CookieApi::DocumentCookie,
                *kind,
                None,
                false,
                i as u64,
            );
        }
        r.finish()
    }

    #[test]
    fn generic_name_collision_detected() {
        let log = log_with(
            "a.com",
            &[
                ("cookie_test", "1", "cxense.com", WriteKind::Create),
                ("cookie_test", "1", "optable.co", WriteKind::Overwrite),
                ("cookie_test", "1", "enreach.io", WriteKind::Overwrite),
                ("cookie_test", "", "canadian.net", WriteKind::Delete),
            ],
        );
        let ds = Dataset::from_logs(vec![log]);
        let report = classify_intents(&ds, &cg_entity::builtin_entity_map());
        assert_eq!(report.count(ManipulationIntent::Collision), 3);
        assert_eq!(report.collision_hotspots.len(), 1);
        assert_eq!(report.collision_hotspots[0].0, "cookie_test");
        assert_eq!(report.collision_hotspots[0].1, 3);
    }

    #[test]
    fn consent_platform_deletion_is_privacy_compliance() {
        let log = log_with(
            "shop.net",
            &[
                (
                    "_fbp",
                    "fb.1.1746746266109.868308499845957651",
                    "facebook.net",
                    WriteKind::Create,
                ),
                ("_fbp", "", "cookie-script.com", WriteKind::Delete),
            ],
        );
        let ds = Dataset::from_logs(vec![log]);
        let report = classify_intents(&ds, &cg_entity::builtin_entity_map());
        assert_eq!(report.count(ManipulationIntent::PrivacyCompliance), 1);
        assert_eq!(report.count(ManipulationIntent::Collision), 0);
    }

    #[test]
    fn hash_takeover_is_collusion_or_competition() {
        // The cto_bundle case: 194-char hash replaced by a 258-char hash
        // from a different ad-tech entity.
        let before = "a1".repeat(97); // 194 chars
        let after = "b2".repeat(129); // 258 chars
        let log = log_with(
            "news.org",
            &[
                ("cto_bundle", &before, "criteo.com", WriteKind::Create),
                ("cto_bundle", &after, "pubmatic.com", WriteKind::Overwrite),
            ],
        );
        let ds = Dataset::from_logs(vec![log]);
        let report = classify_intents(&ds, &cg_entity::builtin_entity_map());
        assert_eq!(report.count(ManipulationIntent::CollusionOrCompetition), 1);
        let f = &report.findings[0];
        assert_eq!(f.intent, ManipulationIntent::CollusionOrCompetition);
        assert!(f.evidence.contains("pubmatic.com"));
    }

    #[test]
    fn same_entity_hash_swap_is_not_competition() {
        // facebook.net's identifier refreshed by fbcdn.net (same entity):
        // ID sync inside one organization, not a takeover.
        let before = "c3".repeat(30);
        let after = "d4".repeat(40);
        let log = log_with(
            "app.io",
            &[
                ("_fbp", &before, "facebook.net", WriteKind::Create),
                ("_fbp", &after, "fbcdn.net", WriteKind::Overwrite),
            ],
        );
        let ds = Dataset::from_logs(vec![log]);
        let report = classify_intents(&ds, &cg_entity::builtin_entity_map());
        assert_eq!(report.count(ManipulationIntent::CollusionOrCompetition), 0);
        assert_eq!(report.count(ManipulationIntent::Unclear), 1);
    }

    #[test]
    fn short_or_stable_values_stay_unclear() {
        let log = log_with(
            "b.com",
            &[
                ("pref_theme", "dark", "widget.io", WriteKind::Create),
                ("pref_theme", "light", "other.net", WriteKind::Overwrite),
            ],
        );
        let ds = Dataset::from_logs(vec![log]);
        let report = classify_intents(&ds, &cg_entity::builtin_entity_map());
        assert_eq!(report.count(ManipulationIntent::Unclear), 1);
    }

    #[test]
    fn name_and_platform_helpers() {
        assert!(is_generic_name("cookie_test"));
        assert!(is_generic_name("USER_ID"));
        assert!(is_generic_name("user_id_6075"));
        assert!(!is_generic_name("cto_bundle"));
        assert!(is_consent_platform("cookie-script.com"));
        assert!(!is_consent_platform("facebook.net"));
    }
}
