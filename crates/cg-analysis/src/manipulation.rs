//! Cross-domain manipulation analysis: overwrites and deletions (§5.5,
//! Table 5, Fig. 8).

use crate::dataset::{Dataset, PairKey};
use cg_entity::EntityMap;
use cg_instrument::CookieApi;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-pair manipulation aggregate (one side of Table 5).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairManipAggregate {
    /// Distinct manipulating entities.
    pub entities: HashSet<String>,
    /// Entity → event count (for top-3 reporting).
    pub entity_counts: HashMap<String, usize>,
    /// Sites where the manipulation occurred.
    pub sites: HashSet<String>,
}

/// §5.5's attribute-change shares over cross-domain overwrites.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AttrChangeShares {
    /// % of overwrites changing the value.
    pub value_pct: f64,
    /// % changing the expiry.
    pub expires_pct: f64,
    /// % changing the domain attribute.
    pub domain_pct: f64,
    /// % changing the path.
    pub path_pct: f64,
    /// Overwrite events with attribute data.
    pub events: usize,
}

/// The manipulation analysis result.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ManipulationAnalysis {
    /// Sites with ≥1 cross-domain overwrite (document.cookie pairs).
    pub sites_with_overwrite_doc: HashSet<String>,
    /// Sites with ≥1 cross-domain delete (document.cookie pairs).
    pub sites_with_delete_doc: HashSet<String>,
    /// Sites with ≥1 cross-domain overwrite of a CookieStore pair.
    pub sites_with_overwrite_store: HashSet<String>,
    /// Sites with ≥1 cross-domain delete of a CookieStore pair.
    pub sites_with_delete_store: HashSet<String>,
    /// Pairs overwritten cross-domain (document.cookie).
    pub overwritten_pairs_doc: HashSet<PairKey>,
    /// Pairs deleted cross-domain (document.cookie).
    pub deleted_pairs_doc: HashSet<PairKey>,
    /// Pairs overwritten cross-domain (CookieStore).
    pub overwritten_pairs_store: HashSet<PairKey>,
    /// Pairs deleted cross-domain (CookieStore).
    pub deleted_pairs_store: HashSet<PairKey>,
    /// Table 5 (top): per-pair overwrite aggregates.
    pub overwrites_per_pair: HashMap<PairKey, PairManipAggregate>,
    /// Table 5 (bottom): per-pair delete aggregates.
    pub deletes_per_pair: HashMap<PairKey, PairManipAggregate>,
    /// Fig. 8a: overwriting script domain → unique pairs overwritten.
    pub per_overwriter_domain: HashMap<String, HashSet<PairKey>>,
    /// Fig. 8b: deleting script domain → unique pairs deleted.
    pub per_deleter_domain: HashMap<String, HashSet<PairKey>>,
    /// §5.5 attribute-change shares.
    pub attr_changes: AttrChangeShares,
}

/// Runs the manipulation analysis.
pub fn detect_manipulation(ds: &Dataset, entities: &EntityMap) -> ManipulationAnalysis {
    let mut out = ManipulationAnalysis::default();
    let mut attr_totals = (0usize, 0usize, 0usize, 0usize, 0usize); // value, expires, domain, path, n

    for site in &ds.sites {
        for (pair, actor, changes) in &site.cross_overwrites {
            let api = site
                .pairs
                .get(pair)
                .and_then(|h| h.api)
                .unwrap_or(CookieApi::DocumentCookie);
            match api {
                CookieApi::CookieStore => {
                    out.sites_with_overwrite_store.insert(site.site.clone());
                    out.overwritten_pairs_store.insert(pair.clone());
                }
                _ => {
                    out.sites_with_overwrite_doc.insert(site.site.clone());
                    out.overwritten_pairs_doc.insert(pair.clone());
                }
            }
            let agg = out.overwrites_per_pair.entry(pair.clone()).or_default();
            let entity = entities.entity_of(actor);
            agg.entities.insert(entity.clone());
            *agg.entity_counts.entry(entity).or_insert(0) += 1;
            agg.sites.insert(site.site.clone());
            out.per_overwriter_domain
                .entry(actor.clone())
                .or_default()
                .insert(pair.clone());
            if let Some(c) = changes {
                attr_totals.0 += c.value as usize;
                attr_totals.1 += c.expires as usize;
                attr_totals.2 += c.domain as usize;
                attr_totals.3 += c.path as usize;
                attr_totals.4 += 1;
            }
        }
        for (pair, actor, api) in &site.cross_deletes {
            match api {
                CookieApi::CookieStore => {
                    out.sites_with_delete_store.insert(site.site.clone());
                    out.deleted_pairs_store.insert(pair.clone());
                }
                _ => {
                    out.sites_with_delete_doc.insert(site.site.clone());
                    out.deleted_pairs_doc.insert(pair.clone());
                }
            }
            let agg = out.deletes_per_pair.entry(pair.clone()).or_default();
            let entity = entities.entity_of(actor);
            agg.entities.insert(entity.clone());
            *agg.entity_counts.entry(entity).or_insert(0) += 1;
            agg.sites.insert(site.site.clone());
            out.per_deleter_domain
                .entry(actor.clone())
                .or_default()
                .insert(pair.clone());
        }
    }

    if attr_totals.4 > 0 {
        let n = attr_totals.4 as f64;
        out.attr_changes = AttrChangeShares {
            value_pct: 100.0 * attr_totals.0 as f64 / n,
            expires_pct: 100.0 * attr_totals.1 as f64 / n,
            domain_pct: 100.0 * attr_totals.2 as f64 / n,
            path_pct: 100.0 * attr_totals.3 as f64 / n,
            events: attr_totals.4,
        };
    }
    out
}

/// One Table 5 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Cookie name.
    pub cookie: String,
    /// Creating domain.
    pub owner: String,
    /// Distinct manipulating entities.
    pub manipulator_entities: usize,
    /// Most frequent manipulating entities.
    pub top_manipulators: Vec<String>,
}

impl ManipulationAnalysis {
    /// Table 5: top `n` overwritten (or deleted) pairs by entity count.
    pub fn table5(&self, deletes: bool, n: usize) -> Vec<Table5Row> {
        let src = if deletes {
            &self.deletes_per_pair
        } else {
            &self.overwrites_per_pair
        };
        let mut rows: Vec<Table5Row> = src
            .iter()
            .map(|(key, agg)| {
                let mut ranked: Vec<(&String, &usize)> = agg.entity_counts.iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
                Table5Row {
                    cookie: key.name.clone(),
                    owner: key.owner.clone(),
                    manipulator_entities: agg.entities.len(),
                    top_manipulators: ranked.into_iter().take(3).map(|(e, _)| e.clone()).collect(),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.manipulator_entities
                .cmp(&a.manipulator_entities)
                .then(a.cookie.cmp(&b.cookie))
                // Same name + same count happens across owners (many
                // sites' `_ga`): tie-break on owner too, or the order
                // is HashMap-iteration noise and runs stop being
                // byte-reproducible.
                .then(a.owner.cmp(&b.owner))
        });
        rows.truncate(n);
        rows
    }

    /// Fig. 8: top `n` manipulating script domains by unique pairs.
    pub fn fig8(&self, deletes: bool, n: usize, total_pairs: usize) -> Vec<(String, usize, f64)> {
        let src = if deletes {
            &self.per_deleter_domain
        } else {
            &self.per_overwriter_domain
        };
        let mut rows: Vec<(String, usize)> =
            src.iter().map(|(d, p)| (d.clone(), p.len())).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows.into_iter()
            .map(|(d, c)| {
                let share = if total_pairs == 0 {
                    0.0
                } else {
                    100.0 * c as f64 / total_pairs as f64
                };
                (d, c, share)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::{AttrChangeFlags, Recorder, WriteKind};

    fn dataset() -> Dataset {
        let mut r = Recorder::new("site.com", 1);
        r.record_set(
            "cto_bundle",
            "a".repeat(194).as_str(),
            Some("criteo.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            0,
        );
        r.record_set(
            "cto_bundle",
            "b".repeat(258).as_str(),
            Some("pubmatic.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Overwrite,
            Some(AttrChangeFlags {
                value: true,
                expires: true,
                domain: false,
                path: false,
            }),
            false,
            5,
        );
        r.record_set(
            "_uetvid",
            "x".repeat(32).as_str(),
            Some("bing.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Create,
            None,
            false,
            6,
        );
        r.record_set(
            "_uetvid",
            "",
            Some("cookie-script.com"),
            None,
            CookieApi::DocumentCookie,
            WriteKind::Delete,
            None,
            false,
            9,
        );
        Dataset::from_logs(vec![r.finish()])
    }

    #[test]
    fn pubmatic_criteo_case_study() {
        let analysis = detect_manipulation(&dataset(), &cg_entity::builtin_entity_map());
        assert_eq!(analysis.sites_with_overwrite_doc.len(), 1);
        let rows = analysis.table5(false, 10);
        assert_eq!(rows[0].cookie, "cto_bundle");
        assert_eq!(rows[0].owner, "criteo.com");
        assert_eq!(rows[0].top_manipulators, vec!["PubMatic".to_string()]);
    }

    #[test]
    fn consent_manager_delete_detected() {
        let analysis = detect_manipulation(&dataset(), &cg_entity::builtin_entity_map());
        assert_eq!(analysis.sites_with_delete_doc.len(), 1);
        let rows = analysis.table5(true, 10);
        assert_eq!(rows[0].cookie, "_uetvid");
        assert_eq!(rows[0].top_manipulators, vec!["Cookie-Script".to_string()]);
    }

    #[test]
    fn attr_change_shares_computed() {
        let analysis = detect_manipulation(&dataset(), &cg_entity::builtin_entity_map());
        let a = analysis.attr_changes;
        assert_eq!(a.events, 1);
        assert_eq!(a.value_pct, 100.0);
        assert_eq!(a.expires_pct, 100.0);
        assert_eq!(a.domain_pct, 0.0);
    }

    #[test]
    fn fig8_ranks_domains() {
        let analysis = detect_manipulation(&dataset(), &cg_entity::builtin_entity_map());
        let ow = analysis.fig8(false, 5, 100);
        assert_eq!(ow[0].0, "pubmatic.com");
        assert_eq!(ow[0].1, 1);
        let del = analysis.fig8(true, 5, 100);
        assert_eq!(del[0].0, "cookie-script.com");
    }
}
