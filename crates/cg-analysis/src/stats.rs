//! Small statistics helpers shared by the analyses and experiments.

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Median by sorting a copy (0 for empty input).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Percentile (nearest-rank on a sorted copy; `p` in [0, 100]).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Five-number summary + mean, the data behind a boxplot.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BoxStats {
    /// Minimum (post-whisker clamp is the consumer's concern).
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary for `values`.
    pub fn of(values: &[f64]) -> BoxStats {
        if values.is_empty() {
            return BoxStats {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                n: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        BoxStats {
            min: sorted[0],
            q1: percentile(&sorted, 25.0),
            median: percentile(&sorted, 50.0),
            q3: percentile(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: mean(&sorted),
            n: sorted.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(mean(&v), 22.0);
        assert_eq!(median(&v), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(BoxStats::of(&[]).n, 0);
    }

    #[test]
    fn box_stats_ordering() {
        let v: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let b = BoxStats::of(&v);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.max, 101.0);
        assert!(b.q1 < b.median && b.median < b.q3);
        assert_eq!(b.n, 101);
        assert!(b.iqr() > 0.0);
    }
}
