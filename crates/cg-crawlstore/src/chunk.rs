//! Chunked segment reads: split each binary segment at frame-index
//! boundaries into independently decodable byte ranges, decoded through
//! a caller-chosen [`ReadBackend`].
//!
//! The store's parallelism used to be segment-granular — a store
//! written by few workers left fold threads idle. A [`ChunkPlan`]
//! instead cuts every segment at its sidecar-index stride boundaries
//! (rebuilt by a header scan when the sidecar is missing or refused),
//! producing tens to thousands of [`ChunkSpec`]s that work-stealing
//! folds claim one at a time. Chunk boundaries carry the planned first
//! rank and an inclusive rank bound, so a decode that drifts across a
//! boundary (a stale plan, a damaged file) is an error — never a
//! silently wrong result.
//!
//! Three backends decode the same bytes: `Mmap` (zero-copy windows over
//! the page cache via [`Mmap`], falling back to `Pread` whenever a map
//! fails), `Pread` (one positioned read per chunk into an owned
//! buffer), and `Buffered` (a seeked `BufReader`, the portable
//! baseline). All three verify every frame checksum and the rank-sorted
//! run invariant, and stop at the planned chunk end — which the planner
//! derives from the manifest watermark, so bytes past the durable
//! prefix are never part of any decode window.
//!
//! **Layer:** persistence (between the segment files and
//! [`par_fold_with`](crate::par_fold_with)). **Invariants:** chunks
//! partition each segment's durable byte range exactly; each chunk's
//! frames are rank-ascending, start at the planned first rank, and stay
//! within the planned bound; all backends yield byte-identical
//! [`VisitLog`] streams or fail. **Entry points:** [`plan_chunks`],
//! [`ChunkPlan::open_chunk`], [`ReadBackend`].

use crate::codec::{self, SegmentFormat, FRAME_HEADER};
use crate::index::{self, INDEX_STRIDE};
use crate::manifest::Manifest;
use crate::mmap::Mmap;
use crate::pread::pread_exact;
use crate::reader::SegmentStream;
use crate::StoreError;
use cg_instrument::VisitLog;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// How chunk bytes reach the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadBackend {
    /// Zero-copy `mmap(2)` windows (the default); any map failure
    /// falls back to `Pread` for that chunk.
    #[default]
    Mmap,
    /// One positioned read per chunk into an owned buffer.
    Pread,
    /// A seeked `BufReader` streaming frame by frame — the portable
    /// baseline.
    Buffered,
}

impl std::fmt::Display for ReadBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReadBackend::Mmap => "mmap",
            ReadBackend::Pread => "pread",
            ReadBackend::Buffered => "buffered",
        })
    }
}

impl std::str::FromStr for ReadBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<ReadBackend, String> {
        match s {
            "mmap" => Ok(ReadBackend::Mmap),
            "pread" => Ok(ReadBackend::Pread),
            "buffered" => Ok(ReadBackend::Buffered),
            other => Err(format!(
                "unknown read backend {other:?} (expected mmap, pread, or buffered)"
            )),
        }
    }
}

/// One independently decodable byte range of one segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Manifest index of the owning segment.
    pub segment: usize,
    /// Chunk ordinal within the segment.
    pub chunk: usize,
    /// Segment file name (relative to the store directory).
    pub file: String,
    /// First byte of the chunk (a frame-header offset).
    pub start: u64,
    /// One past the chunk's last byte.
    pub end: u64,
    /// Frames the chunk must decode — exactly.
    pub frames: u64,
    /// Rank of the chunk's first frame (pinned by the index probe).
    pub first_rank: u64,
    /// Inclusive upper bound on ranks in this chunk (the next chunk's
    /// first rank minus one, or the segment's max rank).
    pub rank_bound: u64,
}

/// The chunk decomposition of a binary store: every segment cut at its
/// index stride boundaries, plus one shared read-only handle per
/// segment for the positioned/mapped backends.
pub struct ChunkPlan {
    dir: PathBuf,
    files: Vec<File>,
    chunks: Vec<ChunkSpec>,
}

/// Builds the chunk plan for the **binary** store at `dir`, loading
/// each segment's validated sidecar index or rebuilding it with a
/// header scan. Refuses JSONL stores (line-oriented segments have no
/// frame offsets); [`par_fold_with`](crate::par_fold_with) treats a
/// JSONL segment as a single chunk instead.
pub fn plan_chunks(dir: impl AsRef<Path>) -> Result<ChunkPlan, StoreError> {
    let dir = dir.as_ref();
    let _span = cg_telemetry::span!("chunk_plan");
    let manifest = Manifest::load(dir)?.ok_or_else(|| StoreError::Corrupt {
        file: crate::MANIFEST_FILE.to_string(),
        detail: format!("no manifest in {}", dir.display()),
    })?;
    if manifest.fingerprint.format != SegmentFormat::Binary {
        return Err(StoreError::Corrupt {
            file: crate::MANIFEST_FILE.to_string(),
            detail: format!(
                "chunked reads require a binary store, found {}",
                manifest.fingerprint.format
            ),
        });
    }
    let mut files = Vec::with_capacity(manifest.segments.len());
    let mut chunks = Vec::new();
    for (si, meta) in manifest.segments.iter().enumerate() {
        let file = File::open(dir.join(&meta.file)).map_err(|e| StoreError::Corrupt {
            file: meta.file.clone(),
            detail: format!("manifest lists segment but it cannot be opened: {e}"),
        })?;
        if meta.synced_records > 0 {
            let (idx, end) = match index::load_index(&file, dir, meta) {
                Some(idx) => {
                    let end = index::durable_end(&file, &meta.file, &idx, meta.synced_records)?;
                    (idx, end)
                }
                // Missing/corrupt/stale sidecar: rebuild from the
                // segment itself — slower, never wrong.
                None => index::scan_index(&file, &meta.file, meta.synced_records, INDEX_STRIDE)?,
            };
            let stride = u64::from(idx.stride);
            for (ci, entry) in idx.entries.iter().enumerate() {
                let next = idx.entries.get(ci + 1);
                chunks.push(ChunkSpec {
                    segment: si,
                    chunk: ci,
                    file: meta.file.clone(),
                    start: entry.offset,
                    end: next.map_or(end, |n| n.offset),
                    frames: next.map_or(meta.synced_records - ci as u64 * stride, |_| stride),
                    first_rank: entry.rank,
                    rank_bound: next.map_or(meta.max_rank, |n| n.rank - 1),
                });
            }
        }
        files.push(file);
    }
    Ok(ChunkPlan {
        dir: dir.to_path_buf(),
        files,
        chunks,
    })
}

impl ChunkPlan {
    /// Chunks in (segment, chunk) order — the fixed reduce order.
    pub fn chunks(&self) -> &[ChunkSpec] {
        &self.chunks
    }

    /// Total chunk count.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the store has no durable frames at all.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Segments covered by the plan.
    pub fn segments(&self) -> usize {
        self.files.len()
    }

    /// Opens chunk `i` for decoding through `backend`. Each open claims
    /// the chunk in telemetry; an mmap failure silently downgrades that
    /// chunk to the positioned-read path.
    pub fn open_chunk(&self, i: usize, backend: ReadBackend) -> Result<ChunkStream, StoreError> {
        let spec = &self.chunks[i];
        let tele = crate::telemetry::metrics();
        tele.chunks_claimed.incr();
        let len = (spec.end - spec.start) as usize;
        let file = &self.files[spec.segment];
        let src = match backend {
            ReadBackend::Mmap => {
                let _span = cg_telemetry::span!("chunk_map", len);
                match Mmap::map_range(file, spec.start, len) {
                    Ok(map) => {
                        tele.mmap_bytes.add(len as u64);
                        Src::Mapped(map)
                    }
                    Err(_) => Src::Owned(read_chunk(file, spec, len)?),
                }
            }
            ReadBackend::Pread => Src::Owned(read_chunk(file, spec, len)?),
            ReadBackend::Buffered => {
                let mut f =
                    File::open(self.dir.join(&spec.file)).map_err(|e| StoreError::Corrupt {
                        file: spec.file.clone(),
                        detail: format!("manifest lists segment but it cannot be opened: {e}"),
                    })?;
                f.seek(SeekFrom::Start(spec.start))?;
                Src::Streamed {
                    reader: BufReader::new(f),
                    buf: Vec::new(),
                    consumed: 0,
                }
            }
        };
        Ok(ChunkStream {
            file_name: spec.file.clone(),
            frames: spec.frames,
            first_rank: spec.first_rank,
            rank_bound: spec.rank_bound,
            chunk_len: len,
            done: 0,
            pos: 0,
            last_rank: None,
            failed: false,
            _span: cg_telemetry::span!("chunk_decode", spec.frames),
            src,
        })
    }
}

/// One positioned read covering the whole chunk.
fn read_chunk(file: &File, spec: &ChunkSpec, len: usize) -> Result<Vec<u8>, StoreError> {
    let mut bytes = vec![0u8; len];
    if !pread_exact(file, &mut bytes, spec.start)? {
        return Err(StoreError::Corrupt {
            file: spec.file.clone(),
            detail: "segment ends inside a planned chunk (short of its manifest watermark)"
                .to_string(),
        });
    }
    Ok(bytes)
}

enum Src {
    /// Zero-copy window over the page cache.
    Mapped(Mmap),
    /// Whole chunk in an owned buffer (pread backend, or mmap
    /// fallback).
    Owned(Vec<u8>),
    /// Frame-by-frame buffered reads.
    Streamed {
        reader: BufReader<File>,
        buf: Vec<u8>,
        consumed: usize,
    },
    /// A whole JSONL segment wrapped as one chunk (see
    /// [`ChunkStream::from_segment`]).
    Segment(SegmentStream),
}

/// Decodes one chunk's frames to [`VisitLog`]s, verifying checksums,
/// the rank-sorted run invariant, and the planned chunk boundaries.
/// The first error is yielded once, then the stream fuses.
pub struct ChunkStream {
    file_name: String,
    frames: u64,
    first_rank: u64,
    rank_bound: u64,
    chunk_len: usize,
    done: u64,
    pos: usize,
    last_rank: Option<u64>,
    failed: bool,
    _span: cg_telemetry::Span,
    src: Src,
}

impl ChunkStream {
    /// Wraps one whole JSONL segment stream as a single chunk, so
    /// [`par_fold_with`](crate::par_fold_with) covers both formats with
    /// one closure signature. Rank-order and parse checks are the
    /// stream's own.
    pub fn from_segment(stream: SegmentStream) -> ChunkStream {
        crate::telemetry::metrics().chunks_claimed.incr();
        ChunkStream {
            file_name: String::new(),
            frames: 0,
            first_rank: 0,
            rank_bound: 0,
            chunk_len: 0,
            done: 0,
            pos: 0,
            last_rank: None,
            failed: false,
            _span: cg_telemetry::span!("chunk_decode"),
            src: Src::Segment(stream),
        }
    }

    fn short(&self) -> StoreError {
        StoreError::Corrupt {
            file: self.file_name.clone(),
            detail: format!(
                "chunk ends {} frames short of its planned byte range",
                self.frames - self.done
            ),
        }
    }

    /// Boundary checks shared by every backend: ascending ranks, the
    /// planned first rank, and the inclusive rank bound. A violation
    /// means the plan and the bytes disagree — surfaced, never papered
    /// over.
    fn check_rank(&mut self, rank: u64) -> Result<(), StoreError> {
        if self.done == 0 && rank != self.first_rank {
            return Err(StoreError::Corrupt {
                file: self.file_name.clone(),
                detail: format!(
                    "chunk starts at rank {rank}, planned {} — segment and index disagree",
                    self.first_rank
                ),
            });
        }
        if let Some(prev) = self.last_rank {
            if rank <= prev {
                return Err(StoreError::Corrupt {
                    file: self.file_name.clone(),
                    detail: format!("segment not rank-sorted (rank {rank} after {prev})"),
                });
            }
        }
        if rank > self.rank_bound {
            return Err(StoreError::Corrupt {
                file: self.file_name.clone(),
                detail: format!(
                    "rank {rank} beyond the chunk bound {} — segment and index disagree",
                    self.rank_bound
                ),
            });
        }
        self.last_rank = Some(rank);
        Ok(())
    }

    /// Decodes the next frame of the chunk; `Ok(None)` once every
    /// planned frame is out (after verifying the planned byte range was
    /// consumed exactly). The `Iterator` impl wraps this with an error
    /// fuse; callers that want explicit control (e.g. the service
    /// replayer's claim loop) call it directly.
    pub fn next_log(&mut self) -> Result<Option<VisitLog>, StoreError> {
        if self.done == self.frames {
            // Exhausted: the planned byte range must be consumed
            // exactly, or the plan mis-cut the segment.
            let consumed = match &self.src {
                Src::Mapped(_) | Src::Owned(_) => self.pos,
                Src::Streamed { consumed, .. } => *consumed,
                Src::Segment(_) => unreachable!("segment chunks bypass next_log"),
            };
            if consumed != self.chunk_len {
                return Err(StoreError::Corrupt {
                    file: self.file_name.clone(),
                    detail: format!(
                        "chunk decoded {} of {} planned bytes — segment and index disagree",
                        consumed, self.chunk_len
                    ),
                });
            }
            return Ok(None);
        }
        let frame = match &mut self.src {
            Src::Mapped(map) => decode_frame_at(map.bytes(), &mut self.pos, &self.file_name)?,
            Src::Owned(bytes) => decode_frame_at(bytes, &mut self.pos, &self.file_name)?,
            Src::Streamed {
                reader,
                buf,
                consumed,
            } => {
                let left = self.chunk_len - *consumed;
                let frame = decode_frame_streamed(reader, buf, left, &self.file_name)?;
                if let Some((_, _, total)) = &frame {
                    *consumed += total;
                }
                frame
            }
            Src::Segment(_) => unreachable!("segment chunks bypass next_log"),
        };
        let Some((rank, log, total)) = frame else {
            return Err(self.short());
        };
        self.check_rank(rank)?;
        self.done += 1;
        let tele = crate::telemetry::metrics();
        tele.records_replayed.incr();
        tele.bytes_replayed.add(total as u64);
        Ok(Some(log))
    }
}

/// Decodes the frame at `*pos` of an in-memory window; `Ok(None)` when
/// fewer bytes remain than the frame needs (the caller's planned-range
/// error applies).
fn decode_frame_at(
    window: &[u8],
    pos: &mut usize,
    file: &str,
) -> Result<Option<(u64, VisitLog, usize)>, StoreError> {
    if window.len() - *pos < FRAME_HEADER {
        return Ok(None);
    }
    let header: &[u8; FRAME_HEADER] = window[*pos..*pos + FRAME_HEADER]
        .try_into()
        .expect("FRAME_HEADER bytes");
    let header = codec::parse_header(header);
    let total = FRAME_HEADER + header.len;
    if window.len() - *pos < total {
        return Ok(None);
    }
    let payload = &window[*pos + FRAME_HEADER..*pos + total];
    let log = checked_decode(header.rank, header.check, payload, file)?;
    *pos += total;
    Ok(Some((header.rank, log, total)))
}

/// Streamed-backend frame decode: header then payload through the
/// `BufReader`, bounded by the chunk's remaining byte budget.
fn decode_frame_streamed(
    reader: &mut BufReader<File>,
    buf: &mut Vec<u8>,
    left: usize,
    file: &str,
) -> Result<Option<(u64, VisitLog, usize)>, StoreError> {
    if left < FRAME_HEADER {
        return Ok(None);
    }
    let mut header = [0u8; FRAME_HEADER];
    if !read_frame_exact(reader, &mut header)? {
        return Ok(None);
    }
    let header = codec::parse_header(&header);
    let total = FRAME_HEADER + header.len;
    if left < total {
        return Ok(None);
    }
    buf.resize(header.len, 0);
    if !read_frame_exact(reader, buf)? {
        return Ok(None);
    }
    let log = checked_decode(header.rank, header.check, buf, file)?;
    Ok(Some((header.rank, log, total)))
}

/// `read_exact` with a clean-EOF signal (`Ok(false)`) instead of an
/// error, matching the positioned readers.
fn read_frame_exact(reader: &mut BufReader<File>, buf: &mut [u8]) -> Result<bool, StoreError> {
    match reader.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Checksum gate + payload decode, with the reader's error wording.
fn checked_decode(
    rank: u64,
    check: u32,
    payload: &[u8],
    file: &str,
) -> Result<VisitLog, StoreError> {
    if codec::frame_check(rank, payload) != check {
        return Err(StoreError::Corrupt {
            file: file.to_string(),
            detail: "frame checksum mismatch below the manifest watermark".to_string(),
        });
    }
    codec::decode_visit_log(payload).map_err(|e| StoreError::Corrupt {
        file: file.to_string(),
        detail: e,
    })
}

impl Iterator for ChunkStream {
    type Item = Result<VisitLog, StoreError>;

    fn next(&mut self) -> Option<Result<VisitLog, StoreError>> {
        if self.failed {
            return None;
        }
        if let Src::Segment(stream) = &mut self.src {
            return stream.next();
        }
        match self.next_log() {
            Ok(Some(log)) => Some(Ok(log)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}
