//! The binary segment codec: a compact, length-prefixed frame format
//! for [`VisitLog`] records that replaces
//! text parsing on the replay hot path.
//!
//! JSONL segments pay for generality three times per record on read:
//! UTF-8 text parsing, a `Value` tree build, and a content-tree
//! conversion. A binary segment stores the record's
//! [`Content`] tree directly — tagged values with
//! varint lengths — so replay is a buffered frame read plus one direct
//! tree decode, with the record's rank available in the frame header
//! *before* any payload work (the k-way merge orders on it).
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────────┬──────────────┬───────────────┬───────────────┐
//! │ payload_len u32│   rank u64   │   check u32   │ payload bytes │
//! │       LE       │      LE      │ FNV-1a folded │  (tagged tree)│
//! └────────────────┴──────────────┴───────────────┴───────────────┘
//!   16-byte header, then exactly `payload_len` bytes.
//! ```
//!
//! `check` is word-at-a-time FNV-1a ([`cg_hash::fnv1a32w`]) absorbing
//! the rank, the payload, and the payload length, so a frame vouches
//! for its own ordering key as well as its body. Recovery rules mirror
//! the JSONL ones exactly (see [`crate::writer`]):
//!
//! * fewer than 16 bytes left, or a declared payload running past EOF
//!   → a crash mid-append: **truncate** back to the last good frame;
//! * a checksum-mismatched frame that is the *final* frame → torn at
//!   the record level: **truncate**;
//! * a checksum mismatch with complete frames after it → mid-file
//!   damage truncation cannot repair: **corrupt**;
//! * ranks must be strictly ascending within a segment (sorted-run
//!   invariant), as on the JSONL path.
//!
//! ## Payload encoding
//!
//! A tagged pre-order walk of the content tree: one tag byte, then the
//! node's data. Integers are LEB128 varints (zigzag for signed), `f64`
//! is 8 raw little-endian bytes (exact round-trip, no decimal detour),
//! strings are varint-length-prefixed UTF-8, and sequences/maps are
//! varint counts followed by their elements in order. Map entry order
//! is preserved byte-for-byte, so a decoded record re-serializes to
//! JSON **byte-identically** to the line a JSONL segment would have
//! held — the property the cross-format differential tests pin.

use cg_hash::fnv1a32w;
use serde::{Content, Deserialize, Serialize};

/// On-disk representation of one store's segments, recorded in the
/// manifest fingerprint (a store never mixes formats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentFormat {
    /// One compact JSON line per visit (`seg-<n>.jsonl`) — the v1
    /// format, still the default: human-greppable, diffable, slow.
    #[default]
    Jsonl,
    /// Length-prefixed binary frames (`seg-<n>.bin`) — the replay fast
    /// path for large crawls.
    Binary,
}

impl SegmentFormat {
    /// Segment file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            SegmentFormat::Jsonl => "jsonl",
            SegmentFormat::Binary => "bin",
        }
    }

    /// The format a segment file name was written in, by extension.
    pub fn of_file(name: &str) -> Option<SegmentFormat> {
        if name.ends_with(".jsonl") {
            Some(SegmentFormat::Jsonl)
        } else if name.ends_with(".bin") {
            Some(SegmentFormat::Binary)
        } else {
            None
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            SegmentFormat::Jsonl => "jsonl",
            SegmentFormat::Binary => "binary",
        }
    }
}

impl std::fmt::Display for SegmentFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// Serialized as a plain string so the manifest stays greppable.
impl Serialize for SegmentFormat {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl<'de> Deserialize<'de> for SegmentFormat {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        match content {
            Content::Str(s) if s == "jsonl" => Ok(SegmentFormat::Jsonl),
            Content::Str(s) if s == "binary" => Ok(SegmentFormat::Binary),
            other => Err(serde::DeError(format!(
                "unknown segment format {other:?} (expected \"jsonl\" or \"binary\")"
            ))),
        }
    }
}

/// Frame header size: payload length (u32) + rank (u64) + check (u32).
pub const FRAME_HEADER: usize = 16;

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/// Appends one framed record — header then `payload` — to `out`.
pub fn write_frame(out: &mut Vec<u8>, rank: u64, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&frame_check(rank, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The frame checksum: word-at-a-time FNV-1a ([`cg_hash::fnv1a32w`])
/// absorbing the rank, the payload, and the payload length — computed
/// directly over the payload slice, no staging copy. Frames are tens
/// of KB, so the checksum pass is on the replay hot path.
pub fn frame_check(rank: u64, payload: &[u8]) -> u32 {
    fnv1a32w(rank, payload)
}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload byte length.
    pub len: usize,
    /// The record's rank (the merge key), readable without decoding.
    pub rank: u64,
    /// Expected [`frame_check`] of the payload.
    pub check: u32,
}

/// Parses the 16 header bytes of a frame.
pub fn parse_header(bytes: &[u8; FRAME_HEADER]) -> FrameHeader {
    FrameHeader {
        len: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize,
        rank: u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes")),
        check: u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")),
    }
}

// ---------------------------------------------------------------------
// Content payloads
// ---------------------------------------------------------------------

/// Reprints a decoded payload as the compact JSON line a JSONL segment
/// would have stored for the same record. Map entry order is preserved
/// end to end, so this is byte-identical to the text format's line —
/// the cross-format differential oracle.
pub fn content_to_json_line(content: &Content) -> String {
    struct Raw<'a>(&'a Content);
    impl Serialize for Raw<'_> {
        fn to_content(&self) -> Content {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(content)).expect("a content tree always prints")
}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_U64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a content tree onto `out` (appends; does not clear).
pub fn encode_content(content: &Content, out: &mut Vec<u8>) {
    match content {
        Content::Null => out.push(TAG_NULL),
        Content::Bool(false) => out.push(TAG_FALSE),
        Content::Bool(true) => out.push(TAG_TRUE),
        Content::I64(v) => {
            out.push(TAG_I64);
            write_varint(out, zigzag(*v));
        }
        Content::U64(v) => {
            out.push(TAG_U64);
            write_varint(out, *v);
        }
        Content::F64(v) => {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Content::Str(s) => {
            out.push(TAG_STR);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Content::Seq(items) => {
            out.push(TAG_SEQ);
            write_varint(out, items.len() as u64);
            for item in items {
                encode_content(item, out);
            }
        }
        Content::Map(entries) => {
            out.push(TAG_MAP);
            write_varint(out, entries.len() as u64);
            for (k, v) in entries {
                encode_content(k, out);
                encode_content(v, out);
            }
        }
    }
}

/// Decodes a payload produced by [`encode_content`]. Every byte must be
/// consumed — trailing garbage means the payload was not a single
/// well-formed tree.
pub fn decode_content(payload: &[u8]) -> Result<Content, String> {
    let mut cursor = Cursor {
        bytes: payload,
        pos: 0,
    };
    let content = cursor.value(0)?;
    if cursor.pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after the content tree",
            payload.len() - cursor.pos
        ));
    }
    Ok(content)
}

/// Nesting ceiling for decode: no [`VisitLog`]
/// comes close, so hitting it means the payload is garbage that
/// happened to checksum (or a different schema entirely).
const MAX_DEPTH: usize = 64;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(format!("varint longer than 10 bytes at {}", self.pos))
    }

    fn value(&mut self, depth: usize) -> Result<Content, String> {
        if depth > MAX_DEPTH {
            return Err(format!("content nested deeper than {MAX_DEPTH}"));
        }
        Ok(match self.byte()? {
            TAG_NULL => Content::Null,
            TAG_FALSE => Content::Bool(false),
            TAG_TRUE => Content::Bool(true),
            TAG_I64 => Content::I64(unzigzag(self.varint()?)),
            TAG_U64 => Content::U64(self.varint()?),
            TAG_F64 => Content::F64(f64::from_le_bytes(
                self.take(8)?.try_into().expect("8 bytes"),
            )),
            TAG_STR => {
                let len = self.varint()? as usize;
                let bytes = self.take(len)?.to_vec();
                Content::Str(
                    String::from_utf8(bytes)
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
                )
            }
            TAG_SEQ => {
                let count = self.varint()? as usize;
                let mut items = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Content::Seq(items)
            }
            TAG_MAP => {
                let count = self.varint()? as usize;
                let mut entries = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let k = self.value(depth + 1)?;
                    let v = self.value(depth + 1)?;
                    entries.push((k, v));
                }
                Content::Map(entries)
            }
            tag => {
                return Err(format!(
                    "unknown content tag {tag} at byte {}",
                    self.pos - 1
                ))
            }
        })
    }
}

// ---------------------------------------------------------------------
// Specialized VisitLog decoder: the replay fast path
// ---------------------------------------------------------------------

/// Decodes a binary payload straight into a
/// [`VisitLog`], skipping the intermediate
/// [`Content`] tree the generic path builds. Map keys are compared as
/// borrowed byte slices (zero allocation per key) and only the final
/// owned fields allocate, which is what makes binary replay several
/// times faster than text parsing.
///
/// The decoder is *positional*: it expects exactly the field sequence
/// the derive-generated `to_content` emits (declaration order — the
/// only thing [`crate::writer`] ever writes). Any deviation is an
/// error, never a silent partial record; the cross-format differential
/// tests pin its agreement with the generic
/// `decode_content` + `from_content` path on every record of a crawl.
pub fn decode_visit_log(payload: &[u8]) -> Result<VisitLog, String> {
    let mut d = Dec {
        bytes: payload,
        pos: 0,
    };
    let log = d.visit_log()?;
    if d.pos != payload.len() {
        return Err(format!(
            "{} trailing bytes after the visit log",
            payload.len() - d.pos
        ));
    }
    Ok(log)
}

use cg_http::RequestKind;
use cg_instrument::{
    AttrChangeFlags, CookieApi, DomEvent, ProbeEvent, ReadEvent, RequestEvent, ScriptInclusion,
    SetEvent, VisitLog, WriteKind,
};

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn byte(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(format!("varint longer than 10 bytes at {}", self.pos))
    }

    fn expect_tag(&mut self, want: u8, what: &str) -> Result<(), String> {
        let got = self.byte()?;
        if got != want {
            return Err(format!(
                "expected {what} (tag {want}) at byte {}, found tag {got}",
                self.pos - 1
            ));
        }
        Ok(())
    }

    /// A borrowed string value (`TAG_STR`): zero-copy.
    fn str_slice(&mut self) -> Result<&'a str, String> {
        self.expect_tag(TAG_STR, "a string")?;
        let len = self.varint()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|e| format!("invalid UTF-8 in string: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.str_slice().map(str::to_owned)
    }

    fn opt_string(&mut self) -> Result<Option<String>, String> {
        if self.bytes.get(self.pos) == Some(&TAG_NULL) {
            self.pos += 1;
            return Ok(None);
        }
        self.string().map(Some)
    }

    fn bool_val(&mut self) -> Result<bool, String> {
        match self.byte()? {
            TAG_FALSE => Ok(false),
            TAG_TRUE => Ok(true),
            tag => Err(format!(
                "expected a bool at byte {}, tag {tag}",
                self.pos - 1
            )),
        }
    }

    fn u64_val(&mut self) -> Result<u64, String> {
        self.expect_tag(TAG_U64, "an unsigned integer")?;
        self.varint()
    }

    fn opt_i64(&mut self) -> Result<Option<i64>, String> {
        if self.bytes.get(self.pos) == Some(&TAG_NULL) {
            self.pos += 1;
            return Ok(None);
        }
        self.expect_tag(TAG_I64, "a signed integer")?;
        self.varint().map(|v| Some(unzigzag(v)))
    }

    /// A struct header: `TAG_MAP` with exactly `fields` entries.
    fn struct_header(&mut self, fields: u64, what: &str) -> Result<(), String> {
        self.expect_tag(TAG_MAP, what)?;
        let count = self.varint()?;
        if count != fields {
            return Err(format!("{what} has {count} fields, expected {fields}"));
        }
        Ok(())
    }

    /// A map key, verified against the declaration-order field name.
    fn key(&mut self, name: &str) -> Result<(), String> {
        let got = self.str_slice()?;
        if got != name {
            return Err(format!("expected field \"{name}\", found \"{got}\""));
        }
        Ok(())
    }

    fn seq<T>(
        &mut self,
        item: impl Fn(&mut Dec<'a>) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        self.expect_tag(TAG_SEQ, "a sequence")?;
        let count = self.varint()? as usize;
        let mut out = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            out.push(item(self)?);
        }
        Ok(out)
    }

    fn cookie_api(&mut self) -> Result<CookieApi, String> {
        match self.str_slice()? {
            "DocumentCookie" => Ok(CookieApi::DocumentCookie),
            "CookieStore" => Ok(CookieApi::CookieStore),
            "HttpHeader" => Ok(CookieApi::HttpHeader),
            other => Err(format!("unknown CookieApi variant \"{other}\"")),
        }
    }

    fn write_kind(&mut self) -> Result<WriteKind, String> {
        match self.str_slice()? {
            "Create" => Ok(WriteKind::Create),
            "Overwrite" => Ok(WriteKind::Overwrite),
            "Delete" => Ok(WriteKind::Delete),
            other => Err(format!("unknown WriteKind variant \"{other}\"")),
        }
    }

    fn request_kind(&mut self) -> Result<RequestKind, String> {
        match self.str_slice()? {
            "Document" => Ok(RequestKind::Document),
            "Script" => Ok(RequestKind::Script),
            "Image" => Ok(RequestKind::Image),
            "Xhr" => Ok(RequestKind::Xhr),
            "Beacon" => Ok(RequestKind::Beacon),
            "Subframe" => Ok(RequestKind::Subframe),
            "Other" => Ok(RequestKind::Other),
            other => Err(format!("unknown RequestKind variant \"{other}\"")),
        }
    }

    fn attr_changes(&mut self) -> Result<Option<AttrChangeFlags>, String> {
        if self.bytes.get(self.pos) == Some(&TAG_NULL) {
            self.pos += 1;
            return Ok(None);
        }
        self.struct_header(4, "AttrChangeFlags")?;
        self.key("value")?;
        let value = self.bool_val()?;
        self.key("expires")?;
        let expires = self.bool_val()?;
        self.key("domain")?;
        let domain = self.bool_val()?;
        self.key("path")?;
        let path = self.bool_val()?;
        Ok(Some(AttrChangeFlags {
            value,
            expires,
            domain,
            path,
        }))
    }

    fn set_event(&mut self) -> Result<SetEvent, String> {
        self.struct_header(10, "SetEvent")?;
        self.key("name")?;
        let name = self.string()?;
        self.key("value")?;
        let value = self.string()?;
        self.key("actor")?;
        let actor = self.opt_string()?;
        self.key("actor_url")?;
        let actor_url = self.opt_string()?;
        self.key("api")?;
        let api = self.cookie_api()?;
        self.key("kind")?;
        let kind = self.write_kind()?;
        self.key("max_age_s")?;
        let max_age_s = self.opt_i64()?;
        self.key("changes")?;
        let changes = self.attr_changes()?;
        self.key("blocked")?;
        let blocked = self.bool_val()?;
        self.key("time_ms")?;
        let time_ms = self.u64_val()?;
        Ok(SetEvent {
            name,
            value,
            actor,
            actor_url,
            api,
            kind,
            max_age_s,
            changes,
            blocked,
            time_ms,
        })
    }

    fn read_event(&mut self) -> Result<ReadEvent, String> {
        self.struct_header(5, "ReadEvent")?;
        self.key("actor")?;
        let actor = self.opt_string()?;
        self.key("api")?;
        let api = self.cookie_api()?;
        self.key("cookies")?;
        let cookies = self.seq(|d| {
            d.expect_tag(TAG_SEQ, "a (name, value) pair")?;
            let len = d.varint()?;
            if len != 2 {
                return Err(format!("cookie pair of length {len}"));
            }
            Ok((d.string()?, d.string()?))
        })?;
        self.key("filtered_count")?;
        let filtered_count = self.u64_val()? as usize;
        self.key("time_ms")?;
        let time_ms = self.u64_val()?;
        Ok(ReadEvent {
            actor,
            api,
            cookies,
            filtered_count,
            time_ms,
        })
    }

    fn request_event(&mut self) -> Result<RequestEvent, String> {
        self.struct_header(8, "RequestEvent")?;
        self.key("url")?;
        let url = self.string()?;
        self.key("dest_domain")?;
        let dest_domain = self.opt_string()?;
        self.key("kind")?;
        let kind = self.request_kind()?;
        self.key("initiator")?;
        let initiator = self.opt_string()?;
        self.key("initiator_url")?;
        let initiator_url = self.opt_string()?;
        self.key("first_party")?;
        let first_party = self.string()?;
        self.key("cookie_header")?;
        let cookie_header = self.opt_string()?;
        self.key("time_ms")?;
        let time_ms = self.u64_val()?;
        Ok(RequestEvent {
            url,
            dest_domain,
            kind,
            initiator,
            initiator_url,
            first_party,
            cookie_header,
            time_ms,
        })
    }

    fn probe_event(&mut self) -> Result<ProbeEvent, String> {
        self.struct_header(4, "ProbeEvent")?;
        self.key("feature")?;
        let feature = self.string()?;
        self.key("cookie")?;
        let cookie = self.string()?;
        self.key("ok")?;
        let ok = self.bool_val()?;
        self.key("actor")?;
        let actor = self.opt_string()?;
        Ok(ProbeEvent {
            feature,
            cookie,
            ok,
            actor,
        })
    }

    fn dom_event(&mut self) -> Result<DomEvent, String> {
        self.struct_header(4, "DomEvent")?;
        self.key("actor")?;
        let actor = self.opt_string()?;
        self.key("owner")?;
        let owner = self.string()?;
        self.key("kind")?;
        let kind = self.string()?;
        self.key("blocked")?;
        let blocked = self.bool_val()?;
        Ok(DomEvent {
            actor,
            owner,
            kind,
            blocked,
        })
    }

    fn inclusion(&mut self) -> Result<ScriptInclusion, String> {
        self.struct_header(3, "ScriptInclusion")?;
        self.key("url")?;
        let url = self.string()?;
        self.key("domain")?;
        let domain = self.opt_string()?;
        self.key("direct")?;
        let direct = self.bool_val()?;
        Ok(ScriptInclusion {
            url,
            domain,
            direct,
        })
    }

    fn visit_log(&mut self) -> Result<VisitLog, String> {
        self.struct_header(9, "VisitLog")?;
        self.key("site_domain")?;
        let site_domain = self.string()?;
        self.key("rank")?;
        let rank = self.u64_val()? as usize;
        self.key("complete")?;
        let complete = self.bool_val()?;
        self.key("sets")?;
        let sets = self.seq(Dec::set_event)?;
        self.key("reads")?;
        let reads = self.seq(Dec::read_event)?;
        self.key("requests")?;
        let requests = self.seq(Dec::request_event)?;
        self.key("probes")?;
        let probes = self.seq(Dec::probe_event)?;
        self.key("dom_events")?;
        let dom_events = self.seq(Dec::dom_event)?;
        self.key("inclusions")?;
        let inclusions = self.seq(Dec::inclusion)?;
        Ok(VisitLog {
            site_domain,
            rank,
            complete,
            sets,
            reads,
            requests,
            probes,
            dom_events,
            inclusions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_instrument::VisitLog;

    fn roundtrip(c: &Content) -> Content {
        let mut buf = Vec::new();
        encode_content(c, &mut buf);
        decode_content(&buf).expect("decode")
    }

    #[test]
    fn scalar_roundtrips_are_exact() {
        for c in [
            Content::Null,
            Content::Bool(true),
            Content::Bool(false),
            Content::I64(0),
            Content::I64(-1),
            Content::I64(i64::MIN),
            Content::I64(i64::MAX),
            Content::U64(0),
            Content::U64(u64::MAX),
            Content::F64(0.25),
            Content::F64(-0.0),
            Content::F64(f64::MAX),
            Content::Str(String::new()),
            Content::Str("cookie=\u{1F36A}; path=/".into()),
        ] {
            let back = roundtrip(&c);
            // Compare through Debug: Content has no PartialEq, and
            // Debug is exact for every variant (including -0.0).
            assert_eq!(format!("{back:?}"), format!("{c:?}"));
        }
    }

    #[test]
    fn visit_log_payload_reprints_identically_to_jsonl() {
        let log = VisitLog {
            site_domain: "site42.example".into(),
            rank: 42,
            complete: true,
            ..VisitLog::default()
        };
        let content = log.to_content();
        let back = roundtrip(&content);
        // The decoded tree must reprint to the exact JSONL line the
        // text format would have stored — the cross-format oracle.
        assert_eq!(
            content_to_json_line(&back),
            serde_json::to_string(&log).unwrap()
        );
    }

    #[test]
    fn specialized_decoder_matches_generic_path_on_real_visits() {
        use cg_browser::{crawl_range, VisitConfig};
        use cg_webgen::{GenConfig, WebGenerator};
        let gen = WebGenerator::new(GenConfig::small(24), 0xC00C1E);
        let (outcomes, _) = crawl_range(&gen, &VisitConfig::regular(), 1, 24, 2);
        let mut complete = 0usize;
        for outcome in outcomes {
            let mut payload = Vec::new();
            encode_content(&outcome.log.to_content(), &mut payload);
            let generic =
                VisitLog::from_content(&decode_content(&payload).expect("generic decode"))
                    .expect("from_content");
            let fast = decode_visit_log(&payload).expect("specialized decode");
            assert_eq!(
                serde_json::to_string(&fast).unwrap(),
                serde_json::to_string(&generic).unwrap()
            );
            complete += usize::from(outcome.log.complete);
        }
        assert!(complete > 0, "want at least one complete (event-rich) log");
    }

    #[test]
    fn specialized_decoder_refuses_truncation_and_trailing_bytes() {
        let log = VisitLog {
            site_domain: "site7.example".into(),
            rank: 7,
            complete: false,
            ..VisitLog::default()
        };
        let mut payload = Vec::new();
        encode_content(&log.to_content(), &mut payload);
        assert!(decode_visit_log(&payload).is_ok());
        assert!(decode_visit_log(&payload[..payload.len() - 1]).is_err());
        let mut trailing = payload.clone();
        trailing.push(TAG_NULL);
        assert!(decode_visit_log(&trailing).is_err());
        // A payload that is valid Content but not a VisitLog.
        let mut not_a_log = Vec::new();
        encode_content(&Content::Str("hello".into()), &mut not_a_log);
        assert!(decode_visit_log(&not_a_log).is_err());
    }

    #[test]
    fn truncated_and_trailing_payloads_are_refused() {
        let mut buf = Vec::new();
        encode_content(&Content::Str("hello".into()), &mut buf);
        assert!(decode_content(&buf[..buf.len() - 1]).is_err(), "truncated");
        buf.push(TAG_NULL);
        assert!(decode_content(&buf).is_err(), "trailing bytes");
        assert!(decode_content(&[99]).is_err(), "unknown tag");
    }

    #[test]
    fn frame_check_covers_rank_and_payload() {
        let payload = b"payload";
        let base = frame_check(7, payload);
        assert_ne!(base, frame_check(8, payload), "rank is covered");
        assert_ne!(base, frame_check(7, b"payloae"), "payload is covered");
    }

    #[test]
    fn header_roundtrip() {
        let mut out = Vec::new();
        write_frame(&mut out, 0xDEAD_BEEF, b"abc");
        assert_eq!(out.len(), FRAME_HEADER + 3);
        let header = parse_header(out[..FRAME_HEADER].try_into().unwrap());
        assert_eq!(header.len, 3);
        assert_eq!(header.rank, 0xDEAD_BEEF);
        assert_eq!(header.check, frame_check(0xDEAD_BEEF, b"abc"));
    }

    #[test]
    fn format_serializes_as_string() {
        assert_eq!(
            serde_json::to_string(&SegmentFormat::Binary).unwrap(),
            "\"binary\""
        );
        let back: SegmentFormat = serde_json::from_str("\"jsonl\"").unwrap();
        assert_eq!(back, SegmentFormat::Jsonl);
        assert!(serde_json::from_str::<SegmentFormat>("\"cbor\"").is_err());
        assert_eq!(
            SegmentFormat::of_file("seg-3.bin"),
            Some(SegmentFormat::Binary)
        );
        assert_eq!(
            SegmentFormat::of_file("seg-3.jsonl"),
            Some(SegmentFormat::Jsonl)
        );
        assert_eq!(SegmentFormat::of_file("manifest.json"), None);
    }
}
