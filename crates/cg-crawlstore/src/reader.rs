//! The streaming read path: a rank-ordered k-way merge over segment
//! files, holding one record per segment in memory.

use crate::manifest::{Fingerprint, Manifest};
use crate::StoreError;
use cg_instrument::VisitLog;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// One buffered record: the head of one segment's stream.
struct Head {
    rank: u64,
    seg: usize,
    raw: String,
    value: serde_json::Value,
}

impl PartialEq for Head {
    fn eq(&self, other: &Head) -> bool {
        (self.rank, self.seg) == (other.rank, other.seg)
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Head) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Head) -> std::cmp::Ordering {
        (self.rank, self.seg).cmp(&(other.rank, other.seg))
    }
}

/// Streams a store's [`VisitLog`]s back in rank order without
/// materializing the crawl: a k-way merge whose memory footprint is one
/// record per segment, independent of crawl size.
///
/// ```no_run
/// use cg_crawlstore::CrawlReader;
///
/// let reader = CrawlReader::open("crawl-dir").unwrap();
/// for log in reader {
///     let log = log.unwrap(); // rank-ordered
///     if log.complete {
///         // feed an incremental analysis…
///     }
/// }
/// ```
/// Per-segment read state.
struct Segment {
    name: String,
    file: BufReader<File>,
    /// Durable records per the manifest watermark — the read bound.
    /// Bytes past it (a mid-flush batch of a live writer, a torn tail
    /// after a crash) are not yet part of the store's durable content.
    remaining: u64,
    /// Last rank pulled: the k-way merge is only correct over
    /// internally sorted runs, so a descending rank inside one segment
    /// is store corruption, not something to silently misorder.
    last_rank: Option<u64>,
}

pub struct CrawlReader {
    fingerprint: Fingerprint,
    segments: Vec<Segment>,
    heap: BinaryHeap<Reverse<Head>>,
    /// Set once a segment errors; the iterator then fuses.
    failed: bool,
}

impl CrawlReader {
    /// Opens the store at `dir` for streaming. Requires a manifest (the
    /// store must have been created by [`CrawlWriter`](crate::CrawlWriter)),
    /// and reads exactly the manifest's durable watermark of every
    /// listed segment: anything short of it is corruption (an error,
    /// never a silently smaller dataset), anything past it — e.g. a
    /// live writer's in-flight batch — is not yet durable and is left
    /// alone. Re-open after the next checkpoint to see more.
    pub fn open(dir: impl AsRef<Path>) -> Result<CrawlReader, StoreError> {
        let dir: PathBuf = dir.as_ref().to_path_buf();
        let manifest = Manifest::load(&dir)?.ok_or_else(|| StoreError::Corrupt {
            file: crate::MANIFEST_FILE.to_string(),
            detail: format!("no manifest in {}", dir.display()),
        })?;
        let mut segments = Vec::new();
        for meta in &manifest.segments {
            let file = File::open(dir.join(&meta.file)).map_err(|e| StoreError::Corrupt {
                file: meta.file.clone(),
                detail: format!("manifest lists segment but it cannot be opened: {e}"),
            })?;
            segments.push(Segment {
                name: meta.file.clone(),
                file: BufReader::new(file),
                remaining: meta.synced_records,
                last_rank: None,
            });
        }
        let mut reader = CrawlReader {
            fingerprint: manifest.fingerprint,
            segments,
            heap: BinaryHeap::new(),
            failed: false,
        };
        for i in 0..reader.segments.len() {
            if let Some(head) = reader.pull(i)? {
                reader.heap.push(Reverse(head));
            }
        }
        Ok(reader)
    }

    /// The crawl this store belongs to.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Reads the next durable record of segment `seg`; `Ok(None)` once
    /// the manifest watermark is exhausted. Anything less than the
    /// watermark's worth of complete records is corruption.
    fn pull(&mut self, seg: usize) -> Result<Option<Head>, StoreError> {
        let segment = &mut self.segments[seg];
        if segment.remaining == 0 {
            return Ok(None);
        }
        let mut raw = String::new();
        let n = segment.file.read_line(&mut raw)?;
        if n == 0 || !raw.ends_with('\n') {
            // EOF or a torn line *below* the durable watermark: records
            // the manifest promises are missing.
            return Err(StoreError::Corrupt {
                file: segment.name.clone(),
                detail: format!(
                    "segment ends {} records short of its manifest watermark",
                    segment.remaining
                ),
            });
        }
        segment.remaining -= 1;
        raw.pop();
        let value: serde_json::Value =
            serde_json::from_str(&raw).map_err(|e| StoreError::Corrupt {
                file: segment.name.clone(),
                detail: e.to_string(),
            })?;
        let rank =
            value
                .get("rank")
                .and_then(|r| r.as_u64())
                .ok_or_else(|| StoreError::Corrupt {
                    file: segment.name.clone(),
                    detail: "record without a rank".to_string(),
                })?;
        if let Some(prev) = segment.last_rank {
            if rank <= prev {
                // The k-way merge is only correct over internally
                // sorted runs; the writer guarantees this by giving
                // every handle a fresh file. A descending rank means
                // the store was written some other way — refuse rather
                // than silently emit out of order.
                return Err(StoreError::Corrupt {
                    file: segment.name.clone(),
                    detail: format!("segment not rank-sorted (rank {rank} after {prev})"),
                });
            }
        }
        segment.last_rank = Some(rank);
        Ok(Some(Head {
            rank,
            seg,
            raw,
            value,
        }))
    }

    /// Pops the lowest-rank head and refills from its segment.
    fn pop_head(&mut self) -> Option<Result<Head, StoreError>> {
        if self.failed {
            return None;
        }
        let Reverse(head) = self.heap.pop()?;
        match self.pull(head.seg) {
            Ok(Some(next)) => self.heap.push(Reverse(next)),
            Ok(None) => {}
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        }
        Some(Ok(head))
    }

    /// The rank-ordered raw JSONL lines (newlines stripped). Two stores
    /// of the same crawl are equivalent iff these streams are
    /// byte-identical — the durability tests' oracle.
    pub fn raw_lines(self) -> RawLines {
        RawLines(self)
    }
}

impl Iterator for CrawlReader {
    type Item = Result<VisitLog, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        let head = match self.pop_head()? {
            Ok(h) => h,
            Err(e) => return Some(Err(e)),
        };
        Some(
            serde_json::from_value(head.value).map_err(|e| StoreError::Corrupt {
                file: self.segments[head.seg].name.clone(),
                detail: e.to_string(),
            }),
        )
    }
}

/// Iterator over a store's merged raw JSONL lines (see
/// [`CrawlReader::raw_lines`]).
pub struct RawLines(CrawlReader);

impl Iterator for RawLines {
    type Item = Result<String, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.0.pop_head()?.map(|h| h.raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::CrawlWriter;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-reader-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            master_seed: 1,
            from: 1,
            to: 100,
            visit_config: "cfg".into(),
            generator: "gen".into(),
        }
    }

    fn log(rank: usize) -> VisitLog {
        VisitLog {
            site_domain: format!("site{rank}.com"),
            rank,
            complete: !rank.is_multiple_of(3),
            ..VisitLog::default()
        }
    }

    #[test]
    fn merge_is_rank_ordered_across_segments() {
        let dir = tmp_dir("merge");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        // Interleave ranks across three segments, none sorted globally.
        let mut segs = [
            store.segment().unwrap(),
            store.segment().unwrap(),
            store.segment().unwrap(),
        ];
        for rank in 1..=30usize {
            segs[rank % 3].record(&log(rank)).unwrap();
        }
        for seg in segs {
            seg.finish().unwrap();
        }
        let ranks: Vec<usize> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| l.unwrap().rank)
            .collect();
        assert_eq!(ranks, (1..=30).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_lines_match_reserialized_logs() {
        let dir = tmp_dir("raw");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut seg = store.segment().unwrap();
        for rank in [5usize, 7, 9] {
            seg.record(&log(rank)).unwrap();
        }
        seg.finish().unwrap();
        let raw: Vec<String> = CrawlReader::open(&dir)
            .unwrap()
            .raw_lines()
            .map(|l| l.unwrap())
            .collect();
        let reser: Vec<String> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| serde_json::to_string(&l.unwrap()).unwrap())
            .collect();
        assert_eq!(raw, reser);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_backfilled_lower_ranks_merge_in_order() {
        let dir = tmp_dir("backfill");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut a = store.segment().unwrap();
        for r in [1usize, 3, 5] {
            a.record(&log(r)).unwrap();
        }
        a.finish().unwrap();
        let mut b = store.segment().unwrap();
        for r in [4usize, 6] {
            b.record(&log(r)).unwrap();
        }
        b.finish().unwrap();
        drop(store);
        // Resume back-fills the hole (rank 2, below every segment's max
        // rank) — it lands in a fresh segment, so the merge stays
        // correct instead of burying 2 behind 5.
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        assert!(!store.done_ranks().contains(&2));
        let mut c = store.segment().unwrap();
        c.record(&log(2)).unwrap();
        c.finish().unwrap();
        drop(store);
        let ranks: Vec<usize> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| l.unwrap().rank)
            .collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsorted_segment_is_refused_not_misordered() {
        let dir = tmp_dir("unsorted");
        std::fs::create_dir_all(&dir).unwrap();
        // A hand-written store (as an older or foreign writer might
        // leave) whose segment violates the sorted-run invariant but
        // whose manifest claims it durable.
        std::fs::write(
            dir.join("seg-7.jsonl"),
            "{\"rank\":5,\"site_domain\":\"a\",\"complete\":true}\n\
             {\"rank\":2,\"site_domain\":\"b\",\"complete\":true}\n",
        )
        .unwrap();
        let mut m = Manifest::new(fp());
        m.segment_mut("seg-7.jsonl").synced_records = 2;
        m.store(&dir).unwrap();
        // The reader surfaces the violation instead of emitting records
        // out of rank order…
        let results: Vec<_> = match CrawlReader::open(&dir) {
            Ok(r) => r.collect(),
            Err(e) => vec![Err(e)],
        };
        assert!(
            results.iter().any(|r| matches!(
                r,
                Err(StoreError::Corrupt { detail, .. }) if detail.contains("not rank-sorted")
            )),
            "descending rank must surface as corruption, got {results:?}"
        );
        // …and writer recovery refuses to adopt the store at all.
        assert!(matches!(
            CrawlWriter::open(&dir, fp()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_refuses_descending_ranks() {
        let dir = tmp_dir("descend");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(5)).unwrap();
        assert!(matches!(
            seg.record(&log(2)),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_refused() {
        let dir = tmp_dir("nomani");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            CrawlReader::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored_when_reading() {
        let dir = tmp_dir("torntail");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.finish().unwrap();
        drop(store);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("seg-0.jsonl"))
            .unwrap();
        f.write_all(b"{\"half").unwrap();
        drop(f);
        let ranks: Vec<usize> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| l.unwrap().rank)
            .collect();
        assert_eq!(ranks, vec![1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
