//! The streaming read path: a rank-ordered k-way merge over segment
//! files, holding one record per segment in memory — plus per-segment
//! streams ([`SegmentStream`]) that parallel analysis folds consume
//! one whole segment at a time.

use crate::codec::{self, SegmentFormat, FRAME_HEADER};
use crate::manifest::{Fingerprint, Manifest, SegmentMeta};
use crate::StoreError;
use cg_instrument::VisitLog;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};

/// One record's undecoded body, as pulled from a segment.
enum Body {
    /// A JSONL line (newline stripped) and its parsed value tree.
    Json {
        raw: String,
        value: serde_json::Value,
    },
    /// A binary frame's payload, checksum already verified. Decoding
    /// to a [`VisitLog`] happens only when the record is consumed — no
    /// text is ever parsed on this path.
    Bin { payload: Vec<u8> },
}

impl Body {
    /// Decodes the record into a [`VisitLog`].
    fn into_log(self, file: &str) -> Result<VisitLog, StoreError> {
        match self {
            Body::Json { value, .. } => {
                serde_json::from_value(value).map_err(|e| StoreError::Corrupt {
                    file: file.to_string(),
                    detail: e.to_string(),
                })
            }
            Body::Bin { payload } => {
                // The specialized decoder: bytes straight to the log,
                // no intermediate `Content` tree. Its agreement with
                // the generic path is pinned by codec unit tests and
                // the cross-format differential tests.
                codec::decode_visit_log(&payload).map_err(|e| StoreError::Corrupt {
                    file: file.to_string(),
                    detail: e,
                })
            }
        }
    }

    /// The record as the compact JSON line a JSONL segment stores —
    /// the format-independent equivalence oracle.
    fn into_json_line(self, file: &str) -> Result<String, StoreError> {
        match self {
            Body::Json { raw, .. } => Ok(raw),
            Body::Bin { payload } => {
                let content = codec::decode_content(&payload).map_err(|e| StoreError::Corrupt {
                    file: file.to_string(),
                    detail: e,
                })?;
                Ok(codec::content_to_json_line(&content))
            }
        }
    }
}

/// One buffered record: the head of one segment's stream.
struct Head {
    rank: u64,
    seg: usize,
    body: Body,
}

impl PartialEq for Head {
    fn eq(&self, other: &Head) -> bool {
        (self.rank, self.seg) == (other.rank, other.seg)
    }
}
impl Eq for Head {}
impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Head) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Head) -> std::cmp::Ordering {
        (self.rank, self.seg).cmp(&(other.rank, other.seg))
    }
}

/// Per-segment read state: a buffered file cursor bounded by the
/// manifest's durability watermark, enforcing the sorted-run invariant.
struct Segment {
    name: String,
    format: SegmentFormat,
    file: BufReader<File>,
    /// Durable records per the manifest watermark — the read bound.
    /// Bytes past it (a mid-flush batch of a live writer, a torn tail
    /// after a crash) are not yet part of the store's durable content.
    remaining: u64,
    /// Last rank pulled: the k-way merge is only correct over
    /// internally sorted runs, so a descending rank inside one segment
    /// is store corruption, not something to silently misorder.
    last_rank: Option<u64>,
}

impl Segment {
    /// Opens one manifest-listed segment for streaming.
    fn open(dir: &Path, meta: &SegmentMeta) -> Result<Segment, StoreError> {
        let format = SegmentFormat::of_file(&meta.file).ok_or_else(|| StoreError::Corrupt {
            file: meta.file.clone(),
            detail: "segment file has no recognized format extension".to_string(),
        })?;
        let file = File::open(dir.join(&meta.file)).map_err(|e| StoreError::Corrupt {
            file: meta.file.clone(),
            detail: format!("manifest lists segment but it cannot be opened: {e}"),
        })?;
        Ok(Segment {
            name: meta.file.clone(),
            format,
            file: BufReader::new(file),
            remaining: meta.synced_records,
            last_rank: None,
        })
    }

    /// An EOF (or torn record) *below* the durable watermark: records
    /// the manifest promises are missing.
    fn short_of_watermark(&self) -> StoreError {
        StoreError::Corrupt {
            file: self.name.clone(),
            detail: format!(
                "segment ends {} records short of its manifest watermark",
                self.remaining
            ),
        }
    }

    /// Reads the next durable record; `Ok(None)` once the manifest
    /// watermark is exhausted. Anything less than the watermark's worth
    /// of complete records is corruption.
    fn next_record(&mut self) -> Result<Option<(u64, Body)>, StoreError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let tele = crate::telemetry::metrics();
        let (rank, body) = match self.format {
            SegmentFormat::Jsonl => {
                let mut raw = String::new();
                let n = self.file.read_line(&mut raw)?;
                if n == 0 || !raw.ends_with('\n') {
                    return Err(self.short_of_watermark());
                }
                tele.bytes_replayed.add(n as u64);
                raw.pop();
                let value: serde_json::Value =
                    serde_json::from_str(&raw).map_err(|e| StoreError::Corrupt {
                        file: self.name.clone(),
                        detail: e.to_string(),
                    })?;
                let rank = value.get("rank").and_then(|r| r.as_u64()).ok_or_else(|| {
                    StoreError::Corrupt {
                        file: self.name.clone(),
                        detail: "record without a rank".to_string(),
                    }
                })?;
                (rank, Body::Json { raw, value })
            }
            SegmentFormat::Binary => {
                let mut header = [0u8; FRAME_HEADER];
                read_frame_bytes(&mut self.file, &mut header)?
                    .then_some(())
                    .ok_or_else(|| self.short_of_watermark())?;
                let header = codec::parse_header(&header);
                let mut payload = vec![0u8; header.len];
                read_frame_bytes(&mut self.file, &mut payload)?
                    .then_some(())
                    .ok_or_else(|| self.short_of_watermark())?;
                if codec::frame_check(header.rank, &payload) != header.check {
                    return Err(StoreError::Corrupt {
                        file: self.name.clone(),
                        detail: "frame checksum mismatch below the manifest watermark".to_string(),
                    });
                }
                tele.bytes_replayed
                    .add((FRAME_HEADER + payload.len()) as u64);
                (header.rank, Body::Bin { payload })
            }
        };
        tele.records_replayed.incr();
        self.remaining -= 1;
        if let Some(prev) = self.last_rank {
            if rank <= prev {
                // The k-way merge is only correct over internally
                // sorted runs; the writer guarantees this by giving
                // every handle a fresh file. A descending rank means
                // the store was written some other way — refuse rather
                // than silently emit out of order.
                return Err(StoreError::Corrupt {
                    file: self.name.clone(),
                    detail: format!("segment not rank-sorted (rank {rank} after {prev})"),
                });
            }
        }
        self.last_rank = Some(rank);
        Ok(Some((rank, body)))
    }
}

/// `read_exact` that reports a clean-or-torn EOF as `Ok(false)` instead
/// of conflating it with real I/O failure.
fn read_frame_bytes(file: &mut BufReader<File>, buf: &mut [u8]) -> Result<bool, StoreError> {
    match file.read_exact(buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Streams a store's [`VisitLog`]s back in rank order without
/// materializing the crawl: a k-way merge whose memory footprint is one
/// record per segment, independent of crawl size.
///
/// ```no_run
/// use cg_crawlstore::CrawlReader;
///
/// let reader = CrawlReader::open("crawl-dir").unwrap();
/// for log in reader {
///     let log = log.unwrap(); // rank-ordered
///     if log.complete {
///         // feed an incremental analysis…
///     }
/// }
/// ```
pub struct CrawlReader {
    fingerprint: Fingerprint,
    segments: Vec<Segment>,
    heap: BinaryHeap<Reverse<Head>>,
    /// Set once a segment errors; the iterator then fuses.
    failed: bool,
}

impl CrawlReader {
    /// Opens the store at `dir` for streaming. Requires a manifest (the
    /// store must have been created by [`CrawlWriter`](crate::CrawlWriter)),
    /// and reads exactly the manifest's durable watermark of every
    /// listed segment: anything short of it is corruption (an error,
    /// never a silently smaller dataset), anything past it — e.g. a
    /// live writer's in-flight batch — is not yet durable and is left
    /// alone. Re-open after the next checkpoint to see more.
    pub fn open(dir: impl AsRef<Path>) -> Result<CrawlReader, StoreError> {
        let dir: PathBuf = dir.as_ref().to_path_buf();
        let manifest = load_manifest(&dir)?;
        let mut segments = Vec::new();
        for meta in &manifest.segments {
            segments.push(Segment::open(&dir, meta)?);
        }
        let mut reader = CrawlReader {
            fingerprint: manifest.fingerprint,
            segments,
            heap: BinaryHeap::new(),
            failed: false,
        };
        for i in 0..reader.segments.len() {
            if let Some(head) = reader.pull(i)? {
                reader.heap.push(Reverse(head));
            }
        }
        Ok(reader)
    }

    /// The crawl this store belongs to.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Reads the next durable record of segment `seg` into a merge head.
    fn pull(&mut self, seg: usize) -> Result<Option<Head>, StoreError> {
        Ok(self.segments[seg]
            .next_record()?
            .map(|(rank, body)| Head { rank, seg, body }))
    }

    /// Pops the lowest-rank head and refills from its segment.
    fn pop_head(&mut self) -> Option<Result<Head, StoreError>> {
        if self.failed {
            return None;
        }
        let Reverse(head) = self.heap.pop()?;
        match self.pull(head.seg) {
            Ok(Some(next)) => self.heap.push(Reverse(next)),
            Ok(None) => {}
            Err(e) => {
                self.failed = true;
                return Some(Err(e));
            }
        }
        Some(Ok(head))
    }

    /// The rank-ordered stream as compact JSON lines. For JSONL stores
    /// these are the raw on-disk lines (newlines stripped); for binary
    /// stores each frame is decoded and reprinted — byte-identical to
    /// what a JSONL store of the same crawl holds. Two stores of the
    /// same crawl are equivalent iff these streams are byte-identical —
    /// the durability and cross-format tests' oracle.
    pub fn raw_lines(self) -> RawLines {
        RawLines(self)
    }
}

impl Iterator for CrawlReader {
    type Item = Result<VisitLog, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        let head = match self.pop_head()? {
            Ok(h) => h,
            Err(e) => return Some(Err(e)),
        };
        Some(head.body.into_log(&self.segments[head.seg].name))
    }
}

/// Iterator over a store's merged records as compact JSON lines (see
/// [`CrawlReader::raw_lines`]).
pub struct RawLines(CrawlReader);

impl Iterator for RawLines {
    type Item = Result<String, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        let head = match self.0.pop_head()? {
            Ok(h) => h,
            Err(e) => return Some(Err(e)),
        };
        Some(head.body.into_json_line(&self.0.segments[head.seg].name))
    }
}

/// One segment's records in file order — each segment is an internally
/// rank-sorted run, so this is also rank order *within* the segment.
/// The unit of work for [`par_fold`](crate::par_fold): N segments fold
/// on N workers with no cross-worker coordination, because segments
/// hold disjoint rank sets.
pub struct SegmentStream {
    segment: Segment,
    failed: bool,
}

impl SegmentStream {
    /// The segment's file name (relative to the store directory).
    pub fn name(&self) -> &str {
        &self.segment.name
    }
}

impl Iterator for SegmentStream {
    type Item = Result<VisitLog, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let result = match self.segment.next_record() {
            Ok(Some((_, body))) => body.into_log(&self.segment.name),
            Ok(None) => return None,
            Err(e) => Err(e),
        };
        if result.is_err() {
            self.failed = true;
        }
        Some(result)
    }
}

/// Opens every manifest-listed segment of the store at `dir` as an
/// independent stream, in manifest order (sorted by file name — the
/// same fixed order [`par_fold`](crate::par_fold) merges partials in).
pub fn segment_streams(dir: impl AsRef<Path>) -> Result<Vec<SegmentStream>, StoreError> {
    let dir = dir.as_ref();
    let manifest = load_manifest(dir)?;
    manifest
        .segments
        .iter()
        .map(|meta| {
            Segment::open(dir, meta).map(|segment| SegmentStream {
                segment,
                failed: false,
            })
        })
        .collect()
}

/// Loads the manifest, refusing a directory that has none.
fn load_manifest(dir: &Path) -> Result<Manifest, StoreError> {
    Manifest::load(dir)?.ok_or_else(|| StoreError::Corrupt {
        file: crate::MANIFEST_FILE.to_string(),
        detail: format!("no manifest in {}", dir.display()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::CrawlWriter;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-reader-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            master_seed: 1,
            from: 1,
            to: 100,
            visit_config: "cfg".into(),
            generator: "gen".into(),
            format: SegmentFormat::Jsonl,
        }
    }

    fn fp_bin() -> Fingerprint {
        fp().with_format(SegmentFormat::Binary)
    }

    fn log(rank: usize) -> VisitLog {
        VisitLog {
            site_domain: format!("site{rank}.com"),
            rank,
            complete: !rank.is_multiple_of(3),
            ..VisitLog::default()
        }
    }

    #[test]
    fn merge_is_rank_ordered_across_segments() {
        for fingerprint in [fp(), fp_bin()] {
            let dir = tmp_dir(&format!("merge-{}", fingerprint.format));
            let store = CrawlWriter::open(&dir, fingerprint).unwrap();
            // Interleave ranks across three segments, none sorted globally.
            let mut segs = [
                store.segment().unwrap(),
                store.segment().unwrap(),
                store.segment().unwrap(),
            ];
            for rank in 1..=30usize {
                segs[rank % 3].record(&log(rank)).unwrap();
            }
            for seg in segs {
                seg.finish().unwrap();
            }
            let ranks: Vec<usize> = CrawlReader::open(&dir)
                .unwrap()
                .map(|l| l.unwrap().rank)
                .collect();
            assert_eq!(ranks, (1..=30).collect::<Vec<_>>());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn raw_lines_match_reserialized_logs() {
        for fingerprint in [fp(), fp_bin()] {
            let dir = tmp_dir(&format!("raw-{}", fingerprint.format));
            let store = CrawlWriter::open(&dir, fingerprint).unwrap();
            let mut seg = store.segment().unwrap();
            for rank in [5usize, 7, 9] {
                seg.record(&log(rank)).unwrap();
            }
            seg.finish().unwrap();
            let raw: Vec<String> = CrawlReader::open(&dir)
                .unwrap()
                .raw_lines()
                .map(|l| l.unwrap())
                .collect();
            let reser: Vec<String> = CrawlReader::open(&dir)
                .unwrap()
                .map(|l| serde_json::to_string(&l.unwrap()).unwrap())
                .collect();
            assert_eq!(raw, reser);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn resume_backfilled_lower_ranks_merge_in_order() {
        let dir = tmp_dir("backfill");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut a = store.segment().unwrap();
        for r in [1usize, 3, 5] {
            a.record(&log(r)).unwrap();
        }
        a.finish().unwrap();
        let mut b = store.segment().unwrap();
        for r in [4usize, 6] {
            b.record(&log(r)).unwrap();
        }
        b.finish().unwrap();
        drop(store);
        // Resume back-fills the hole (rank 2, below every segment's max
        // rank) — it lands in a fresh segment, so the merge stays
        // correct instead of burying 2 behind 5.
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        assert!(!store.done_ranks().contains(&2));
        let mut c = store.segment().unwrap();
        c.record(&log(2)).unwrap();
        c.finish().unwrap();
        drop(store);
        let ranks: Vec<usize> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| l.unwrap().rank)
            .collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsorted_segment_is_refused_not_misordered() {
        let dir = tmp_dir("unsorted");
        std::fs::create_dir_all(&dir).unwrap();
        // A hand-written store (as an older or foreign writer might
        // leave) whose segment violates the sorted-run invariant but
        // whose manifest claims it durable.
        std::fs::write(
            dir.join("seg-7.jsonl"),
            "{\"rank\":5,\"site_domain\":\"a\",\"complete\":true}\n\
             {\"rank\":2,\"site_domain\":\"b\",\"complete\":true}\n",
        )
        .unwrap();
        let mut m = Manifest::new(fp());
        m.segment_mut("seg-7.jsonl").synced_records = 2;
        m.store(&dir).unwrap();
        // The reader surfaces the violation instead of emitting records
        // out of rank order…
        let results: Vec<_> = match CrawlReader::open(&dir) {
            Ok(r) => r.collect(),
            Err(e) => vec![Err(e)],
        };
        assert!(
            results.iter().any(|r| matches!(
                r,
                Err(StoreError::Corrupt { detail, .. }) if detail.contains("not rank-sorted")
            )),
            "descending rank must surface as corruption, got {results:?}"
        );
        // …and writer recovery refuses to adopt the store at all.
        assert!(matches!(
            CrawlWriter::open(&dir, fp()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_refuses_descending_ranks() {
        let dir = tmp_dir("descend");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(5)).unwrap();
        assert!(matches!(
            seg.record(&log(2)),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_refused() {
        let dir = tmp_dir("nomani");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            CrawlReader::open(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored_when_reading() {
        let dir = tmp_dir("torntail");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.finish().unwrap();
        drop(store);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("seg-0.jsonl"))
            .unwrap();
        f.write_all(b"{\"half").unwrap();
        drop(f);
        let ranks: Vec<usize> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| l.unwrap().rank)
            .collect();
        assert_eq!(ranks, vec![1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_torn_tail_is_ignored_when_reading() {
        let dir = tmp_dir("bin-torntail");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.finish().unwrap();
        drop(store);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("seg-0.bin"))
            .unwrap();
        f.write_all(b"\x99\x00\x00").unwrap(); // half a frame header
        drop(f);
        let ranks: Vec<usize> = CrawlReader::open(&dir)
            .unwrap()
            .map(|l| l.unwrap().rank)
            .collect();
        assert_eq!(ranks, vec![1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_watermark_shortfall_is_corrupt() {
        let dir = tmp_dir("bin-short");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.record(&log(2)).unwrap();
        seg.finish().unwrap();
        drop(store);
        // Chop the final frame off WITHOUT updating the manifest: the
        // reader must refuse the silently smaller dataset.
        let path = dir.join("seg-0.bin");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let results: Vec<_> = CrawlReader::open(&dir).unwrap().collect();
        assert!(
            results.iter().any(|r| matches!(
                r,
                Err(StoreError::Corrupt { detail, .. })
                    if detail.contains("short of its manifest watermark")
                        || detail.contains("checksum mismatch")
            )),
            "watermark shortfall must surface as corruption, got {results:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_streams_cover_the_store_disjointly() {
        let dir = tmp_dir("streams");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap();
        let mut a = store.segment().unwrap();
        let mut b = store.segment().unwrap();
        for rank in 1..=10usize {
            if rank % 2 == 0 { &mut a } else { &mut b }
                .record(&log(rank))
                .unwrap();
        }
        a.finish().unwrap();
        b.finish().unwrap();
        drop(store);
        let mut all: Vec<usize> = Vec::new();
        for stream in segment_streams(&dir).unwrap() {
            let ranks: Vec<usize> = stream.map(|l| l.unwrap().rank).collect();
            // Each stream is internally rank-sorted…
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
            all.extend(ranks);
        }
        // …and together they cover the store exactly once.
        all.sort_unstable();
        assert_eq!(all, (1..=10).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
