//! The durable write path: per-worker segment files, fsync'd batches,
//! crash recovery, and resume.
//!
//! Every [`SegmentWriter`] gets a **fresh** segment file (`seg-<n>.jsonl`
//! or `seg-<n>.bin` per the fingerprint's [`SegmentFormat`], `n`
//! strictly increasing across the store's lifetime, crash-resumes
//! included). Within one crawl a worker's ranks are monotonically
//! increasing (workers pull from a shared atomic counter), so every
//! segment file is an internally rank-sorted run — the invariant the
//! reader's k-way merge depends on. Appending resumed ranks into an old
//! segment would bury low ranks behind high ones and break the merge.

use crate::codec::{self, SegmentFormat, FRAME_HEADER};
use crate::index::{self, IndexEntry, INDEX_STRIDE};
use crate::manifest::{Fingerprint, Manifest};
use crate::StoreError;
use cg_browser::{SinkWorker, VisitConfig, VisitOutcome, VisitSink};
use cg_instrument::VisitLog;
use cg_webgen::WebGenerator;
use serde::Serialize as _;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Records to buffer between fsync + manifest checkpoints.
const DEFAULT_BATCH: usize = 64;

/// Writer-exclusion lock file inside a store directory.
const LOCK_FILE: &str = ".lock";

/// Shared store state: the directory plus the checkpoint record every
/// segment writer updates when it makes a batch durable.
struct StoreShared {
    dir: PathBuf,
    manifest: Mutex<Manifest>,
    /// On-disk segment format (cached from the fingerprint so the hot
    /// path never takes the manifest lock to learn it).
    format: SegmentFormat,
    batch: usize,
    /// Next unused segment number (seeded past every file on disk), so
    /// each [`SegmentWriter`] opens a fresh, exclusively-owned file.
    next_seg: AtomicUsize,
    /// OS advisory lock on `.lock`, held for the life of the store (and
    /// of every [`SegmentWriter`] via this `Arc`); released by the OS
    /// even on `kill -9`.
    _lock: File,
}

impl StoreShared {
    /// Marks `records`/`max_rank` of `file` durable and persists the
    /// manifest. Called only after the segment bytes are fsync'd.
    fn checkpoint(&self, file: &str, records: u64, max_rank: u64) -> Result<(), StoreError> {
        let mut m = self.manifest.lock().expect("manifest lock poisoned");
        let seg = m.segment_mut(file);
        seg.synced_records = records;
        seg.max_rank = seg.max_rank.max(max_rank);
        m.store(&self.dir)
    }
}

/// Aggregate size of a store on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files present.
    pub segments: usize,
    /// Visit records known durable across all segments.
    pub records: u64,
    /// Total segment bytes on disk.
    pub bytes: u64,
}

/// The append side of a crawl store.
///
/// Opening a directory that already holds a crawl with the same
/// [`Fingerprint`] turns the store into a checkpoint: torn trailing
/// lines are truncated away, watermarks are re-derived from the
/// surviving records, and [`CrawlWriter::done_ranks`] reports which
/// ranks need no re-visit. Used as a
/// [`VisitSink`], the store skips those ranks automatically — including
/// ranks committed earlier through the *same* open store, so sequential
/// `crawl_into` calls compose. Run crawls one at a time per open store:
/// a process-level `.lock` excludes other processes, and concurrent
/// same-store crawls in one process have no sane interleaving (each
/// would race the other's not-yet-merged ranks).
///
/// ```no_run
/// use cg_browser::{crawl_into, VisitConfig};
/// use cg_crawlstore::{CrawlWriter, Fingerprint};
/// use cg_webgen::{GenConfig, WebGenerator};
///
/// let gen = WebGenerator::new(GenConfig::small(500), 1);
/// let cfg = VisitConfig::regular();
/// let fp = Fingerprint::new(gen.master_seed(), 1, 500, &cfg, gen.config());
/// let store = CrawlWriter::open("crawl-dir", fp).unwrap();
/// println!("{} ranks already durable", store.done_ranks().len());
/// crawl_into(&gen, &cfg, 1, 500, 4, &store).unwrap(); // resumes
/// ```
pub struct CrawlWriter {
    shared: Arc<StoreShared>,
    /// Ranks durable when the store was opened.
    done: HashSet<usize>,
    /// Ranks committed through this writer since open (updated as
    /// worker segments merge), so a second `crawl_into` over the same
    /// open store skips them instead of appending duplicates.
    session_done: RwLock<HashSet<usize>>,
}

impl CrawlWriter {
    /// Opens (creating or resuming) the store at `dir` for the crawl
    /// identified by `fingerprint`.
    ///
    /// * A missing/empty directory becomes a fresh store.
    /// * An existing store with the same fingerprint is recovered: each
    ///   segment is scanned, a torn trailing line (a crash mid-append)
    ///   is truncated off, and every surviving record's rank lands in
    ///   [`CrawlWriter::done_ranks`].
    /// * An existing store with a different fingerprint is refused
    ///   ([`StoreError::FingerprintMismatch`]) — its records would not
    ///   match this crawl's visits.
    pub fn open(
        dir: impl AsRef<Path>,
        fingerprint: Fingerprint,
    ) -> Result<CrawlWriter, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // Writer exclusion: two appenders interleaving batches into the
        // same segment files would corrupt them beyond truncation
        // repair. The advisory lock dies with the process, so a crashed
        // crawl never wedges its store.
        let lock = File::create(dir.join(LOCK_FILE))?;
        match lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(StoreError::Locked { dir });
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(StoreError::Io(e)),
        }
        let mut manifest = match Manifest::load(&dir)? {
            Some(m) => {
                if m.fingerprint != fingerprint {
                    return Err(StoreError::FingerprintMismatch {
                        found: Box::new(m.fingerprint),
                        expected: Box::new(fingerprint),
                    });
                }
                m
            }
            None => Manifest::new(fingerprint),
        };

        // Recovery scan: every segment file on disk (the manifest may
        // lag behind a crash), truncating torn tails and collecting the
        // completed-rank set. New writers always get fresh file numbers
        // past everything seen here.
        let mut done = HashSet::new();
        let mut next_seg = 0usize;
        let format = manifest.fingerprint.format;
        manifest.segments.clear();
        for file in segment_files(&dir)? {
            // A segment in the other format means the directory holds
            // leftovers of a different store — refuse like any other
            // unrepairable damage (the fingerprint gate catches the
            // common case; this catches hand-mixed directories whose
            // manifest lagged a crash).
            if codec::SegmentFormat::of_file(&file) != Some(format) {
                return Err(StoreError::Corrupt {
                    file: file.clone(),
                    detail: format!("segment format does not match the store's ({format})"),
                });
            }
            let path = dir.join(&file);
            let scan = recover_segment(&path, &file, format)?;
            if let Some(n) = segment_number(&file) {
                next_seg = next_seg.max(n + 1);
            }
            if scan.ranks.is_empty() {
                // Nothing durable survived (a crash before the first
                // commit): drop the empty file rather than carry it.
                std::fs::remove_file(&path)?;
                index::remove_index(&dir, &file);
                continue;
            }
            for r in &scan.ranks {
                done.insert(*r);
            }
            if format == SegmentFormat::Binary {
                // The recovery scan just walked every surviving frame;
                // rewriting the sidecar from it costs nothing extra and
                // upgrades index-less stores from older writers.
                let _ = index::write_index(&dir, &file, &scan.index);
            }
            let seg = manifest.segment_mut(&file);
            seg.synced_records = scan.ranks.len() as u64;
            seg.max_rank = scan.ranks.iter().copied().max().unwrap_or(0) as u64;
        }
        manifest.store(&dir)?;

        Ok(CrawlWriter {
            shared: Arc::new(StoreShared {
                dir,
                manifest: Mutex::new(manifest),
                format,
                batch: DEFAULT_BATCH,
                next_seg: AtomicUsize::new(next_seg),
                _lock: lock,
            }),
            done,
            session_done: RwLock::new(HashSet::new()),
        })
    }

    /// Sets the fsync batch size (records buffered between durability
    /// checkpoints; default 64). A batch of 1 fsyncs every record.
    pub fn with_batch(mut self, batch: usize) -> CrawlWriter {
        Arc::get_mut(&mut self.shared)
            .expect("with_batch must be called before opening segments")
            .batch = batch.max(1);
        self
    }

    /// Ranks already durable in this store — a resumed crawl skips them.
    pub fn done_ranks(&self) -> &HashSet<usize> {
        &self.done
    }

    /// The crawl this store belongs to.
    pub fn fingerprint(&self) -> Fingerprint {
        self.shared
            .manifest
            .lock()
            .expect("manifest lock poisoned")
            .fingerprint
            .clone()
    }

    /// Opens an append handle on a **fresh** segment file
    /// (`seg-<n>.jsonl` or `seg-<n>.bin` per the store's format, `n`
    /// never reused — not even across crash resumes). Each handle owns
    /// its file exclusively and appends take no cross-worker lock (the
    /// shared manifest is touched only at batch checkpoints). Fresh
    /// files are what keep every segment an internally rank-sorted run
    /// when a resume back-fills ranks lower than anything already
    /// stored.
    pub fn segment(&self) -> Result<SegmentWriter, StoreError> {
        crate::telemetry::metrics().segments_opened.incr();
        let n = self.shared.next_seg.fetch_add(1, Ordering::Relaxed);
        let file_name = format!("seg-{n}.{}", self.shared.format.extension());
        let path = self.shared.dir.join(&file_name);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        Ok(SegmentWriter {
            shared: Arc::clone(&self.shared),
            file_name,
            file,
            buf: Vec::new(),
            scratch: Vec::new(),
            pending: 0,
            records: 0,
            durable_bytes: 0,
            max_rank: 0,
            session_ranks: Vec::new(),
            index: Vec::new(),
        })
    }

    /// Segment/record/byte totals (durable records only).
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let m = self.shared.manifest.lock().expect("manifest lock poisoned");
        let mut stats = StoreStats {
            segments: m.segments.len(),
            records: m.segments.iter().map(|s| s.synced_records).sum(),
            bytes: 0,
        };
        for seg in &m.segments {
            stats.bytes += std::fs::metadata(self.shared.dir.join(&seg.file))?.len();
        }
        Ok(stats)
    }
}

/// The exclusive append handle for one segment file. Dropping a writer
/// without [`SegmentWriter::finish`] loses at most the unsynced tail of
/// the current batch — exactly what a crash loses.
pub struct SegmentWriter {
    shared: Arc<StoreShared>,
    file_name: String,
    file: File,
    /// Serialized records not yet written+fsync'd.
    buf: Vec<u8>,
    /// Reusable payload-encoding buffer (binary format only).
    scratch: Vec<u8>,
    /// Records currently in `buf`.
    pending: u64,
    /// Records durable in this segment (recovered + committed).
    records: u64,
    /// Bytes committed (written + fsync'd) to the file so far — the
    /// base offset of the in-memory batch, for frame-index entries.
    durable_bytes: u64,
    /// Highest rank seen in this run's batches.
    max_rank: u64,
    /// Ranks recorded through this handle (fed back into the store's
    /// session-done set when the handle merges).
    session_ranks: Vec<usize>,
    /// Frame-index entries (binary format only): `(rank, offset)` of
    /// every [`INDEX_STRIDE`]-th frame, flushed to the `seg-<n>.idx`
    /// sidecar at each commit.
    index: Vec<IndexEntry>,
}

impl SegmentWriter {
    /// Appends one visit log — a compact JSON line or a binary frame,
    /// per the store's format. The record becomes durable at the next
    /// batch boundary or [`SegmentWriter::finish`].
    pub fn record(&mut self, log: &VisitLog) -> Result<(), StoreError> {
        // Each segment must stay an internally rank-sorted run or the
        // reader's k-way merge emits records out of order. Crawl
        // workers satisfy this naturally (ranks come from a monotonic
        // counter); refuse rather than write a store the reader will
        // reject.
        if log.rank as u64 <= self.max_rank {
            return Err(StoreError::Corrupt {
                file: self.file_name.clone(),
                detail: format!(
                    "ranks must be appended in ascending order (rank {} after {})",
                    log.rank, self.max_rank
                ),
            });
        }
        let buffered = self.buf.len();
        match self.shared.format {
            SegmentFormat::Jsonl => {
                let line = serde_json::to_string(log).map_err(|e| StoreError::Corrupt {
                    file: self.file_name.clone(),
                    detail: format!("serialize: {e}"),
                })?;
                self.buf.extend_from_slice(line.as_bytes());
                self.buf.push(b'\n');
            }
            SegmentFormat::Binary => {
                // Straight from the content tree to tagged bytes — no
                // JSON text is built on the binary write path.
                self.scratch.clear();
                codec::encode_content(&log.to_content(), &mut self.scratch);
                // Every STRIDE-th frame lands in the sidecar index, so
                // chunked readers can cut this segment without a scan.
                if (self.records + self.pending).is_multiple_of(u64::from(INDEX_STRIDE)) {
                    self.index.push(IndexEntry {
                        rank: log.rank as u64,
                        offset: self.durable_bytes + buffered as u64,
                    });
                }
                codec::write_frame(&mut self.buf, log.rank as u64, &self.scratch);
            }
        }
        let tele = crate::telemetry::metrics();
        tele.records_written.incr();
        tele.bytes_written.add((self.buf.len() - buffered) as u64);
        self.pending += 1;
        self.max_rank = self.max_rank.max(log.rank as u64);
        self.session_ranks.push(log.rank);
        if self.pending >= self.shared.batch as u64 {
            self.commit()?;
        }
        Ok(())
    }

    /// Writes and fsyncs the pending batch, then checkpoints the
    /// manifest watermark.
    fn commit(&mut self) -> Result<(), StoreError> {
        if self.pending == 0 {
            return Ok(());
        }
        let _span = cg_telemetry::span!("segment_commit", self.pending);
        self.file.write_all(&self.buf)?;
        self.file.sync_data()?;
        crate::telemetry::metrics().fsyncs.incr();
        self.records += self.pending;
        self.durable_bytes += self.buf.len() as u64;
        self.buf.clear();
        self.pending = 0;
        self.shared
            .checkpoint(&self.file_name, self.records, self.max_rank)?;
        // Refresh the sidecar index to cover everything just made
        // durable. Advisory: readers validate it and rescan on any
        // doubt, so its write is not fsync'd and may not fail the
        // commit path for data that *is* durable.
        if self.shared.format == SegmentFormat::Binary {
            let _ = index::write_index(&self.shared.dir, &self.file_name, &self.index);
        }
        Ok(())
    }

    /// Flushes the final batch and checkpoints. Consumes the writer. A
    /// handle that never recorded anything removes its (empty) file, so
    /// no-op resumes do not litter the store with zero-byte segments.
    pub fn finish(mut self) -> Result<(), StoreError> {
        self.commit()?;
        if self.records == 0 {
            std::fs::remove_file(self.shared.dir.join(&self.file_name))?;
            index::remove_index(&self.shared.dir, &self.file_name);
        }
        Ok(())
    }

    /// Records durable in this segment so far.
    pub fn durable_records(&self) -> u64 {
        self.records
    }
}

impl SinkWorker for SegmentWriter {
    fn record(&mut self, outcome: VisitOutcome) -> std::io::Result<()> {
        SegmentWriter::record(self, &outcome.log).map_err(std::io::Error::from)
    }
}

impl VisitSink for CrawlWriter {
    type Worker = SegmentWriter;

    fn is_done(&self, rank: usize) -> bool {
        self.done.contains(&rank)
            || self
                .session_done
                .read()
                .expect("session lock poisoned")
                .contains(&rank)
    }

    fn worker(&self, _index: usize) -> std::io::Result<SegmentWriter> {
        // The worker index is irrelevant to naming: every handle gets a
        // fresh file so each crawl's sorted runs stay separate.
        self.segment().map_err(std::io::Error::from)
    }

    fn merge(&self, mut worker: SegmentWriter) -> std::io::Result<()> {
        let ranks = std::mem::take(&mut worker.session_ranks);
        worker.finish().map_err(std::io::Error::from)?;
        self.session_done
            .write()
            .expect("session lock poisoned")
            .extend(ranks);
        Ok(())
    }
}

/// Opens (or resumes) the store at `dir` for the crawl defined by `gen`
/// and `cfg` over ranks `[from, to]`. The [`Fingerprint`] — master
/// seed, rank range, visit-config digest, generator-config digest — is
/// derived here, so every surface (experiments CLI, examples, tests)
/// validates resume compatibility identically instead of each
/// assembling its own.
pub fn open_store(
    dir: impl AsRef<Path>,
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
) -> Result<CrawlWriter, StoreError> {
    open_store_with(dir, gen, cfg, from, to, SegmentFormat::default())
}

/// [`open_store`], with the segment format chosen by the caller (the
/// format is part of the fingerprint, so a store opened binary can only
/// ever be resumed binary).
pub fn open_store_with(
    dir: impl AsRef<Path>,
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
    format: SegmentFormat,
) -> Result<CrawlWriter, StoreError> {
    let fp = Fingerprint::new(gen.master_seed(), from, to, cfg, gen.config()).with_format(format);
    CrawlWriter::open(dir, fp)
}

/// The outcome of one durable crawl session (see [`crawl_to_store`]).
#[derive(Debug, Clone)]
pub struct StoreCrawl {
    /// Ranks already durable when the store was opened (skipped).
    pub resumed: usize,
    /// This run's visit counts (resumed ranks not included).
    pub summary: cg_browser::CrawlSummary,
    /// Store totals after the crawl.
    pub stats: StoreStats,
}

/// The shared `--store` orchestration every surface uses: open or
/// resume the store at `dir` ([`open_store`]), report the just-opened
/// store through `on_open` (print a resume notice, inspect
/// [`CrawlWriter::done_ranks`]), crawl the missing ranks, and return
/// the session totals. Streaming the result back into an analysis is
/// the caller's two lines (`CrawlReader::open` +
/// `Dataset::from_reader`) — the store layer stays below analysis.
pub fn crawl_to_store(
    dir: impl AsRef<Path>,
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
    threads: usize,
    on_open: impl FnOnce(&CrawlWriter),
) -> Result<StoreCrawl, StoreError> {
    crawl_to_store_with(
        dir,
        gen,
        cfg,
        from,
        to,
        threads,
        SegmentFormat::default(),
        on_open,
    )
}

/// [`crawl_to_store`], with the segment format chosen by the caller.
#[allow(clippy::too_many_arguments)]
pub fn crawl_to_store_with(
    dir: impl AsRef<Path>,
    gen: &WebGenerator,
    cfg: &VisitConfig,
    from: usize,
    to: usize,
    threads: usize,
    format: SegmentFormat,
    on_open: impl FnOnce(&CrawlWriter),
) -> Result<StoreCrawl, StoreError> {
    let store = open_store_with(dir, gen, cfg, from, to, format)?;
    on_open(&store);
    let resumed = store.done_ranks().len();
    let summary = cg_browser::crawl_into(gen, cfg, from, to, threads, &store)?;
    let stats = store.stats()?;
    Ok(StoreCrawl {
        resumed,
        summary,
        stats,
    })
}

/// Segment file names (`seg-*.jsonl` / `seg-*.bin`) in `dir`, sorted.
pub(crate) fn segment_files(dir: &Path) -> Result<Vec<String>, StoreError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy().into_owned();
        if name.starts_with("seg-") && SegmentFormat::of_file(&name).is_some() {
            out.push(name);
        }
    }
    out.sort();
    Ok(out)
}

/// The `<n>` of a `seg-<n>.jsonl` / `seg-<n>.bin` file name.
fn segment_number(file_name: &str) -> Option<usize> {
    let stem = file_name.strip_prefix("seg-")?;
    let stem = stem
        .strip_suffix(".jsonl")
        .or_else(|| stem.strip_suffix(".bin"))?;
    stem.parse().ok()
}

struct SegmentScan {
    /// Ranks of every surviving (complete, parseable) record.
    ranks: Vec<usize>,
    /// Frame-index entries for the surviving frames (binary only —
    /// empty for JSONL), rebuilt as a free byproduct of the scan.
    index: Vec<IndexEntry>,
}

/// Scans one segment in its on-disk format, truncating a torn tail in
/// place (see [`recover_segment_jsonl`] / [`recover_segment_bin`] for
/// the per-format rules — they are deliberately the same rules).
fn recover_segment(
    path: &Path,
    file_name: &str,
    format: SegmentFormat,
) -> Result<SegmentScan, StoreError> {
    let _span = cg_telemetry::span!("segment_recover");
    match format {
        SegmentFormat::Jsonl => recover_segment_jsonl(path, file_name),
        SegmentFormat::Binary => recover_segment_bin(path, file_name),
    }
}

/// Scans one JSONL segment, truncating a torn trailing line in place.
///
/// * bytes after the last newline → torn (a crash mid-append): truncate;
/// * an unparseable *final* line → torn at the record level: truncate;
/// * an unparseable line with records after it → real corruption: error.
fn recover_segment_jsonl(path: &Path, file_name: &str) -> Result<SegmentScan, StoreError> {
    // Stream line by line: recovery memory is one record, not one
    // segment (segments reach gigabytes at crawl scale).
    let mut reader = BufReader::new(File::open(path)?);
    let mut ranks = Vec::new();
    let mut line = Vec::new();
    let mut pos = 0u64;
    let mut keep_until = 0u64;
    // Offset of a complete line that failed to parse: torn at the
    // record level if it is the last line, mid-file damage otherwise.
    let mut bad_line: Option<u64> = None;
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)? as u64;
        if n == 0 {
            break;
        }
        let complete = line.last() == Some(&b'\n');
        if let Some(at) = bad_line {
            if complete {
                // A later complete record follows the unparseable line:
                // damage the store cannot repair by truncation.
                return Err(StoreError::Corrupt {
                    file: file_name.to_string(),
                    detail: format!("unparseable record at byte {at}"),
                });
            }
            break; // only torn garbage follows — truncation covers it
        }
        if !complete {
            break; // torn tail: bytes with no terminating newline
        }
        match line_rank(&line[..line.len() - 1]) {
            Some(rank) => {
                // Segments must be rank-sorted runs (see module docs);
                // an out-of-order record means this store was written
                // by something that violated the invariant.
                if ranks.last().is_some_and(|&prev| rank <= prev) {
                    return Err(StoreError::Corrupt {
                        file: file_name.to_string(),
                        detail: format!("segment not rank-sorted at byte {pos}"),
                    });
                }
                ranks.push(rank);
                keep_until = pos + n;
            }
            None => bad_line = Some(pos),
        }
        pos += n;
    }
    if keep_until < std::fs::metadata(path)?.len() {
        crate::telemetry::metrics().torn_tail_recoveries.incr();
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(keep_until)?;
        f.sync_data()?;
    }
    Ok(SegmentScan {
        ranks,
        index: Vec::new(),
    })
}

/// Scans one binary segment, truncating a torn trailing frame in place.
///
/// The rules mirror [`recover_segment_jsonl`] exactly, with the frame
/// checksum standing in for "does the line parse":
///
/// * fewer than a header's worth of bytes left, or a declared payload
///   running past EOF → torn (a crash mid-append): truncate;
/// * a checksum-mismatched *final* frame → torn at the record level:
///   truncate;
/// * a checksum mismatch with complete frames after it → real
///   corruption: error.
///
/// The rank lives in the frame header and the checksum vouches for the
/// payload bytes, so recovery never decodes a payload — scanning is a
/// header read plus a checksum per record.
fn recover_segment_bin(path: &Path, file_name: &str) -> Result<SegmentScan, StoreError> {
    let file_len = std::fs::metadata(path)?.len();
    let mut reader = BufReader::new(File::open(path)?);
    let mut ranks = Vec::new();
    let mut index = Vec::new();
    let mut payload = Vec::new();
    let mut pos = 0u64;
    let mut keep_until = 0u64;
    loop {
        if file_len - pos < FRAME_HEADER as u64 {
            break; // clean EOF (0 left) or a torn header: truncate covers both
        }
        let mut header = [0u8; FRAME_HEADER];
        reader.read_exact(&mut header)?;
        let header = codec::parse_header(&header);
        let end = pos + FRAME_HEADER as u64 + header.len as u64;
        if end > file_len {
            break; // payload torn off by the crash
        }
        payload.clear();
        payload.resize(header.len, 0);
        reader.read_exact(&mut payload)?;
        if codec::frame_check(header.rank, &payload) != header.check {
            if end == file_len {
                break; // a torn final frame: truncate
            }
            // Complete frames follow the damage: truncation repair
            // would silently drop durable records — refuse instead.
            return Err(StoreError::Corrupt {
                file: file_name.to_string(),
                detail: format!("frame checksum mismatch at byte {pos}"),
            });
        }
        let rank = header.rank as usize;
        if ranks.last().is_some_and(|&prev| rank <= prev) {
            return Err(StoreError::Corrupt {
                file: file_name.to_string(),
                detail: format!("segment not rank-sorted at byte {pos}"),
            });
        }
        if (ranks.len() as u64).is_multiple_of(u64::from(INDEX_STRIDE)) {
            index.push(IndexEntry {
                rank: header.rank,
                offset: pos,
            });
        }
        ranks.push(rank);
        pos = end;
        keep_until = end;
    }
    if keep_until < file_len {
        crate::telemetry::metrics().torn_tail_recoveries.incr();
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(keep_until)?;
        f.sync_data()?;
    }
    Ok(SegmentScan { ranks, index })
}

/// Parses one JSONL record far enough to extract its rank; `None` means
/// the line is not a valid visit record.
fn line_rank(line: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(line).ok()?;
    let value: serde_json::Value = serde_json::from_str(text).ok()?;
    let rank = value.get("rank")?.as_u64()?;
    Some(rank as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::MANIFEST_FILE;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-writer-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            master_seed: 1,
            from: 1,
            to: 10,
            visit_config: "cfg".into(),
            generator: "gen".into(),
            format: SegmentFormat::Jsonl,
        }
    }

    fn fp_bin() -> Fingerprint {
        fp().with_format(SegmentFormat::Binary)
    }

    fn log(rank: usize) -> VisitLog {
        VisitLog {
            site_domain: format!("site{rank}.com"),
            rank,
            complete: true,
            ..VisitLog::default()
        }
    }

    #[test]
    fn fresh_store_appends_and_checkpoints() {
        let dir = tmp_dir("fresh");
        let store = CrawlWriter::open(&dir, fp()).unwrap().with_batch(2);
        let mut seg = store.segment().unwrap();
        for r in 1..=5 {
            seg.record(&log(r)).unwrap();
        }
        seg.finish().unwrap();
        let stats = store.stats().unwrap();
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.records, 5);
        assert!(stats.bytes > 0);
        // Reopen: all five ranks are done.
        drop(store);
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut done: Vec<_> = store.done_ranks().iter().copied().collect();
        done.sort_unstable();
        assert_eq!(done, vec![1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_batch_tail_is_lost_but_synced_records_survive() {
        let dir = tmp_dir("tail");
        let store = CrawlWriter::open(&dir, fp()).unwrap().with_batch(3);
        let mut seg = store.segment().unwrap();
        for r in 1..=4 {
            seg.record(&log(r)).unwrap();
        }
        // Drop without finish: the fourth record was never written.
        drop(seg);
        drop(store);
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        assert_eq!(store.done_ranks().len(), 3);
        assert!(!store.done_ranks().contains(&4));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_handle_gets_a_fresh_file_even_across_resume() {
        let dir = tmp_dir("fresh-files");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut a = store.segment().unwrap();
        let mut b = store.segment().unwrap();
        a.record(&log(1)).unwrap();
        b.record(&log(2)).unwrap();
        a.finish().unwrap();
        b.finish().unwrap();
        drop(store);
        // A resume never appends to old files: back-filled (lower)
        // ranks land in a new segment, keeping every file a sorted run.
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut c = store.segment().unwrap();
        c.record(&log(3)).unwrap();
        c.finish().unwrap();
        assert_eq!(
            segment_files(&dir).unwrap(),
            vec!["seg-0.jsonl", "seg-1.jsonl", "seg-2.jsonl"]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_handles_leave_no_files_behind() {
        let dir = tmp_dir("empty");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let seg = store.segment().unwrap();
        seg.finish().unwrap();
        assert!(segment_files(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = tmp_dir("mismatch");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        drop(store);
        let other = Fingerprint {
            master_seed: 2,
            ..fp()
        };
        assert!(matches!(
            CrawlWriter::open(&dir, other),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let store = CrawlWriter::open(&dir, fp()).unwrap().with_batch(1);
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.record(&log(2)).unwrap();
        seg.finish().unwrap();
        drop(store);
        let path = dir.join("seg-0.jsonl");
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"site_domain\":\"si").unwrap();
        drop(f);
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(store.done_ranks().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_damage_is_an_error() {
        let dir = tmp_dir("damage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("seg-0.jsonl"),
            "not json\n{\"rank\":2,\"site_domain\":\"a\"}\n",
        )
        .unwrap();
        assert!(matches!(
            CrawlWriter::open(&dir, fp()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_store_appends_and_recovers() {
        let dir = tmp_dir("bin-fresh");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap().with_batch(2);
        let mut seg = store.segment().unwrap();
        for r in 1..=5 {
            seg.record(&log(r)).unwrap();
        }
        seg.finish().unwrap();
        assert_eq!(segment_files(&dir).unwrap(), vec!["seg-0.bin"]);
        drop(store);
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap();
        let mut done: Vec<_> = store.done_ranks().iter().copied().collect();
        done.sort_unstable();
        assert_eq!(done, vec![1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("bin-torn");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap().with_batch(1);
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.record(&log(2)).unwrap();
        seg.finish().unwrap();
        drop(store);
        let path = dir.join("seg-0.bin");
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // A crash mid-append: half a frame header, then (second case) a
        // full header whose payload never hit the disk.
        for torn in [
            &b"\x40\x00"[..],
            &b"\x40\x00\x00\x00AAAAAAAA\x00\x00\x00\x00half"[..],
        ] {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(torn).unwrap();
            drop(f);
            let store = CrawlWriter::open(&dir, fp_bin()).unwrap();
            assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
            assert_eq!(store.done_ranks().len(), 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_mid_file_damage_is_an_error() {
        let dir = tmp_dir("bin-damage");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap().with_batch(1);
        let mut seg = store.segment().unwrap();
        for r in 1..=3 {
            seg.record(&log(r)).unwrap();
        }
        seg.finish().unwrap();
        drop(store);
        // Flip one payload byte of the FIRST frame: complete frames
        // follow it, so truncation repair would lose durable records.
        let path = dir.join("seg-0.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[FRAME_HEADER + 1] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            CrawlWriter::open(&dir, fp_bin()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_checksum_bad_final_frame_is_truncated() {
        let dir = tmp_dir("bin-badtail");
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap().with_batch(1);
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.record(&log(2)).unwrap();
        seg.finish().unwrap();
        drop(store);
        // Flip a byte in the LAST frame's payload: torn at the record
        // level, truncate back to rank 1.
        let path = dir.join("seg-0.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = CrawlWriter::open(&dir, fp_bin()).unwrap();
        assert_eq!(store.done_ranks().len(), 1);
        assert!(store.done_ranks().contains(&1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_mismatch_between_store_and_crawl_is_refused() {
        let dir = tmp_dir("bin-vs-jsonl");
        drop(CrawlWriter::open(&dir, fp()).unwrap());
        // Same crawl, other format: the fingerprint gate refuses it.
        assert!(matches!(
            CrawlWriter::open(&dir, fp_bin()),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_format_segment_file_is_refused() {
        let dir = tmp_dir("mixed");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.finish().unwrap();
        drop(store);
        // A stray binary segment in a JSONL store (hand-mixed dirs,
        // manifest lagging a crash of some foreign tool).
        std::fs::write(dir.join("seg-9.bin"), b"\x00").unwrap();
        assert!(matches!(
            CrawlWriter::open(&dir, fp()),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_is_atomic_on_disk() {
        let dir = tmp_dir("atomic");
        let store = CrawlWriter::open(&dir, fp()).unwrap();
        drop(store);
        assert!(dir.join(MANIFEST_FILE).exists());
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
