//! Per-segment frame-index sidecars (`seg-<n>.idx`): the byte offsets
//! that let a fold split one binary segment into independently
//! decodable chunks.
//!
//! A binary segment is a run of length-prefixed frames — random access
//! requires knowing where frames start. The sidecar records `(rank,
//! byte offset)` for every [`INDEX_STRIDE`]-th frame as LEB128 deltas,
//! so chunk planning seeks straight to stride boundaries instead of
//! scanning headers from byte 0. The index is **advisory, never
//! trusted**: it is rewritten wholesale at every commit (plain
//! tmp+rename, no fsync — losing it costs a rescan, not data), every
//! loaded entry is probed against the segment's real frame headers, and
//! any mismatch, damage, or staleness makes the loader report "no
//! index", which sends the planner down the sequential header scan
//! ([`scan_index`]) that also serves bare segments from older stores.
//! Wrong results are structurally impossible; a bad sidecar can only
//! cost time.
//!
//! **Layer:** persistence (sidecar metadata beside the segment files).
//! **Invariants:** entry `i` names frame `i × stride` of the segment's
//! durable prefix; offsets and ranks are strictly increasing; entries
//! past the manifest watermark are discarded at load. **Entry points:**
//! [`load_index`], [`scan_index`], [`durable_end`], [`write_index`]
//! (writer side).

use crate::codec::{self, FRAME_HEADER};
use crate::manifest::SegmentMeta;
use crate::pread::pread_exact;
use crate::StoreError;
use cg_hash::fnv1a32w;
use std::fs::File;
use std::path::Path;

/// Frames between indexed offsets. Small enough that a 50k-frame
/// segment yields ~1.5k chunks for work stealing; large enough that a
/// chunk amortizes its claim and map cost over dozens of decodes.
pub const INDEX_STRIDE: u32 = 32;

/// Sidecar magic, followed by a format version.
const INDEX_MAGIC: &[u8; 4] = b"CGIX";
const INDEX_VERSION: u32 = 1;

/// One indexed frame: the rank and byte offset of frame
/// `i × stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// The frame's rank (readable from its header — the probe target).
    pub rank: u64,
    /// Byte offset of the frame header within the segment.
    pub offset: u64,
}

/// A decoded (or rebuilt) frame index for one binary segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameIndex {
    /// Frames between entries.
    pub stride: u32,
    /// Entries for frames `0, stride, 2×stride, …` of the durable
    /// prefix.
    pub entries: Vec<IndexEntry>,
}

/// The sidecar file name for a binary segment (`seg-3.bin` →
/// `seg-3.idx`); `None` for non-binary segment names.
pub fn index_file_name(segment_file: &str) -> Option<String> {
    segment_file
        .strip_suffix(".bin")
        .map(|stem| format!("{stem}.idx"))
}

fn write_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_uv(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Encodes an index: magic, version, stride, entry count, LEB128
/// deltas (first entry absolute), and a checksum over the delta bytes.
pub fn encode_index(stride: u32, entries: &[IndexEntry]) -> Vec<u8> {
    let mut body = Vec::new();
    let mut prev = IndexEntry { rank: 0, offset: 0 };
    for e in entries {
        write_uv(&mut body, e.rank - prev.rank);
        write_uv(&mut body, e.offset - prev.offset);
        prev = *e;
    }
    let mut out = Vec::with_capacity(16 + body.len() + 4);
    out.extend_from_slice(INDEX_MAGIC);
    out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
    out.extend_from_slice(&stride.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    let check = fnv1a32w(index_check_prefix(stride, entries.len()), &body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

/// The checksum prefix binds the header fields the deltas depend on.
fn index_check_prefix(stride: u32, count: usize) -> u64 {
    (u64::from(stride) << 32) | count as u64
}

/// Decodes a sidecar; any structural problem is an `Err` (the caller
/// treats it as "no index" and rescans).
pub fn decode_index(bytes: &[u8]) -> Result<FrameIndex, String> {
    if bytes.len() < 20 {
        return Err("index shorter than its fixed header".into());
    }
    if &bytes[0..4] != INDEX_MAGIC {
        return Err("bad index magic".into());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != INDEX_VERSION {
        return Err(format!("unsupported index version {version}"));
    }
    let stride = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if stride == 0 {
        return Err("index stride is zero".into());
    }
    let body = &bytes[16..bytes.len() - 4];
    let check = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if fnv1a32w(index_check_prefix(stride, count), body) != check {
        return Err("index checksum mismatch".into());
    }
    let mut entries = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev = IndexEntry { rank: 0, offset: 0 };
    for i in 0..count {
        let d_rank = read_uv(body, &mut pos).ok_or("index entry truncated")?;
        let d_off = read_uv(body, &mut pos).ok_or("index entry truncated")?;
        if i > 0 && (d_rank == 0 || d_off == 0) {
            return Err("index entries not strictly increasing".into());
        }
        prev = IndexEntry {
            rank: prev.rank + d_rank,
            offset: prev.offset + d_off,
        };
        entries.push(prev);
    }
    if pos != body.len() {
        return Err("index has trailing bytes".into());
    }
    Ok(FrameIndex { stride, entries })
}

/// Writes (replaces) the sidecar for `segment_file` via tmp+rename.
/// No fsync: the index is rebuildable, so durability buys nothing.
pub fn write_index(
    dir: &Path,
    segment_file: &str,
    entries: &[IndexEntry],
) -> Result<(), StoreError> {
    let Some(name) = index_file_name(segment_file) else {
        return Ok(());
    };
    let bytes = encode_index(INDEX_STRIDE, entries);
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, dir.join(name))?;
    Ok(())
}

/// Removes the sidecar of `segment_file` if present (used when an
/// empty segment file is dropped).
pub fn remove_index(dir: &Path, segment_file: &str) {
    if let Some(name) = index_file_name(segment_file) {
        let _ = std::fs::remove_file(dir.join(name));
    }
}

/// Loads and validates the sidecar for one manifest-listed binary
/// segment. `None` means "no usable index" — missing, corrupt, stale,
/// or failing its header probes — and the caller falls back to
/// [`scan_index`]. Entries past the manifest watermark are trimmed
/// (the sidecar may outlive a torn-tail truncation).
pub fn load_index(file: &File, dir: &Path, meta: &SegmentMeta) -> Option<FrameIndex> {
    let name = index_file_name(&meta.file)?;
    let bytes = std::fs::read(dir.join(name)).ok()?;
    let mut idx = decode_index(&bytes).ok()?;
    let stride = u64::from(idx.stride);
    let keep = idx
        .entries
        .iter()
        .enumerate()
        .take_while(|(i, _)| (*i as u64) * stride < meta.synced_records)
        .count();
    idx.entries.truncate(keep);
    if idx.entries.is_empty() || idx.entries[0].offset != 0 {
        return None;
    }
    // Probe every entry against the segment itself: the offset must
    // hold a frame header carrying exactly the indexed rank. A stale
    // or damaged sidecar fails here and costs a rescan — it can never
    // mis-chunk a decode.
    for e in &idx.entries {
        let mut header = [0u8; FRAME_HEADER];
        match pread_exact(file, &mut header, e.offset) {
            Ok(true) => {}
            _ => return None,
        }
        if codec::parse_header(&header).rank != e.rank {
            return None;
        }
    }
    Some(idx)
}

/// Walks frame headers from `offset` for frames `[from, records)` and
/// returns the byte offset just past the last durable frame. Errors
/// mirror the readers' watermark contract: a file that ends early is
/// `Corrupt`.
fn scan_tail(
    file: &File,
    name: &str,
    mut offset: u64,
    from: u64,
    records: u64,
    mut on_frame: impl FnMut(u64, u64, u64),
) -> Result<u64, StoreError> {
    for frame in from..records {
        let mut header = [0u8; FRAME_HEADER];
        if !pread_exact(file, &mut header, offset)? {
            return Err(StoreError::Corrupt {
                file: name.to_string(),
                detail: format!(
                    "segment ends {} records short of its manifest watermark",
                    records - frame
                ),
            });
        }
        let h = codec::parse_header(&header);
        on_frame(frame, h.rank, offset);
        offset += (FRAME_HEADER + h.len) as u64;
    }
    Ok(offset)
}

/// Rebuilds the index for a bare (or index-less) segment by scanning
/// every frame header of the durable prefix. Also yields the durable
/// byte end. Headers only — payload bytes are validated by the decode
/// path, exactly as in the streaming readers.
pub fn scan_index(
    file: &File,
    name: &str,
    records: u64,
    stride: u32,
) -> Result<(FrameIndex, u64), StoreError> {
    let mut entries = Vec::new();
    let end = scan_tail(file, name, 0, 0, records, |frame, rank, offset| {
        if frame % u64::from(stride) == 0 {
            entries.push(IndexEntry { rank, offset });
        }
    })?;
    Ok((FrameIndex { stride, entries }, end))
}

/// The byte offset just past the last durable frame, computed from a
/// validated index by scanning at most one stride of trailing headers.
pub fn durable_end(
    file: &File,
    name: &str,
    idx: &FrameIndex,
    records: u64,
) -> Result<u64, StoreError> {
    let last = idx.entries.last().expect("validated index is non-empty");
    let from = (idx.entries.len() as u64 - 1) * u64::from(idx.stride);
    scan_tail(file, name, last.offset, from, records, |_, _, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: u64) -> Vec<IndexEntry> {
        (0..n)
            .map(|i| IndexEntry {
                rank: 1 + i * 3,
                offset: i * 100,
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trip() {
        for n in [0u64, 1, 2, 7, 100] {
            let e = entries(n);
            let bytes = encode_index(INDEX_STRIDE, &e);
            let idx = decode_index(&bytes).unwrap();
            assert_eq!(idx.stride, INDEX_STRIDE);
            assert_eq!(idx.entries, e);
        }
    }

    #[test]
    fn damage_is_refused_structurally() {
        let bytes = encode_index(INDEX_STRIDE, &entries(5));
        // Any single flipped byte must fail decoding, not mis-parse.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(
                decode_index(&bad).is_err(),
                "flipping byte {i} went unnoticed"
            );
        }
        assert!(decode_index(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_index(b"CGIX").is_err());
    }

    #[test]
    fn index_file_names_follow_segments() {
        assert_eq!(index_file_name("seg-0.bin").as_deref(), Some("seg-0.idx"));
        assert_eq!(index_file_name("seg-12.bin").as_deref(), Some("seg-12.idx"));
        assert_eq!(index_file_name("seg-0.jsonl"), None);
    }
}
