//! The crawl store: an append-only, segmented, on-disk log of
//! [`VisitLog`](cg_instrument::VisitLog)s that makes a crawl durable,
//! resumable, and analyzable without ever materializing it in memory.
//!
//! At production scale a crawl runs for days and produces datasets
//! larger than RAM; a process death must not lose work. The store
//! provides exactly the three properties that requires:
//!
//! * **Contention-free appends** — [`CrawlWriter`] hands every crawl
//!   worker its own **fresh** segment file (fsync'd in batches), so the
//!   hot path takes no cross-worker lock. Fresh files also make every
//!   segment an internally rank-sorted run — a resume back-fills
//!   missing ranks into new segments instead of appending low ranks
//!   behind high ones, which is what keeps the reader's merge correct.
//!   Two on-disk [`SegmentFormat`]s exist with identical semantics:
//!   `seg-<n>.jsonl` (one compact `serde_json` line per visit — the
//!   default: greppable, diffable) and `seg-<n>.bin` (length-prefixed
//!   checksummed binary frames, see [`codec`] — the replay fast path
//!   for million-visit crawls). The format is part of the
//!   [`Fingerprint`], so a store never mixes formats and a resume in
//!   the wrong format is refused like any other fingerprint mismatch.
//! * **Checkpointing** — `manifest.json` records the crawl's config
//!   fingerprint (master seed, rank range, visit-config digest) plus a
//!   per-segment durability watermark. Reopening an existing directory
//!   validates the fingerprint, truncates any torn trailing line left
//!   by a crash, and returns the set of already-completed ranks, so a
//!   resumed crawl skips finished work and — because every visit is a
//!   pure function of (master seed, rank, visit config) — converges to
//!   byte-identical output versus an uninterrupted run.
//! * **Streaming reads** — [`CrawlReader`] replays the store
//!   rank-ordered via a k-way merge over the segment files, holding one
//!   record per segment in memory. `Dataset::from_reader` in
//!   `cg-analysis` folds that stream incrementally. For parallel
//!   analysis, [`par_fold`] instead folds each segment's stream on its
//!   own worker and combines the partials in a fixed segment order —
//!   deterministic (byte-identical statistics) at any thread count,
//!   because segments hold disjoint rank sets.
//! * **Chunked zero-copy reads** — binary segments carry a
//!   `seg-<n>.idx` frame-index sidecar ([`index`]) that cuts each
//!   segment into independently decodable chunks ([`chunk`]), so
//!   [`par_fold_with`] parallelizes *within* segments through a chosen
//!   [`ReadBackend`]: `mmap(2)` windows over the page cache ([`mmap`],
//!   the default — zero-copy, falling back to `pread` wherever mapping
//!   fails), positioned reads, or buffered streaming. All backends
//!   verify the same checksums and watermarks and produce
//!   byte-identical folds.
//!
//! ```no_run
//! use cg_browser::{crawl_into, VisitConfig};
//! use cg_crawlstore::{open_store, CrawlReader};
//! use cg_webgen::{GenConfig, WebGenerator};
//!
//! let gen = WebGenerator::new(GenConfig::small(1_000), 0xC00C1E);
//! let cfg = VisitConfig::regular();
//! // Open (or resume) the store; already-done ranks are skipped.
//! let store = open_store("/tmp/crawl", &gen, &cfg, 1, 1_000).unwrap();
//! crawl_into(&gen, &cfg, 1, 1_000, 8, &store).unwrap();
//! // Stream it back, rank-ordered, without loading the crawl.
//! for log in CrawlReader::open("/tmp/crawl").unwrap() {
//!     let log = log.unwrap();
//!     println!("{} rank {}", log.site_domain, log.rank);
//! }
//! ```
//!
//! **Layer:** persistence (between `cg-browser` crawls and
//! `cg-analysis`). **Invariants:** segments are internally rank-sorted
//! append-only runs; the manifest's fingerprint gates resume; a
//! killed-and-resumed crawl's merged stream is byte-identical to an
//! uninterrupted one, in either segment format. **Entry points:**
//! `open_store`, `open_store_with`, `crawl_to_store`, `CrawlWriter`,
//! `CrawlReader`, `par_fold`, `par_fold_with`.

pub mod chunk;
pub mod codec;
pub mod fold;
pub mod index;
pub mod manifest;
pub mod mmap;
pub mod pread;
pub mod reader;
pub(crate) mod telemetry;
pub mod writer;

pub use chunk::{plan_chunks, ChunkPlan, ChunkSpec, ChunkStream, ReadBackend};
pub use codec::SegmentFormat;
pub use fold::{par_fold, par_fold_with};
pub use manifest::{Fingerprint, Manifest, SegmentMeta, MANIFEST_FILE};
pub use mmap::Mmap;
pub use pread::{frame_cursors, FrameCursor};
pub use reader::{segment_streams, CrawlReader, SegmentStream};
pub use writer::{
    crawl_to_store, crawl_to_store_with, open_store, open_store_with, CrawlWriter, SegmentWriter,
    StoreCrawl, StoreStats,
};

use std::fmt;

/// Everything that can go wrong talking to a store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A manifest or record failed to parse where truncation recovery
    /// does not apply (mid-file damage, bad manifest).
    Corrupt {
        /// File the damage was found in.
        file: String,
        /// What failed.
        detail: String,
    },
    /// The directory holds a crawl with a different config fingerprint —
    /// resuming would interleave incompatible visits.
    FingerprintMismatch {
        /// Fingerprint recorded in the manifest.
        found: Box<Fingerprint>,
        /// Fingerprint of the crawl being opened.
        expected: Box<Fingerprint>,
    },
    /// Another live writer holds the store's directory lock; a second
    /// appender would interleave half-records into its segments.
    Locked {
        /// The contested store directory.
        dir: std::path::PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "crawl store I/O error: {e}"),
            StoreError::Corrupt { file, detail } => {
                write!(f, "crawl store corrupt ({file}): {detail}")
            }
            StoreError::FingerprintMismatch { found, expected } => write!(
                f,
                "crawl store fingerprint mismatch: directory holds {found:?}, crawl is {expected:?}"
            ),
            StoreError::Locked { dir } => write!(
                f,
                "crawl store {} is locked by another writer",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<StoreError> for std::io::Error {
    fn from(e: StoreError) -> std::io::Error {
        match e {
            StoreError::Io(e) => e,
            other => std::io::Error::other(other.to_string()),
        }
    }
}
