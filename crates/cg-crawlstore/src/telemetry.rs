//! The store's metric handles, registered together on first use.
//!
//! One `OnceLock` struct per subsystem keeps the snapshot schema
//! stable: touching *any* store metric registers *all* of them, so a
//! run that never fsynced still exports `store.fsyncs = 0` instead of
//! omitting the key.
//!
//! Class assignments are the contract here. Totals that are pure
//! functions of the records moved (`records_written`, `bytes_written`,
//! `records_replayed`, `bytes_replayed`, `torn_tail_recoveries` — a
//! function of the on-disk state being recovered) are `Workload` and
//! must stay byte-identical across worker counts: every record's
//! encoded size is independent of which worker wrote it. Anything
//! shaped by scheduling — fsync batch boundaries, how many segment
//! files a crawl's worker count produced, fold shard claims — is
//! `Runtime` and gets masked by determinism checks.

use cg_telemetry::{global, Class, Counter};
use std::sync::OnceLock;

/// The crawl store's registered metric handles.
pub(crate) struct StoreMetrics {
    /// Records appended (durable or pending), any format.
    pub records_written: Counter,
    /// Encoded bytes appended (line or frame bytes incl. framing).
    pub bytes_written: Counter,
    /// Records streamed back out (reader merge, segment streams, pread
    /// cursors).
    pub records_replayed: Counter,
    /// Encoded bytes streamed back out.
    pub bytes_replayed: Counter,
    /// Torn tails truncated away during recovery scans.
    pub torn_tail_recoveries: Counter,
    /// Bytes decoded through mmap'd chunk windows (0 when the mapped
    /// backend is unused or unavailable; a pure function of the chunk
    /// plan otherwise — worker-count independent).
    pub mmap_bytes: Counter,
    /// Chunk opens across chunked folds and replay passes — the plan's
    /// chunk count times the passes over it, independent of who claims
    /// which chunk.
    pub chunks_claimed: Counter,
    /// fsync + manifest checkpoints (batch boundaries — worker-count
    /// dependent).
    pub fsyncs: Counter,
    /// Fresh segment files opened for append.
    pub segments_opened: Counter,
    /// Segments claimed by parallel fold workers.
    pub fold_shards: Counter,
}

/// The store's handles in the global registry (registered on first
/// call).
pub(crate) fn metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = global();
        StoreMetrics {
            records_written: reg.counter("store.records_written", Class::Workload),
            bytes_written: reg.counter("store.bytes_written", Class::Workload),
            records_replayed: reg.counter("store.records_replayed", Class::Workload),
            bytes_replayed: reg.counter("store.bytes_replayed", Class::Workload),
            torn_tail_recoveries: reg.counter("store.torn_tail_recoveries", Class::Workload),
            mmap_bytes: reg.counter("store.mmap_bytes", Class::Workload),
            chunks_claimed: reg.counter("store.chunks_claimed", Class::Workload),
            fsyncs: reg.counter("store.fsyncs", Class::Runtime),
            segments_opened: reg.counter("store.segments_opened", Class::Runtime),
            fold_shards: reg.counter("store.fold_shards", Class::Runtime),
        }
    })
}
