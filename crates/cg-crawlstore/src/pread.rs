//! Positioned, page-cache-friendly reads over binary segments: the
//! traffic-replayer read path.
//!
//! [`CrawlReader`](crate::CrawlReader) and
//! [`SegmentStream`](crate::SegmentStream) stream a store **once**,
//! front to back, through a `BufReader` each — exactly right for
//! analysis folds. A traffic replayer has a different access pattern:
//! it loops over the same store for many passes, and re-opening every
//! segment per pass would re-allocate a fresh read buffer and re-issue
//! sequential `read(2)` calls each time. A [`FrameCursor`] instead
//! opens the file **once**, reads every frame with a positioned read
//! (`pread(2)` on Unix — no shared file offset, no userspace
//! re-buffering of segment bytes), decodes payloads into **one
//! reusable buffer**, and [`FrameCursor::rewind`]s in O(1) to start
//! the next pass. After the first pass the segment bytes are warm in
//! the OS page cache, so subsequent passes are memory-speed copies
//! into the same buffer — per-pass allocation is zero.
//!
//! Only binary segments are supported: the replayer's store format is
//! `SegmentFormat::Binary` by design (frames are length-prefixed, so a
//! positioned reader needs no line scanning), and a JSONL store is
//! refused up front rather than silently read the slow way.

use crate::codec::{self, SegmentFormat, FRAME_HEADER};
use crate::manifest::{Manifest, SegmentMeta};
use crate::StoreError;
use cg_instrument::VisitLog;
use std::fs::File;
use std::path::Path;

/// Reads exactly `buf.len()` bytes at `offset` without touching any
/// shared file cursor. `Ok(false)` is a clean or torn EOF (the frame is
/// not there in full), distinct from real I/O failure.
#[cfg(unix)]
pub(crate) fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> Result<bool, StoreError> {
    Ok(pread_upto(file, buf, offset)? == buf.len())
}

/// Reads up to `buf.len()` bytes at `offset`, stopping early only at
/// EOF; returns the bytes read. The speculative frame read wants "as
/// much as is there", where [`pread_exact`]'s all-or-nothing contract
/// would misread a short tail as absence.
#[cfg(unix)]
pub(crate) fn pread_upto(file: &File, buf: &mut [u8], offset: u64) -> Result<usize, StoreError> {
    use std::os::unix::fs::FileExt;
    let mut done = 0usize;
    while done < buf.len() {
        match file.read_at(&mut buf[done..], offset + done as u64) {
            Ok(0) => break,
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Ok(done)
}

/// Portable fallback: positioned read via `seek + read` (the file's
/// cursor is private to this handle, so semantics match `pread`).
#[cfg(not(unix))]
pub(crate) fn pread_exact(file: &File, buf: &mut [u8], offset: u64) -> Result<bool, StoreError> {
    Ok(pread_upto(file, buf, offset)? == buf.len())
}

/// See the Unix [`pread_upto`]; same contract over `seek + read`.
#[cfg(not(unix))]
pub(crate) fn pread_upto(file: &File, buf: &mut [u8], offset: u64) -> Result<usize, StoreError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset)).map_err(StoreError::Io)?;
    let mut done = 0usize;
    while done < buf.len() {
        match f.read(&mut buf[done..]) {
            Ok(0) => break,
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Ok(done)
}

/// A rewindable positioned-read cursor over one binary segment's
/// durable frames.
///
/// The cursor yields `(rank, payload)` pairs in file order (each
/// segment is an internally rank-sorted run), verifying every frame's
/// checksum, and stops at the manifest's durability watermark exactly
/// like [`SegmentStream`](crate::SegmentStream). Payload bytes are
/// returned as a borrow of the cursor's internal buffer — valid until
/// the next [`FrameCursor::next_frame`] call — so a loop that decodes
/// and drops each visit never allocates for segment bytes.
///
/// ```no_run
/// use cg_crawlstore::frame_cursors;
///
/// let mut cursors = frame_cursors("crawl-dir").unwrap();
/// for pass in 0..3 {
///     for cur in &mut cursors {
///         while let Some((rank, payload)) = cur.next_frame().unwrap() {
///             let log = cg_crawlstore::codec::decode_visit_log(payload).unwrap();
///             assert_eq!(log.rank as u64, rank);
///         }
///         cur.rewind(); // O(1): next pass re-reads from the page cache
///     }
///     let _ = pass;
/// }
/// ```
pub struct FrameCursor {
    file: File,
    name: String,
    /// Byte offset of the next unread frame header.
    offset: u64,
    /// Durable records per the manifest watermark (the per-pass total).
    records: u64,
    /// Records left in the current pass.
    remaining: u64,
    /// Reused frame buffer (header + payload) — grows to the largest
    /// frame once, then stays.
    buf: Vec<u8>,
    /// Largest payload seen so far: the speculative read size. One
    /// `pread` fetches header *and* payload whenever the next frame is
    /// no larger than any frame before it — after the first pass,
    /// that's every frame.
    high_water: usize,
    /// Sorted-run enforcement, reset per pass.
    last_rank: Option<u64>,
}

/// Initial speculative payload size: covers typical frames so even the
/// first pass mostly takes one syscall per frame.
const SPECULATIVE_PAYLOAD: usize = 4096;

impl FrameCursor {
    /// Opens one manifest-listed binary segment for positioned reads.
    fn open(dir: &Path, meta: &SegmentMeta) -> Result<FrameCursor, StoreError> {
        let file = File::open(dir.join(&meta.file)).map_err(|e| StoreError::Corrupt {
            file: meta.file.clone(),
            detail: format!("manifest lists segment but it cannot be opened: {e}"),
        })?;
        Ok(FrameCursor {
            file,
            name: meta.file.clone(),
            offset: 0,
            records: meta.synced_records,
            remaining: meta.synced_records,
            buf: Vec::new(),
            high_water: SPECULATIVE_PAYLOAD,
            last_rank: None,
        })
    }

    /// The segment's file name (relative to the store directory).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Durable records this cursor yields per pass.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Restarts the cursor at the segment's first frame. O(1): no file
    /// reopen, no buffer re-allocation — the next pass reads the same
    /// (page-cached) bytes into the same buffer.
    pub fn rewind(&mut self) {
        self.offset = 0;
        self.remaining = self.records;
        self.last_rank = None;
    }

    /// Reads the next durable frame; `Ok(None)` once the watermark is
    /// exhausted (call [`FrameCursor::rewind`] to loop). The payload
    /// borrow is valid until the next call.
    pub fn next_frame(&mut self) -> Result<Option<(u64, &[u8])>, StoreError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        // Speculative coalesced read: header plus up to the largest
        // payload seen, in ONE positioned read. Only a frame bigger
        // than every one before it needs a second read for its tail.
        self.buf.resize(FRAME_HEADER + self.high_water, 0);
        let got = pread_upto(&self.file, &mut self.buf, self.offset)?;
        if got < FRAME_HEADER {
            return Err(self.short_of_watermark());
        }
        let header: &[u8; FRAME_HEADER] = self.buf[..FRAME_HEADER]
            .try_into()
            .expect("FRAME_HEADER bytes");
        let header = codec::parse_header(header);
        let total = FRAME_HEADER + header.len;
        self.high_water = self.high_water.max(header.len);
        if got < total {
            self.buf.resize(total, 0);
            if !pread_exact(
                &self.file,
                &mut self.buf[got..total],
                self.offset + got as u64,
            )? {
                return Err(self.short_of_watermark());
            }
        }
        if codec::frame_check(header.rank, &self.buf[FRAME_HEADER..total]) != header.check {
            return Err(StoreError::Corrupt {
                file: self.name.clone(),
                detail: "frame checksum mismatch below the manifest watermark".to_string(),
            });
        }
        if let Some(prev) = self.last_rank {
            if header.rank <= prev {
                return Err(StoreError::Corrupt {
                    file: self.name.clone(),
                    detail: format!(
                        "segment not rank-sorted (rank {} after {prev})",
                        header.rank
                    ),
                });
            }
        }
        self.last_rank = Some(header.rank);
        self.offset += total as u64;
        self.remaining -= 1;
        let tele = crate::telemetry::metrics();
        tele.records_replayed.incr();
        tele.bytes_replayed.add(total as u64);
        Ok(Some((header.rank, &self.buf[FRAME_HEADER..total])))
    }

    /// Decodes the next durable frame straight to a [`VisitLog`];
    /// `Ok(None)` at the watermark.
    pub fn next_log(&mut self) -> Result<Option<VisitLog>, StoreError> {
        let name = self.name.clone();
        match self.next_frame()? {
            None => Ok(None),
            Some((_, payload)) => {
                codec::decode_visit_log(payload)
                    .map(Some)
                    .map_err(|e| StoreError::Corrupt {
                        file: name,
                        detail: e,
                    })
            }
        }
    }

    fn short_of_watermark(&self) -> StoreError {
        StoreError::Corrupt {
            file: self.name.clone(),
            detail: format!(
                "segment ends {} records short of its manifest watermark",
                self.remaining
            ),
        }
    }
}

/// Opens every manifest-listed segment of the **binary** store at `dir`
/// as a rewindable [`FrameCursor`], in manifest (file-name-sorted)
/// order — the same fixed order [`par_fold`](crate::par_fold) uses.
/// Refuses JSONL stores: positioned frame reads are a binary-format
/// contract, and the replayer's hot loop must not fall back to line
/// scanning silently.
pub fn frame_cursors(dir: impl AsRef<Path>) -> Result<Vec<FrameCursor>, StoreError> {
    let dir = dir.as_ref();
    let manifest = Manifest::load(dir)?.ok_or_else(|| StoreError::Corrupt {
        file: crate::MANIFEST_FILE.to_string(),
        detail: format!("no manifest in {}", dir.display()),
    })?;
    if manifest.fingerprint.format != SegmentFormat::Binary {
        return Err(StoreError::Corrupt {
            file: crate::MANIFEST_FILE.to_string(),
            detail: format!(
                "frame cursors require a binary store, found {}",
                manifest.fingerprint.format
            ),
        });
    }
    manifest
        .segments
        .iter()
        .map(|meta| FrameCursor::open(dir, meta))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Fingerprint;
    use crate::writer::CrawlWriter;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-pread-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp(format: SegmentFormat) -> Fingerprint {
        Fingerprint {
            master_seed: 1,
            from: 1,
            to: 100,
            visit_config: "cfg".into(),
            generator: "gen".into(),
            format,
        }
    }

    fn log(rank: usize) -> VisitLog {
        VisitLog {
            site_domain: format!("site{rank}.com"),
            rank,
            complete: true,
            ..VisitLog::default()
        }
    }

    fn fill(dir: &Path, segments: usize, ranks: usize) {
        let store = CrawlWriter::open(dir, fp(SegmentFormat::Binary)).unwrap();
        let mut segs: Vec<_> = (0..segments).map(|_| store.segment().unwrap()).collect();
        for rank in 1..=ranks {
            segs[rank % segments].record(&log(rank)).unwrap();
        }
        for seg in segs {
            seg.finish().unwrap();
        }
    }

    #[test]
    fn cursors_match_segment_streams() {
        let dir = tmp_dir("match");
        fill(&dir, 3, 30);
        let via_streams: Vec<Vec<usize>> = crate::segment_streams(&dir)
            .unwrap()
            .into_iter()
            .map(|s| s.map(|l| l.unwrap().rank).collect())
            .collect();
        let via_cursors: Vec<Vec<usize>> = frame_cursors(&dir)
            .unwrap()
            .into_iter()
            .map(|mut c| {
                let mut ranks = Vec::new();
                while let Some(l) = c.next_log().unwrap() {
                    ranks.push(l.rank);
                }
                ranks
            })
            .collect();
        assert_eq!(via_streams, via_cursors);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewind_replays_identically_without_growing_buffers() {
        let dir = tmp_dir("rewind");
        fill(&dir, 2, 40);
        for mut cur in frame_cursors(&dir).unwrap() {
            let first: Vec<u64> = {
                let mut v = Vec::new();
                while let Some((rank, _)) = cur.next_frame().unwrap() {
                    v.push(rank);
                }
                v
            };
            let cap_after_first = cur.buf.capacity();
            for _ in 0..3 {
                cur.rewind();
                let mut again = Vec::new();
                while let Some((rank, _)) = cur.next_frame().unwrap() {
                    again.push(rank);
                }
                assert_eq!(first, again);
            }
            // The reusable buffer reached its high-water mark on pass 1
            // and never grew again — no per-pass re-buffering.
            assert_eq!(cur.buf.capacity(), cap_after_first);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jsonl_store_is_refused() {
        let dir = tmp_dir("jsonl");
        let store = CrawlWriter::open(&dir, fp(SegmentFormat::Jsonl)).unwrap();
        let mut seg = store.segment().unwrap();
        seg.record(&log(1)).unwrap();
        seg.finish().unwrap();
        drop(store);
        assert!(matches!(
            frame_cursors(&dir),
            Err(StoreError::Corrupt { detail, .. }) if detail.contains("binary store")
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_surfaces_on_every_pass() {
        let dir = tmp_dir("corrupt");
        fill(&dir, 1, 10);
        let path = dir.join("seg-0.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut cur = frame_cursors(&dir).unwrap().into_iter().next().unwrap();
        for _ in 0..2 {
            let mut saw_err = false;
            loop {
                match cur.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(StoreError::Corrupt { .. }) => {
                        saw_err = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
            assert!(saw_err, "damage must surface, not stream past");
            cur.rewind();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watermark_shortfall_is_corrupt() {
        let dir = tmp_dir("short");
        fill(&dir, 1, 5);
        let path = dir.join("seg-0.bin");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let mut cur = frame_cursors(&dir).unwrap().into_iter().next().unwrap();
        let mut result = Ok(());
        loop {
            match cur.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert!(matches!(
            result,
            Err(StoreError::Corrupt { detail, .. })
                if detail.contains("short of its manifest watermark")
                    || detail.contains("checksum mismatch")
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
