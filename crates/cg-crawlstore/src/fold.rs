//! Parallel per-segment folds: N workers each fold one whole segment's
//! stream, and the per-segment partials are combined **in manifest
//! order** — so the result is a deterministic function of the store's
//! contents, independent of worker count or scheduling.
//!
//! Why this is sound: segments hold *disjoint* rank sets (the writer
//! hands every worker a fresh file and ranks come from one atomic
//! counter), each segment is internally rank-sorted, and the manifest
//! lists segments in a fixed (file-name-sorted) order. Any fold whose
//! merge is associative over disjoint rank ranges therefore produces
//! byte-identical output at 1 thread and at N — the property the
//! analysis layer's differential tests pin.
//!
//! The store layer stays below analysis: this module knows nothing
//! about statistics. It runs caller-supplied closures over
//! [`SegmentStream`]s and hands back the partials in segment order;
//! `cg-analysis` supplies the mergeable partial types (`Dataset`
//! partials, `StreamStats`).
//!
//! [`par_fold_with`] is the chunk-granular successor: binary segments
//! are cut at frame-index boundaries ([`plan_chunks`](crate::chunk)),
//! so parallelism exists *within* a segment too — a store written by
//! one worker still fans out across every fold thread. The soundness
//! argument extends unchanged: chunks of one segment hold disjoint,
//! contiguous rank ranges in file order, so reducing the per-chunk
//! partials in the fixed (segment, chunk) order is deterministic at
//! any thread count and through any [`ReadBackend`].

use crate::chunk::{plan_chunks, ChunkStream, ReadBackend};
use crate::codec::SegmentFormat;
use crate::manifest::Manifest;
use crate::reader::{segment_streams, SegmentStream};
use crate::StoreError;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Folds every segment of the store at `dir` with `fold_segment`,
/// using up to `threads` workers, and returns the partials **in
/// manifest (file-name-sorted) segment order** — the fixed reduce
/// order that makes parallel results deterministic.
///
/// Workers pull segment indices from a shared counter, so long and
/// short segments load-balance. Memory is bounded by
/// `threads × (one in-flight record + one partial)` — independent of
/// crawl size as long as the partial type is.
///
/// The first segment error is returned (after all workers stop); the
/// partials of unaffected segments are discarded rather than exposed.
pub fn par_fold<T, F>(
    dir: impl AsRef<Path>,
    threads: usize,
    fold_segment: F,
) -> Result<Vec<T>, StoreError>
where
    T: Send,
    F: Fn(SegmentStream) -> Result<T, StoreError> + Sync,
{
    let streams = segment_streams(dir)?;
    let count = streams.len();
    let threads = threads.max(1).min(count.max(1));
    // One span + shard count per segment claim, at any thread count.
    let fold_shard = |i: usize, stream: SegmentStream| {
        crate::telemetry::metrics().fold_shards.incr();
        let _span = cg_telemetry::span!("fold_shard", i);
        fold_segment(stream)
    };
    if threads <= 1 {
        return streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| fold_shard(i, s))
            .collect();
    }

    // Hand each worker exclusive ownership of whole segments: a slot
    // vector claimed through an atomic cursor (indices are claimed
    // exactly once, so the mutexes are uncontended formality).
    let slots: Vec<Mutex<Option<SegmentStream>>> =
        streams.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let results: Vec<Mutex<Option<Result<T, StoreError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                let stream = slots[i]
                    .lock()
                    .expect("segment slot lock poisoned")
                    .take()
                    .expect("segment index claimed twice");
                let partial = fold_shard(i, stream);
                *results[i].lock().expect("result slot lock poisoned") = Some(partial);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("every segment index was claimed")
        })
        .collect()
}

/// Chunk-granular [`par_fold`]: folds every chunk of the store at
/// `dir` with `fold_chunk` through the chosen [`ReadBackend`], using up
/// to `threads` workers, and returns the partials **in (segment,
/// chunk) order** — the fixed reduce order that keeps parallel results
/// byte-identical at any thread count and backend.
///
/// Binary stores are cut at frame-index stride boundaries (sidecar
/// `.idx` files, rebuilt by a header scan when absent or refused), so
/// even a single-segment store saturates every worker. JSONL stores
/// fall back to one chunk per segment — same closure signature, same
/// determinism, segment-granular parallelism.
///
/// Workers pull chunk indices from a shared counter (work stealing, so
/// skewed segments load-balance); memory is bounded by
/// `threads × (one chunk window + one partial)`.
pub fn par_fold_with<T, F>(
    dir: impl AsRef<Path>,
    threads: usize,
    backend: ReadBackend,
    fold_chunk: F,
) -> Result<Vec<T>, StoreError>
where
    T: Send,
    F: Fn(ChunkStream) -> Result<T, StoreError> + Sync,
{
    let dir = dir.as_ref();
    // Line-oriented segments have no frame offsets to cut at: reuse the
    // segment-granular fold, one whole segment per chunk.
    let format = Manifest::load(dir)?.map(|m| m.fingerprint.format);
    if format == Some(SegmentFormat::Jsonl) {
        return par_fold(dir, threads, |s| fold_chunk(ChunkStream::from_segment(s)));
    }
    let plan = plan_chunks(dir)?;
    let count = plan.len();
    let threads = threads.max(1).min(count.max(1));
    let fold_one = |i: usize| -> Result<T, StoreError> {
        crate::telemetry::metrics().fold_shards.incr();
        let _span = cg_telemetry::span!("fold_shard", i);
        fold_chunk(plan.open_chunk(i, backend)?)
    };
    if threads <= 1 {
        return (0..count).map(fold_one).collect();
    }

    let results: Vec<Mutex<Option<Result<T, StoreError>>>> =
        (0..count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    return;
                }
                *results[i].lock().expect("result slot lock poisoned") = Some(fold_one(i));
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("every chunk index was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::SegmentFormat;
    use crate::manifest::Fingerprint;
    use crate::writer::CrawlWriter;
    use cg_instrument::VisitLog;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-fold-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            master_seed: 1,
            from: 1,
            to: 100,
            visit_config: "cfg".into(),
            generator: "gen".into(),
            format: SegmentFormat::Binary,
        }
    }

    fn log(rank: usize) -> VisitLog {
        VisitLog {
            site_domain: format!("site{rank}.com"),
            rank,
            complete: true,
            ..VisitLog::default()
        }
    }

    fn fill(dir: &std::path::Path, segments: usize, ranks: usize) {
        let store = CrawlWriter::open(dir, fp()).unwrap();
        let mut segs: Vec<_> = (0..segments).map(|_| store.segment().unwrap()).collect();
        for rank in 1..=ranks {
            segs[rank % segments].record(&log(rank)).unwrap();
        }
        for seg in segs {
            seg.finish().unwrap();
        }
    }

    #[test]
    fn partials_come_back_in_segment_order_at_any_thread_count() {
        let dir = tmp_dir("order");
        fill(&dir, 4, 100);
        let fold = |stream: SegmentStream| {
            stream
                .map(|r| r.map(|l| l.rank))
                .collect::<Result<Vec<_>, _>>()
        };
        let sequential = par_fold(&dir, 1, fold).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(par_fold(&dir, threads, fold).unwrap(), sequential);
        }
        // Partials cover the store exactly.
        let total: usize = sequential.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_folds_to_no_partials() {
        let dir = tmp_dir("empty");
        drop(CrawlWriter::open(&dir, fp()).unwrap());
        let partials = par_fold(&dir, 8, |s| Ok(s.count())).unwrap();
        assert!(partials.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_errors_surface_from_parallel_workers() {
        let dir = tmp_dir("err");
        fill(&dir, 3, 30);
        // Damage one segment mid-file after the store is closed.
        let mut bytes = std::fs::read(dir.join("seg-1.bin")).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(dir.join("seg-1.bin"), &bytes).unwrap();
        let result = par_fold(&dir, 4, |s| {
            s.map(|r| r.map(|_| 1usize)).sum::<Result<usize, _>>()
        });
        assert!(matches!(result, Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
