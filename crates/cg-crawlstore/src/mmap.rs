//! A minimal safe wrapper over `mmap(2)`/`munmap(2)` for read-only
//! chunk windows — the zero-copy segment read path.
//!
//! The chunked readers in [`chunk`](crate::chunk) decode frames
//! straight out of the OS page cache: one `mmap` per chunk, a borrowed
//! `&[u8]` window over exactly the requested byte range, and a
//! `munmap` on drop. No crate dependency is taken — the three syscalls
//! are declared directly — and every failure path degrades to the
//! existing `pread` readers, so mmap is an optimization, never a
//! requirement.
//!
//! Mapping granularity is the *chunk*, not the segment: a streaming
//! fold over a store larger than RAM keeps at most one chunk window
//! mapped per worker, so resident set stays bounded by
//! `workers × chunk size` exactly like the buffered readers (mapped
//! file pages count toward RSS once touched; whole-segment maps would
//! not stay flat).
//!
//! **Layer:** persistence — below [`chunk`](crate::chunk), which picks
//! between this and `pread`. **Invariants:** the returned window
//! covers exactly `[offset, offset + len)` of the file — page-alignment
//! slack is trimmed off, so bytes past a chunk's end (including bytes
//! past the durability watermark) are never part of the decode window;
//! mappings are read-only (`PROT_READ`) and private. **Entry points:**
//! [`Mmap::map_range`], [`Mmap::bytes`].

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_long, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MADV_SEQUENTIAL: c_int = 2;

    /// `sysconf(_SC_PAGESIZE)` selector (30 on Linux, 29 on macOS).
    #[cfg(target_os = "linux")]
    pub const SC_PAGESIZE: c_int = 30;
    #[cfg(target_os = "macos")]
    pub const SC_PAGESIZE: c_int = 29;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        pub fn sysconf(name: c_int) -> c_long;
    }

    /// The VM page size, for aligning map offsets. On platforms where
    /// the `_SC_PAGESIZE` selector value is not pinned above, fall back
    /// to 4096 — a wrong guess surfaces as an `EINVAL` from `mmap`,
    /// which the callers downgrade to the pread path.
    pub fn page_size() -> usize {
        #[cfg(any(target_os = "linux", target_os = "macos"))]
        {
            let n = unsafe { sysconf(SC_PAGESIZE) };
            if n > 0 {
                return n as usize;
            }
        }
        4096
    }
}

/// A read-only private mapping of one byte range of a file.
///
/// [`Mmap::bytes`] is the requested window exactly — the page-aligned
/// prefix the kernel requires is mapped but never exposed.
pub struct Mmap {
    #[cfg(unix)]
    base: *mut std::os::raw::c_void,
    /// Total mapped length (window plus alignment prefix).
    map_len: usize,
    /// Bytes of alignment slack before the window.
    prefix: usize,
    /// Requested window length.
    len: usize,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and private; no
// interior mutation is possible through it, so sharing the window
// across fold workers is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `[offset, offset + len)` of `file` read-only, hinting
    /// sequential access. Any syscall failure is returned as the plain
    /// `io::Error` so callers can fall back to positioned reads.
    #[cfg(unix)]
    pub fn map_range(file: &File, offset: u64, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Ok(Mmap {
                base: std::ptr::null_mut(),
                map_len: 0,
                prefix: 0,
                len: 0,
            });
        }
        let page = sys::page_size() as u64;
        let aligned = (offset / page) * page;
        let prefix = (offset - aligned) as usize;
        let map_len = prefix + len;
        // SAFETY: a fresh private read-only mapping of a plain file; no
        // existing memory is touched and the result is checked below.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                aligned as i64,
            )
        };
        if base as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // Purely advisory; chunk decodes walk the window front to back.
        // SAFETY: `base..base+map_len` is the mapping created above.
        unsafe {
            let _ = sys::madvise(base, map_len, sys::MADV_SEQUENTIAL);
        }
        Ok(Mmap {
            base,
            map_len,
            prefix,
            len,
        })
    }

    /// Non-Unix stub: always refuses, so every consumer takes its
    /// documented fallback to the positioned-read backend.
    #[cfg(not(unix))]
    pub fn map_range(_file: &File, _offset: u64, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is only available on Unix",
        ))
    }

    /// The mapped window — exactly the bytes requested from
    /// [`Mmap::map_range`].
    pub fn bytes(&self) -> &[u8] {
        #[cfg(unix)]
        {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `prefix + len <= map_len` by construction and the
            // mapping lives until `self` drops; the pages are readable.
            unsafe {
                std::slice::from_raw_parts((self.base as *const u8).add(self.prefix), self.len)
            }
        }
        #[cfg(not(unix))]
        {
            let _ = (self.map_len, self.prefix, self.len);
            &[]
        }
    }

    /// Window length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if !self.base.is_null() {
            // SAFETY: `base` is the live mapping from `map_range`;
            // after this the window slice can no longer be produced
            // (drop takes `self` by exclusive borrow).
            unsafe {
                let _ = sys::munmap(self.base, self.map_len);
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cg-mmap-{tag}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn window_is_exactly_the_requested_range() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = tmp_file("window", &data);
        let file = File::open(&path).unwrap();
        // Unaligned offset: the page-alignment prefix must be trimmed.
        let map = Mmap::map_range(&file, 4097, 513).unwrap();
        assert_eq!(map.bytes(), &data[4097..4097 + 513]);
        assert_eq!(map.len(), 513);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_length_window_is_empty() {
        let path = tmp_file("empty", b"abc");
        let file = File::open(&path).unwrap();
        let map = Mmap::map_range(&file, 1, 0).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn many_maps_unmap_cleanly() {
        let data = vec![7u8; 1 << 16];
        let path = tmp_file("cycle", &data);
        let file = File::open(&path).unwrap();
        for i in 0..200 {
            let off = (i * 321) % 1000;
            let map = Mmap::map_range(&file, off as u64, 4096).unwrap();
            assert_eq!(map.bytes()[0], 7);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
