//! The store manifest: config fingerprint + per-segment durability
//! watermarks, written atomically (temp file + rename) so a crash never
//! leaves a half-written manifest behind.

use crate::codec::SegmentFormat;
use crate::StoreError;
use cg_browser::VisitConfig;
use cg_webgen::GenConfig;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::path::Path;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Current on-disk format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Identifies the crawl a store belongs to. Two crawls with equal
/// fingerprints produce identical visit logs for every rank, which is
/// what makes resuming into an existing directory sound.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// The web generator's master seed.
    pub master_seed: u64,
    /// First rank of the crawl (inclusive, 1-based).
    pub from: usize,
    /// Last rank of the crawl (inclusive).
    pub to: usize,
    /// Digest of the [`VisitConfig`] (see
    /// [`VisitConfig::fingerprint`]).
    pub visit_config: String,
    /// Digest of the generator's [`GenConfig`]. Visit outcomes are a
    /// function of the *generated web*, not just the seed — two tools
    /// building different `GenConfig`s for the same seed/site-count
    /// (e.g. `GenConfig::small(n)` vs `GenConfig::default()`) must not
    /// resume each other's stores.
    pub generator: String,
    /// On-disk segment format. Part of the fingerprint because a store
    /// never mixes formats: resuming a JSONL store as binary (or vice
    /// versa) must be refused, not silently interleaved. Version-1
    /// manifests predate the field and default to JSONL.
    #[serde(default)]
    pub format: SegmentFormat,
}

impl Fingerprint {
    /// Builds the fingerprint for a crawl of ranks `[from, to]` under
    /// `cfg` on a generator seeded with `master_seed` and configured by
    /// `gen_cfg`.
    pub fn new(
        master_seed: u64,
        from: usize,
        to: usize,
        cfg: &VisitConfig,
        gen_cfg: &GenConfig,
    ) -> Fingerprint {
        // GenConfig is a plain struct of scalar knobs; its Debug form
        // is canonical (field order is fixed by the definition).
        let generator = cg_hash::sha1_hex(format!("{gen_cfg:?}").as_bytes());
        Fingerprint {
            master_seed,
            from,
            to,
            visit_config: cfg.fingerprint(),
            generator,
            format: SegmentFormat::default(),
        }
    }

    /// The same crawl, stored in `format` segments. The default is
    /// JSONL; large crawls opt into binary for replay speed.
    pub fn with_format(mut self, format: SegmentFormat) -> Fingerprint {
        self.format = format;
        self
    }
}

/// One segment file's durability watermark.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name relative to the store directory (`seg-<n>.jsonl` or
    /// `seg-<n>.bin`, matching the fingerprint's format).
    pub file: String,
    /// Records known durable (fsync'd) in this segment. The file may
    /// hold *more* complete lines than this (written but not yet
    /// fsync'd when the process died); recovery keeps every complete
    /// line, since completed visits are deterministic either way.
    pub synced_records: u64,
    /// Highest rank among the synced records (0 when empty).
    pub max_rank: u64,
}

/// The store's checkpoint record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// On-disk format version.
    pub version: u32,
    /// Which crawl this store belongs to.
    pub fingerprint: Fingerprint,
    /// Per-segment watermarks, sorted by file name.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// A fresh manifest with no segments.
    pub fn new(fingerprint: Fingerprint) -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            fingerprint,
            segments: Vec::new(),
        }
    }

    /// Loads the manifest from a store directory. `Ok(None)` when the
    /// directory has no manifest (a brand-new store).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let manifest: Manifest = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            file: MANIFEST_FILE.to_string(),
            detail: e.to_string(),
        })?;
        if manifest.version != MANIFEST_VERSION {
            return Err(StoreError::Corrupt {
                file: MANIFEST_FILE.to_string(),
                detail: format!(
                    "unsupported version {} (expected {MANIFEST_VERSION})",
                    manifest.version
                ),
            });
        }
        Ok(Some(manifest))
    }

    /// Writes the manifest atomically: serialize to `manifest.json.tmp`,
    /// fsync, rename over the live file, fsync the directory.
    pub fn store(&self, dir: &Path) -> Result<(), StoreError> {
        let mut sorted = self.clone();
        sorted.segments.sort_by(|a, b| a.file.cmp(&b.file));
        let text = serde_json::to_string_pretty(&sorted).map_err(|e| StoreError::Corrupt {
            file: MANIFEST_FILE.to_string(),
            detail: e.to_string(),
        })?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let live = dir.join(MANIFEST_FILE);
        {
            use std::io::Write;
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &live)?;
        // Make the rename itself durable. Directory fsync is best-effort
        // on platforms where opening a directory fails.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// The watermark entry for `file`, creating it when absent.
    pub fn segment_mut(&mut self, file: &str) -> &mut SegmentMeta {
        if let Some(i) = self.segments.iter().position(|s| s.file == file) {
            return &mut self.segments[i];
        }
        self.segments.push(SegmentMeta {
            file: file.to_string(),
            synced_records: 0,
            max_rank: 0,
        });
        self.segments.last_mut().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprint {
        Fingerprint {
            master_seed: 7,
            from: 1,
            to: 100,
            visit_config: "abc".into(),
            generator: "gen".into(),
            format: SegmentFormat::Jsonl,
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cg-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip() {
        let dir = tmp_dir("rt");
        let mut m = Manifest::new(fp());
        m.segment_mut("seg-1.jsonl").synced_records = 4;
        m.segment_mut("seg-0.jsonl").max_rank = 9;
        m.store(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(back.fingerprint, fp());
        // Stored sorted by file name.
        assert_eq!(back.segments[0].file, "seg-0.jsonl");
        assert_eq!(back.segments[1].synced_records, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_field_defaults_to_jsonl_for_old_manifests() {
        // A manifest written before the binary format existed has no
        // `format` key; it must load as a JSONL store, not be refused.
        let dir = tmp_dir("v1-format");
        let legacy = r#"{
            "version": 1,
            "fingerprint": {
                "master_seed": 7, "from": 1, "to": 100,
                "visit_config": "abc", "generator": "gen"
            },
            "segments": []
        }"#;
        std::fs::write(dir.join(MANIFEST_FILE), legacy).unwrap();
        let m = Manifest::load(&dir).unwrap().unwrap();
        assert_eq!(m.fingerprint.format, SegmentFormat::Jsonl);
        assert_eq!(m.fingerprint, fp());
        // And a binary fingerprint differs from a JSONL one: the
        // formats must not resume each other.
        assert_ne!(m.fingerprint, fp().with_format(SegmentFormat::Binary));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = tmp_dir("none");
        assert!(Manifest::load(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_manifest_is_corrupt() {
        let dir = tmp_dir("bad");
        std::fs::write(dir.join(MANIFEST_FILE), "{not json").unwrap();
        assert!(matches!(
            Manifest::load(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
