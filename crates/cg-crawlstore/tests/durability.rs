//! End-to-end durability: the write → kill → resume → analyze loop.
//!
//! The store's contract is that a crawl killed mid-range and resumed
//! converges to *byte-identical* output versus an uninterrupted run —
//! regardless of worker count, batch size, or how the death mangled the
//! tail of a segment — and that streaming analysis over the store
//! equals in-memory analysis over the same crawl.

use cg_analysis::Dataset;
use cg_browser::{crawl_into, crawl_range, VisitConfig};
use cg_crawlstore::{CrawlReader, CrawlWriter, Fingerprint, StoreError, MANIFEST_FILE};
use cg_webgen::{GenConfig, WebGenerator};
use std::io::Write as _;
use std::path::PathBuf;

const SEED: u64 = 0xC00C1E;
const SITES: usize = 60;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn generator() -> WebGenerator {
    WebGenerator::new(GenConfig::small(SITES), SEED)
}

fn fingerprint(cfg: &VisitConfig) -> Fingerprint {
    Fingerprint::new(SEED, 1, SITES, cfg, &GenConfig::small(SITES))
}

/// The store's canonical content: merged, rank-ordered raw JSONL.
fn merged_stream(dir: &PathBuf) -> String {
    let mut out = String::new();
    for line in CrawlReader::open(dir).expect("open for merge").raw_lines() {
        out.push_str(&line.expect("merge line"));
        out.push('\n');
    }
    out
}

#[test]
fn resumed_store_is_byte_identical_to_uninterrupted() {
    let gen = generator();
    let cfg = VisitConfig::regular();

    // Reference: one uninterrupted crawl.
    let dir_a = tmp_dir("uninterrupted");
    let store_a = CrawlWriter::open(&dir_a, fingerprint(&cfg))
        .unwrap()
        .with_batch(7);
    crawl_into(&gen, &cfg, 1, SITES, 3, &store_a).unwrap();

    // Victim: the same crawl "killed" partway — leaving a HOLE below
    // the store's max rank (ranks 21..29 missing while 30..40 are
    // durable), the shape a real kill -9 produces when one worker's
    // unsynced batch dies while another worker was further ahead…
    let dir_b = tmp_dir("killed");
    let store_b = CrawlWriter::open(&dir_b, fingerprint(&cfg))
        .unwrap()
        .with_batch(4);
    crawl_into(&gen, &cfg, 1, 20, 2, &store_b).unwrap();
    crawl_into(&gen, &cfg, 30, 40, 2, &store_b).unwrap();
    drop(store_b);
    // …with the crash leaving half a record at the end of a segment.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir_b.join("seg-0.jsonl"))
        .unwrap();
    f.write_all(b"{\"site_domain\":\"torn.example\",\"rank\":999")
        .unwrap();
    drop(f);

    // Resume with a *different* worker count: recovery truncates the
    // torn tail, reports the completed prefix, and the crawl finishes
    // only the missing ranks.
    let store_b = CrawlWriter::open(&dir_b, fingerprint(&cfg)).unwrap();
    let done_before = store_b.done_ranks().len();
    assert!(
        done_before > 0,
        "prefix run must have produced durable ranks"
    );
    assert!(!store_b.done_ranks().contains(&999));
    let summary = crawl_into(&gen, &cfg, 1, SITES, 4, &store_b).unwrap();
    assert_eq!(
        summary.visited,
        SITES - done_before,
        "resume must skip done ranks"
    );

    // The two stores' rank-ordered JSONL streams are byte-identical.
    let a = merged_stream(&dir_a);
    let b = merged_stream(&dir_b);
    assert!(!a.is_empty());
    assert_eq!(a, b, "resumed store diverged from uninterrupted store");

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn torn_tail_truncation_restores_watermark() {
    let gen = generator();
    let cfg = VisitConfig::regular();
    let dir = tmp_dir("torn-watermark");
    let store = CrawlWriter::open(&dir, fingerprint(&cfg))
        .unwrap()
        .with_batch(3);
    crawl_into(&gen, &cfg, 1, 10, 1, &store).unwrap();
    drop(store);

    let seg = dir.join("seg-0.jsonl");
    let clean_len = std::fs::metadata(&seg).unwrap().len();
    let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(b"garbage without a newline").unwrap();
    drop(f);

    let store = CrawlWriter::open(&dir, fingerprint(&cfg)).unwrap();
    assert_eq!(
        std::fs::metadata(&seg).unwrap().len(),
        clean_len,
        "torn tail must be truncated back to the last good record"
    );
    assert_eq!(store.done_ranks().len(), 10);
    drop(store);

    // The manifest watermark agrees with the surviving records.
    let manifest: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap()).unwrap();
    let synced: u64 = manifest
        .get("segments")
        .and_then(|s| s.as_array().cloned())
        .unwrap()
        .iter()
        .map(|s| s.get("synced_records").and_then(|v| v.as_u64()).unwrap())
        .sum();
    assert_eq!(synced, 10);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn streaming_analysis_equals_in_memory_analysis() {
    let gen = generator();
    let cfg = VisitConfig::regular();

    // In-memory reference crawl + dataset.
    let (outcomes, summary) = crawl_range(&gen, &cfg, 1, SITES, 4);
    let ds_mem = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
    assert_eq!(summary.failed, summary.visited - summary.complete);

    // Store-backed crawl + streaming dataset.
    let dir = tmp_dir("analysis");
    let store = CrawlWriter::open(&dir, fingerprint(&cfg)).unwrap();
    crawl_into(&gen, &cfg, 1, SITES, 3, &store).unwrap();
    let ds_store = Dataset::from_reader(CrawlReader::open(&dir).unwrap()).unwrap();

    // Identical population…
    assert_eq!(ds_mem.crawled, ds_store.crawled);
    assert_eq!(ds_mem.site_count(), ds_store.site_count());
    assert_eq!(
        serde_json::to_string(&ds_mem.logs).unwrap(),
        serde_json::to_string(&ds_store.logs).unwrap()
    );

    // …and every analysis stat agrees.
    let engine = cg_analysis::build_filter_engine(gen.registry());
    let entities = cg_entity::builtin_entity_map();
    let stat = |ds: &Dataset| {
        let exfil = cg_analysis::detect_exfiltration(ds, &entities);
        let manip = cg_analysis::detect_manipulation(ds, &entities);
        (
            serde_json::to_string(&cg_analysis::prevalence_stats(ds, &engine)).unwrap(),
            serde_json::to_string(&cg_analysis::api_usage(ds)).unwrap(),
            serde_json::to_string(&cg_analysis::cross_domain_summary(ds, &exfil, &manip)).unwrap(),
        )
    };
    assert_eq!(stat(&ds_mem), stat(&ds_store));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reused_writer_does_not_duplicate_ranks() {
    let gen = generator();
    let cfg = VisitConfig::regular();
    let dir = tmp_dir("reuse");
    let store = CrawlWriter::open(&dir, fingerprint(&cfg)).unwrap();
    // Two crawl_into calls over overlapping ranges on ONE open store:
    // the second must skip everything the first committed.
    let first = crawl_into(&gen, &cfg, 1, 30, 2, &store).unwrap();
    assert_eq!(first.visited, 30);
    let second = crawl_into(&gen, &cfg, 1, SITES, 3, &store).unwrap();
    assert_eq!(second.visited, SITES - 30);
    let ranks: Vec<usize> = CrawlReader::open(&dir)
        .unwrap()
        .map(|l| l.unwrap().rank)
        .collect();
    assert_eq!(ranks, (1..=SITES).collect::<Vec<_>>(), "no duplicates");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_live_writer_is_locked_out() {
    let cfg = VisitConfig::regular();
    let dir = tmp_dir("lock");
    let store = CrawlWriter::open(&dir, fingerprint(&cfg)).unwrap();
    let Err(err) = CrawlWriter::open(&dir, fingerprint(&cfg)) else {
        panic!("second writer must be refused while the first lives");
    };
    assert!(matches!(err, StoreError::Locked { .. }));
    // Readers are not excluded…
    assert!(CrawlReader::open(&dir).is_ok());
    // …and dropping the writer releases the lock.
    drop(store);
    assert!(CrawlWriter::open(&dir, fingerprint(&cfg)).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reader_refuses_foreign_fingerprint_via_writer() {
    let cfg = VisitConfig::regular();
    let dir = tmp_dir("foreign");
    let store = CrawlWriter::open(&dir, fingerprint(&cfg)).unwrap();
    drop(store);
    // A crawl with a different visit config may not resume here.
    let other = VisitConfig {
        interact: false,
        ..VisitConfig::regular()
    };
    let Err(err) = CrawlWriter::open(&dir, fingerprint(&other)) else {
        panic!("foreign fingerprint must be refused");
    };
    assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
    // The reader reports whose crawl the store holds.
    let reader = CrawlReader::open(&dir).unwrap();
    assert_eq!(reader.fingerprint().visit_config, cfg.fingerprint());
    std::fs::remove_dir_all(&dir).unwrap();
}
