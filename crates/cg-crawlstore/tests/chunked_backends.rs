//! Differential suite for the chunked read path: every [`ReadBackend`]
//! must produce byte-identical streams at every thread count, the
//! frame-index sidecar must round-trip and rebuild, and a damaged or
//! stale sidecar must cost a rescan — never a wrong result.

use cg_crawlstore::index::{decode_index, index_file_name, scan_index, INDEX_STRIDE};
use cg_crawlstore::{
    par_fold, par_fold_with, plan_chunks, CrawlWriter, Fingerprint, ReadBackend, SegmentFormat,
    StoreError,
};
use cg_instrument::VisitLog;
use std::fs::File;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-chunked-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fp(format: SegmentFormat) -> Fingerprint {
    Fingerprint {
        master_seed: 1,
        from: 1,
        to: 10_000,
        visit_config: "cfg".into(),
        generator: "gen".into(),
        format,
    }
}

fn log(rank: usize) -> VisitLog {
    VisitLog {
        site_domain: format!("site{rank}.com"),
        rank,
        complete: !rank.is_multiple_of(7),
        ..VisitLog::default()
    }
}

/// Writes `ranks` visits striped over `segments` segment files, so
/// every segment holds an ascending (but gapped) rank run long enough
/// to span several index strides.
fn fill(dir: &Path, format: SegmentFormat, segments: usize, ranks: usize) {
    let store = CrawlWriter::open(dir, fp(format)).unwrap();
    let mut segs: Vec<_> = (0..segments).map(|_| store.segment().unwrap()).collect();
    for rank in 1..=ranks {
        segs[rank % segments].record(&log(rank)).unwrap();
    }
    for seg in segs {
        seg.finish().unwrap();
    }
}

const BACKENDS: [ReadBackend; 3] = [ReadBackend::Mmap, ReadBackend::Pread, ReadBackend::Buffered];

/// The full serialized stream per chunk — rank order AND byte-level
/// `VisitLog` equality in one artifact.
fn drain(dir: &Path, threads: usize, backend: ReadBackend) -> Vec<Vec<String>> {
    par_fold_with(dir, threads, backend, |chunk| {
        chunk
            .map(|r| r.map(|l| serde_json::to_string(&l).expect("serialize")))
            .collect()
    })
    .unwrap()
}

#[test]
fn all_backends_and_thread_counts_agree() {
    let dir = tmp_dir("diff");
    // 3 segments × ~67 frames: several chunks per segment.
    fill(&dir, SegmentFormat::Binary, 3, 200);
    let baseline = drain(&dir, 1, ReadBackend::Pread);
    let total: usize = baseline.iter().map(Vec::len).sum();
    assert_eq!(total, 200);
    let plan = plan_chunks(&dir).unwrap();
    assert!(
        plan.len() > plan.segments(),
        "a {}-frame segment must split into multiple chunks",
        200 / 3
    );
    for backend in BACKENDS {
        for threads in [1, 2, 8] {
            assert_eq!(
                drain(&dir, threads, backend),
                baseline,
                "{backend} at {threads} threads diverged"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sidecar_round_trips_and_matches_a_rebuild() {
    let dir = tmp_dir("roundtrip");
    fill(&dir, SegmentFormat::Binary, 1, 100);
    let idx_path = dir.join("seg-0.idx");
    assert!(idx_path.exists(), "writer must emit the sidecar at commit");
    let written = decode_index(&std::fs::read(&idx_path).unwrap()).unwrap();
    assert_eq!(written.stride, INDEX_STRIDE);
    assert_eq!(
        written.entries.len(),
        100usize.div_ceil(INDEX_STRIDE as usize)
    );
    assert_eq!(written.entries[0].offset, 0);
    // The rebuild scan over the bare segment yields the same entries.
    let file = File::open(dir.join("seg-0.bin")).unwrap();
    let (rebuilt, _end) = scan_index(&file, "seg-0.bin", 100, INDEX_STRIDE).unwrap();
    assert_eq!(written, rebuilt);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_sidecar_rebuilds_from_the_segment() {
    let dir = tmp_dir("bare");
    fill(&dir, SegmentFormat::Binary, 2, 150);
    let baseline = drain(&dir, 2, ReadBackend::Mmap);
    for seg in ["seg-0.bin", "seg-1.bin"] {
        std::fs::remove_file(dir.join(index_file_name(seg).unwrap())).unwrap();
    }
    // Same chunking, same results — old index-less stores just rescan.
    assert_eq!(drain(&dir, 2, ReadBackend::Mmap), baseline);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_or_stale_sidecars_are_refused_not_believed() {
    let dir = tmp_dir("badidx");
    fill(&dir, SegmentFormat::Binary, 1, 120);
    let baseline = drain(&dir, 2, ReadBackend::Mmap);
    let idx_path = dir.join("seg-0.idx");
    let good = std::fs::read(&idx_path).unwrap();

    // Bit-flip damage anywhere in the sidecar.
    for at in [0usize, 4, 9, 13, good.len() / 2, good.len() - 1] {
        let mut bad = good.clone();
        bad[at] ^= 0x55;
        std::fs::write(&idx_path, &bad).unwrap();
        assert_eq!(drain(&dir, 2, ReadBackend::Mmap), baseline);
    }

    // Truncated sidecar.
    std::fs::write(&idx_path, &good[..good.len() / 2]).unwrap();
    assert_eq!(drain(&dir, 2, ReadBackend::Mmap), baseline);

    // Structurally valid but stale: entries shifted off the real frame
    // boundaries. The header probes must reject it and rescan.
    let mut shifted = decode_index(&good).unwrap();
    for e in shifted.entries.iter_mut().skip(1) {
        e.offset += 3;
    }
    std::fs::write(
        &idx_path,
        cg_crawlstore::index::encode_index(shifted.stride, &shifted.entries),
    )
    .unwrap();
    assert_eq!(drain(&dir, 2, ReadBackend::Mmap), baseline);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_and_watermark_rules_hold_on_every_backend() {
    let dir = tmp_dir("torn");
    fill(&dir, SegmentFormat::Binary, 1, 80);
    // Chop bytes off the end: the manifest still promises 80 records,
    // so every backend must surface Corrupt, not stream a short store.
    let path = dir.join("seg-0.bin");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    for backend in BACKENDS {
        let result = par_fold_with(&dir, 2, backend, |chunk| {
            chunk.map(|r| r.map(|_| 1u64)).sum::<Result<u64, _>>()
        });
        assert!(
            matches!(result, Err(StoreError::Corrupt { .. })),
            "{backend} accepted a store short of its watermark"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_file_damage_surfaces_from_chunked_decodes() {
    let dir = tmp_dir("damage");
    fill(&dir, SegmentFormat::Binary, 1, 90);
    let path = dir.join("seg-0.bin");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    for backend in BACKENDS {
        let result = par_fold_with(&dir, 4, backend, |chunk| {
            chunk.map(|r| r.map(|_| 1u64)).sum::<Result<u64, _>>()
        });
        assert!(
            matches!(result, Err(StoreError::Corrupt { .. })),
            "{backend} streamed past mid-file damage"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn jsonl_stores_fold_as_one_chunk_per_segment() {
    let dir = tmp_dir("jsonl");
    fill(&dir, SegmentFormat::Jsonl, 3, 60);
    let via_segments = par_fold(&dir, 2, |s| {
        s.map(|r| r.map(|l| l.rank)).collect::<Result<Vec<_>, _>>()
    })
    .unwrap();
    for backend in BACKENDS {
        let via_chunks = par_fold_with(&dir, 2, backend, |c| {
            c.map(|r| r.map(|l| l.rank)).collect::<Result<Vec<_>, _>>()
        })
        .unwrap();
        assert_eq!(via_chunks, via_segments);
    }
    // But an explicit chunk plan over JSONL is refused, like cursors.
    assert!(matches!(
        plan_chunks(&dir),
        Err(StoreError::Corrupt { detail, .. }) if detail.contains("binary store")
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_store_has_an_empty_plan() {
    let dir = tmp_dir("empty");
    drop(CrawlWriter::open(&dir, fp(SegmentFormat::Binary)).unwrap());
    let plan = plan_chunks(&dir).unwrap();
    assert!(plan.is_empty());
    let partials = par_fold_with(&dir, 8, ReadBackend::Mmap, |c| Ok(c.count())).unwrap();
    assert!(partials.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_keeps_sidecars_consistent_with_recovery() {
    let dir = tmp_dir("resume");
    fill(&dir, SegmentFormat::Binary, 1, 70);
    let baseline = drain(&dir, 1, ReadBackend::Pread);
    // Tear the tail: recovery truncates the last frame AND rewrites the
    // sidecar from its scan.
    let path = dir.join("seg-0.bin");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    let store = CrawlWriter::open(&dir, fp(SegmentFormat::Binary)).unwrap();
    assert_eq!(store.done_ranks().len(), 69);
    drop(store);
    // The surviving prefix streams identically to before the tear.
    let after: Vec<String> = drain(&dir, 4, ReadBackend::Mmap)
        .into_iter()
        .flatten()
        .collect();
    let before: Vec<String> = baseline.into_iter().flatten().take(69).collect();
    assert_eq!(after.len(), 69);
    assert_eq!(after, before);
    std::fs::remove_dir_all(&dir).unwrap();
}
