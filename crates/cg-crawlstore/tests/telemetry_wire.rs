//! Telemetry never touches the wire: a crawl written while the global
//! registry records must produce a byte-identical store to one written
//! with the registry's kill switch thrown. Counters and spans observe
//! the segment writer; they must not perturb what it writes.

use cg_browser::VisitConfig;
use cg_crawlstore::{crawl_to_store_with, CrawlReader, SegmentFormat};
use cg_webgen::{GenConfig, WebGenerator};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const SEED: u64 = 0xC00C1E;
const SITES: usize = 60;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-telewire-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn crawl(dir: &Path, format: SegmentFormat, threads: usize) {
    let gen = WebGenerator::new(GenConfig::small(SITES), SEED);
    crawl_to_store_with(
        dir,
        &gen,
        &VisitConfig::regular(),
        1,
        SITES,
        threads,
        format,
        |_| {},
    )
    .unwrap();
}

/// Every `seg-*` file in `dir`, name → raw bytes.
fn segment_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        if name.starts_with("seg-") {
            out.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    assert!(!out.is_empty(), "no segments written under {dir:?}");
    out
}

/// The merged, rank-ordered record stream as canonical JSON lines —
/// the store's logical wire content at any thread count.
fn raw_lines(dir: &Path) -> Vec<String> {
    CrawlReader::open(dir)
        .unwrap()
        .raw_lines()
        .map(|l| l.unwrap())
        .collect()
}

/// One test function (not several) because the registry kill switch is
/// process-global state: the enabled and disabled crawls must run in a
/// controlled order, and the switch must be restored afterwards.
#[test]
fn stores_are_byte_identical_with_telemetry_on_and_off() {
    // Single-threaded runs: rank→segment assignment is deterministic,
    // so the segment *files* themselves must match byte for byte.
    let on_j = tmp_dir("on-jsonl");
    crawl(&on_j, SegmentFormat::Jsonl, 1);
    // Multi-threaded runs: segment contents depend on work claiming,
    // but the merged record stream is the wire contract.
    let on_b = tmp_dir("on-bin");
    crawl(&on_b, SegmentFormat::Binary, 3);

    cg_telemetry::global().set_enabled(false);
    let off_j = tmp_dir("off-jsonl");
    crawl(&off_j, SegmentFormat::Jsonl, 1);
    let off_b = tmp_dir("off-bin");
    crawl(&off_b, SegmentFormat::Binary, 3);
    cg_telemetry::global().set_enabled(true);

    assert_eq!(
        segment_bytes(&on_j),
        segment_bytes(&off_j),
        "telemetry changed the bytes a JSONL segment writer produced"
    );
    assert_eq!(
        raw_lines(&on_b),
        raw_lines(&off_b),
        "telemetry changed the binary store's merged record stream"
    );

    for dir in [on_j, on_b, off_j, off_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
