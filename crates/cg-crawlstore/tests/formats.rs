//! Cross-format differential tests: the binary segment format must be
//! an *invisible* substitution for JSONL — same crawl in, same
//! statistics out, same recovery behaviour under a kill — and the
//! parallel per-segment fold must be an invisible substitution for the
//! sequential one.

use cg_analysis::{Dataset, StreamStats};
use cg_browser::VisitConfig;
use cg_crawlstore::{
    crawl_to_store_with, open_store_with, CrawlReader, ReadBackend, SegmentFormat, StoreError,
};
use cg_webgen::{GenConfig, WebGenerator};
use std::path::PathBuf;

const SEED: u64 = 0xC00C1E;
const SITES: usize = 80;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cg-formats-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn generator() -> WebGenerator {
    WebGenerator::new(GenConfig::small(SITES), SEED)
}

fn crawl(dir: &PathBuf, format: SegmentFormat, threads: usize) {
    let gen = generator();
    let cfg = VisitConfig::regular();
    crawl_to_store_with(dir, &gen, &cfg, 1, SITES, threads, format, |_| {}).unwrap();
}

/// The same crawl stored in both formats replays identically: same
/// rank stream, same reserialized JSON lines, same retained-dataset
/// and streaming statistics, byte for byte.
#[test]
fn binary_and_jsonl_stores_are_equivalent() {
    let dir_j = tmp_dir("equiv-jsonl");
    let dir_b = tmp_dir("equiv-bin");
    crawl(&dir_j, SegmentFormat::Jsonl, 3);
    crawl(&dir_b, SegmentFormat::Binary, 4);

    // Rank streams agree.
    let ranks = |dir: &PathBuf| {
        CrawlReader::open(dir)
            .unwrap()
            .map(|r| r.unwrap().rank)
            .collect::<Vec<_>>()
    };
    assert_eq!(ranks(&dir_j), ranks(&dir_b));
    assert_eq!(ranks(&dir_j), (1..=SITES).collect::<Vec<_>>());

    // Canonical JSONL reprints agree line-for-line (binary decodes and
    // reserializes through the same serde path).
    let lines = |dir: &PathBuf| {
        CrawlReader::open(dir)
            .unwrap()
            .raw_lines()
            .map(|l| l.unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&dir_j), lines(&dir_b));

    // Retained datasets and streaming aggregates agree byte-for-byte.
    let ds_j = Dataset::from_reader(CrawlReader::open(&dir_j).unwrap()).unwrap();
    let ds_b = Dataset::from_reader(CrawlReader::open(&dir_b).unwrap()).unwrap();
    assert_eq!(ds_j.crawled, ds_b.crawled);
    assert_eq!(
        serde_json::to_string(&ds_j.logs).unwrap(),
        serde_json::to_string(&ds_b.logs).unwrap()
    );
    let ss_j = StreamStats::from_store(&dir_j, 1).unwrap();
    let ss_b = StreamStats::from_store(&dir_b, 1).unwrap();
    assert_eq!(
        serde_json::to_string(&ss_j).unwrap(),
        serde_json::to_string(&ss_b).unwrap()
    );

    // Binary stores the same crawl in fewer bytes.
    let bytes = |dir: &PathBuf, ext: &str| {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(ext))
            .map(|e| e.metadata().unwrap().len())
            .sum::<u64>()
    };
    assert!(bytes(&dir_b, ".bin") < bytes(&dir_j, ".jsonl"));

    std::fs::remove_dir_all(&dir_j).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

/// A binary store killed mid-crawl (torn trailing frame) resumes to the
/// same merged stream as an uninterrupted binary crawl — the JSONL
/// durability contract, verbatim.
#[test]
fn binary_store_survives_kill_and_resume() {
    let gen = generator();
    let cfg = VisitConfig::regular();

    let dir_ref = tmp_dir("kill-ref");
    crawl(&dir_ref, SegmentFormat::Binary, 2);

    // Victim: crawl a prefix, then tear the tail of a segment the way a
    // kill -9 between write() and fsync does.
    let dir = tmp_dir("kill-victim");
    {
        let store = open_store_with(&dir, &gen, &cfg, 1, SITES, SegmentFormat::Binary).unwrap();
        cg_browser::crawl_into(&gen, &cfg, 1, SITES / 2, 2, &store).unwrap();
    }
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".bin"))
        .expect("a binary segment exists")
        .path();
    let mut bytes = std::fs::read(&seg).unwrap();
    let torn_len = bytes.len() - 7; // mid-frame: not even a full header boundary
    bytes.truncate(torn_len);
    // Append garbage past the watermark too — both shapes must vanish.
    bytes.extend_from_slice(&[0xde, 0xad]);
    std::fs::write(&seg, &bytes).unwrap();

    // Resume with a different worker count and finish the range.
    let store = open_store_with(&dir, &gen, &cfg, 1, SITES, SegmentFormat::Binary).unwrap();
    let done = store.done_ranks().len();
    assert!(done < SITES, "the kill lost work to redo");
    cg_browser::crawl_into(&gen, &cfg, 1, SITES, 5, &store).unwrap();
    drop(store);

    let merged = |d: &PathBuf| {
        CrawlReader::open(d)
            .unwrap()
            .raw_lines()
            .map(|l| l.unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(merged(&dir), merged(&dir_ref));

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir_ref).unwrap();
}

/// Opening a binary store with a JSONL fingerprint (or vice versa) is a
/// fingerprint mismatch, not silent mixed-format corruption.
#[test]
fn cross_format_resume_is_refused() {
    let dir = tmp_dir("cross");
    crawl(&dir, SegmentFormat::Binary, 2);
    let gen = generator();
    let cfg = VisitConfig::regular();
    let Err(err) = open_store_with(&dir, &gen, &cfg, 1, SITES, SegmentFormat::Jsonl) else {
        panic!("cross-format resume must be refused");
    };
    assert!(matches!(err, StoreError::FingerprintMismatch { .. }));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Parallel per-segment folds are byte-identical to sequential ones at
/// every thread count, through every read backend, for both the
/// streaming and the retained mode.
#[test]
fn parallel_fold_equals_sequential_fold() {
    let dir = tmp_dir("parfold");
    crawl(&dir, SegmentFormat::Binary, 6); // several segments

    let seq_stats = serde_json::to_string(&StreamStats::from_store(&dir, 1).unwrap()).unwrap();
    let seq_ds = Dataset::from_store(&dir, 1).unwrap();
    let seq_logs = serde_json::to_string(&seq_ds.logs).unwrap();

    // Sequential over par_fold(threads=1) equals a plain reader fold.
    let reader_ds = Dataset::from_reader(CrawlReader::open(&dir).unwrap()).unwrap();
    assert_eq!(seq_logs, serde_json::to_string(&reader_ds.logs).unwrap());
    assert_eq!(seq_ds.crawled, reader_ds.crawled);

    let backends = [ReadBackend::Mmap, ReadBackend::Pread, ReadBackend::Buffered];
    for backend in backends {
        for threads in [1, 2, 8] {
            let par_stats = serde_json::to_string(
                &StreamStats::from_store_with(&dir, threads, backend).unwrap(),
            )
            .unwrap();
            assert_eq!(
                par_stats, seq_stats,
                "StreamStats via {backend} at {threads} threads"
            );
            let par_ds = Dataset::from_store_with(&dir, threads, backend).unwrap();
            assert_eq!(
                serde_json::to_string(&par_ds.logs).unwrap(),
                seq_logs,
                "Dataset via {backend} at {threads} threads"
            );
            assert_eq!(par_ds.crawled, seq_ds.crawled);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
