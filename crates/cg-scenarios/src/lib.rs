//! **cg-scenarios** — the adversarial cookie-interaction catalog.
//!
//! The generator (`cg-webgen`) reproduces the paper's *population*:
//! thousands of sites whose tracker stacks follow calibrated
//! distributions. This crate poses the *individual adversarial
//! interactions* those distributions only occasionally produce — nine
//! named scenarios (CNAME cloaking, overwrite/delete contention, a
//! cookie-sync chain, subdomain ghost-writing, a consent-gated setter,
//! first-party impersonation, a whitelist-boundary SSO flow, a
//! respawning tracker, and a mixed-burst stress page), each a
//! hand-posed [`cg_webgen::SiteBlueprint`] plus an expectation list
//! stating which operations the guard must allow, block, or scope and
//! what the vanilla run must show.
//!
//! Layering: sits beside `cg-breakage`/`cg-baselines` in the analysis
//! tier. It consumes `cg-webgen` (via [`cg_webgen::SiteBuilder`]),
//! `cg-script` behaviours, `cg-browser` visits, and
//! `cg_breakage::probe_regressions`; `cg-experiments` exposes it as the
//! `scenarios` subcommand.
//!
//! Invariants:
//!
//! * **Registry-backed fixtures** — every vendor a scenario poses is
//!   resolved from [`cg_webgen::VendorRegistry`]
//!   ([`fixtures::Fixtures`]); catalog construction panics on drift.
//! * **Determinism** — [`matrix::run_matrix`] produces byte-identical
//!   JSON for a given seed at any thread count (CI diffs it against
//!   `golden/scenario_matrix.json`).
//!
//! Entry points: [`catalog()`] for the scenarios, [`run_matrix`] /
//! [`render_table`] for the defense matrix, or
//! `cg-experiments -- scenarios` / `cargo run --release --example
//! scenario_matrix` from the command line.

pub mod catalog;
pub mod fixtures;
pub mod matrix;
pub mod scenario;

pub use catalog::catalog;
pub use fixtures::Fixtures;
pub use matrix::{
    render_table, run_matrix, ConditionCell, ScenarioMatrix, ScenarioRow, CONDITIONS,
};
pub use scenario::{ConditionKind, Expect, Party, Scenario};
