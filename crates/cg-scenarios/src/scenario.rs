//! The scenario model: a posed site plus a checkable expectation list
//! ([`Scenario::expectation`]).

use cg_instrument::{VisitLog, WriteKind};
use cg_webgen::SiteBlueprint;

/// Who performed (or must not perform) an operation, as the
/// instrumentation attributes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Party {
    /// The visited site's own domain (first-party scripts and the
    /// server's `Set-Cookie` headers).
    Site,
    /// A specific eTLD+1.
    Domain(String),
    /// An inline / unattributable script (no actor).
    Inline,
}

impl Party {
    /// Whether an event actor field matches this party on `site`.
    fn matches(&self, actor: Option<&str>, site: &str) -> bool {
        match self {
            Party::Site => actor == Some(site),
            Party::Domain(d) => actor == Some(d.as_str()),
            Party::Inline => actor.is_none(),
        }
    }

    fn describe(&self) -> String {
        match self {
            Party::Site => "the site".to_string(),
            Party::Domain(d) => d.clone(),
            Party::Inline => "an inline script".to_string(),
        }
    }
}

/// Which defense condition an [`Expect`] applies to. The matrix runner
/// maps each kind to one column of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionKind {
    /// The regular browser — what the attack looks like unguarded.
    Vanilla,
    /// CookieGuard, strict policy (the paper's evaluation mode).
    GuardStrict,
    /// CookieGuard with entity grouping (§7.2's whitelist refinement).
    GuardEntity,
    /// CookieGuard strict plus the site-operator whitelist.
    GuardWhitelist,
    /// CookieGuard strict plus DNS-aware (CNAME-resolving) attribution.
    GuardDns,
}

impl ConditionKind {
    /// The matrix column this kind checks against.
    pub fn condition_name(&self) -> &'static str {
        match self {
            ConditionKind::Vanilla => "vanilla",
            ConditionKind::GuardStrict => "cookieguard",
            ConditionKind::GuardEntity => "cookieguard-entity",
            ConditionKind::GuardWhitelist => "cookieguard-whitelist",
            ConditionKind::GuardDns => "cookieguard-dns",
        }
    }
}

/// One checkable claim about a visit's instrumentation log.
///
/// Positive claims (`Writes`, `Exfiltrates`, …) assert the operation
/// happened *and was admitted*; `…Blocked` claims assert the guard
/// refused it at the enforcement point; `No…` claims assert it never
/// appears at all (e.g. a sync chain cut before its second hop).
#[derive(Debug, Clone)]
pub enum Expect {
    /// `by` created or overwrote `cookie` and the write reached the jar.
    Writes {
        /// Cookie name.
        cookie: String,
        /// Acting party.
        by: Party,
    },
    /// `by` created or overwrote `cookie` at least `n` times (admitted).
    WritesAtLeast {
        /// Cookie name.
        cookie: String,
        /// Acting party.
        by: Party,
        /// Minimum admitted write count.
        n: usize,
    },
    /// `by` attempted a create/overwrite of `cookie` and the guard
    /// blocked it.
    WriteBlocked {
        /// Cookie name.
        cookie: String,
        /// Acting party.
        by: Party,
    },
    /// No admitted create/overwrite of `cookie` by `by` appears at all
    /// (the op never fired — e.g. a gated setter whose gate stayed shut).
    NoWrite {
        /// Cookie name.
        cookie: String,
        /// Acting party.
        by: Party,
    },
    /// `by` deleted `cookie` and the delete reached the jar.
    Deletes {
        /// Cookie name.
        cookie: String,
        /// Acting party.
        by: Party,
    },
    /// `by` attempted to delete `cookie` and the guard blocked it.
    DeleteBlocked {
        /// Cookie name.
        cookie: String,
        /// Acting party.
        by: Party,
    },
    /// `by` issued a request whose query string carries `cookie` (the
    /// exfiltration signature the §5.3 detector keys on).
    Exfiltrates {
        /// Cookie name.
        cookie: String,
        /// Initiating party.
        by: Party,
    },
    /// No request by `by` carries `cookie` in its query string.
    NoExfil {
        /// Cookie name.
        cookie: String,
        /// Initiating party.
        by: Party,
    },
    /// At least one of `by`'s reads had cookies withheld by the guard.
    ReadFiltered {
        /// Reading party.
        by: Party,
    },
    /// None of `by`'s reads had anything withheld (full jar visibility).
    ReadClean {
        /// Reading party.
        by: Party,
    },
    /// The functional probe for `feature` succeeded (every firing).
    ProbeOk {
        /// Feature label (`sso`, `chat`, …).
        feature: String,
    },
    /// The functional probe for `feature` failed at least once.
    ProbeFails {
        /// Feature label.
        feature: String,
    },
    /// No probe that passes under vanilla regresses under this
    /// condition (evaluated through
    /// [`cg_breakage::probe_regressions`] against the vanilla cell).
    NoProbeRegression,
}

impl Expect {
    /// Human-readable form used in the matrix JSON and table.
    pub fn describe(&self) -> String {
        match self {
            Expect::Writes { cookie, by } => format!("{} writes {cookie}", by.describe()),
            Expect::WritesAtLeast { cookie, by, n } => {
                format!("{} writes {cookie} at least {n}x", by.describe())
            }
            Expect::WriteBlocked { cookie, by } => {
                format!("guard blocks {}'s write of {cookie}", by.describe())
            }
            Expect::NoWrite { cookie, by } => {
                format!("{} never writes {cookie}", by.describe())
            }
            Expect::Deletes { cookie, by } => format!("{} deletes {cookie}", by.describe()),
            Expect::DeleteBlocked { cookie, by } => {
                format!("guard blocks {}'s delete of {cookie}", by.describe())
            }
            Expect::Exfiltrates { cookie, by } => {
                format!("{} exfiltrates {cookie}", by.describe())
            }
            Expect::NoExfil { cookie, by } => {
                format!("{} cannot exfiltrate {cookie}", by.describe())
            }
            Expect::ReadFiltered { by } => {
                format!("{}'s reads are filtered", by.describe())
            }
            Expect::ReadClean { by } => {
                format!("{} sees the full jar", by.describe())
            }
            Expect::ProbeOk { feature } => format!("probe '{feature}' works"),
            Expect::ProbeFails { feature } => format!("probe '{feature}' fails"),
            Expect::NoProbeRegression => "no probe regresses vs vanilla".to_string(),
        }
    }

    /// Evaluates the claim against `log` (with `vanilla` as the
    /// regression baseline). `site` is the scenario site's eTLD+1.
    pub fn eval(&self, log: &VisitLog, vanilla: &VisitLog, site: &str) -> bool {
        let write_kind = |k: WriteKind| matches!(k, WriteKind::Create | WriteKind::Overwrite);
        match self {
            Expect::Writes { cookie, by } => log.sets.iter().any(|s| {
                s.name == *cookie
                    && write_kind(s.kind)
                    && !s.blocked
                    && by.matches(s.actor.as_deref(), site)
            }),
            Expect::WritesAtLeast { cookie, by, n } => {
                log.sets
                    .iter()
                    .filter(|s| {
                        s.name == *cookie
                            && write_kind(s.kind)
                            && !s.blocked
                            && by.matches(s.actor.as_deref(), site)
                    })
                    .count()
                    >= *n
            }
            Expect::WriteBlocked { cookie, by } => log.sets.iter().any(|s| {
                s.name == *cookie
                    && write_kind(s.kind)
                    && s.blocked
                    && by.matches(s.actor.as_deref(), site)
            }),
            // "Never appears at all": a guard-*blocked* attempt also
            // fails this claim — the op must never have fired.
            Expect::NoWrite { cookie, by } => !log.sets.iter().any(|s| {
                s.name == *cookie && write_kind(s.kind) && by.matches(s.actor.as_deref(), site)
            }),
            Expect::Deletes { cookie, by } => log.sets.iter().any(|s| {
                s.name == *cookie
                    && s.kind == WriteKind::Delete
                    && !s.blocked
                    && by.matches(s.actor.as_deref(), site)
            }),
            Expect::DeleteBlocked { cookie, by } => log.sets.iter().any(|s| {
                s.name == *cookie
                    && s.kind == WriteKind::Delete
                    && s.blocked
                    && by.matches(s.actor.as_deref(), site)
            }),
            Expect::Exfiltrates { cookie, by } => log
                .requests
                .iter()
                .any(|r| by.matches(r.initiator.as_deref(), site) && query_carries(&r.url, cookie)),
            Expect::NoExfil { cookie, by } => !log
                .requests
                .iter()
                .any(|r| by.matches(r.initiator.as_deref(), site) && query_carries(&r.url, cookie)),
            Expect::ReadFiltered { by } => log
                .reads
                .iter()
                .any(|r| by.matches(r.actor.as_deref(), site) && r.filtered_count > 0),
            Expect::ReadClean { by } => log
                .reads
                .iter()
                .filter(|r| by.matches(r.actor.as_deref(), site))
                .all(|r| r.filtered_count == 0),
            Expect::ProbeOk { feature } => {
                let mut any = false;
                for p in log.probes.iter().filter(|p| p.feature == *feature) {
                    any = true;
                    if !p.ok {
                        return false;
                    }
                }
                any
            }
            Expect::ProbeFails { feature } => {
                log.probes.iter().any(|p| p.feature == *feature && !p.ok)
            }
            Expect::NoProbeRegression => cg_breakage::probe_regressions(vanilla, log).is_empty(),
        }
    }
}

/// Whether `url`'s query string carries a `cookie=` parameter.
fn query_carries(url: &str, cookie: &str) -> bool {
    let Some((_, query)) = url.split_once('?') else {
        return false;
    };
    query
        .split('&')
        .any(|kv| kv.split_once('=').map(|(k, _)| k) == Some(cookie))
}

/// One adversarial cookie-interaction scenario: a hand-posed site plus
/// the decisions the guard (and the unguarded browser) must exhibit.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable kebab-case identifier (the matrix row key).
    pub name: &'static str,
    /// One-line display title.
    pub title: &'static str,
    /// The paper section/table the scenario characterizes.
    pub paper_ref: &'static str,
    /// What the scenario poses and why it matters.
    pub description: &'static str,
    /// The posed site.
    pub site: SiteBlueprint,
    /// Claims, each bound to the defense condition it checks.
    pub expectation: Vec<(ConditionKind, Expect)>,
}

impl Scenario {
    /// The posed site's registrable domain.
    pub fn site_domain(&self) -> &str {
        &self.site.spec.domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_detection_matches_exact_parameter_names() {
        assert!(query_carries("https://t.com/c?r=1&_ga=GA1.1.2.3", "_ga"));
        assert!(query_carries("https://t.com/c?_ga=x", "_ga"));
        assert!(!query_carries("https://t.com/c?my_ga=x", "_ga"));
        assert!(!query_carries("https://t.com/_ga", "_ga"));
    }
}
