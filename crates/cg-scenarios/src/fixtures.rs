//! Scenario fixtures resolved from the generator's vendor registry.
//!
//! Every third-party vendor a scenario poses — its script host, path,
//! and signature cookie — is looked up in
//! [`cg_webgen::VendorRegistry`] (core vendors only), **never**
//! re-hardcoded here. That is the anti-drift contract: if the generator
//! renames a vendor domain or its ghost-written cookie, the scenario
//! catalog fails loudly at construction instead of silently posing a
//! stack the entity map no longer recognizes.
//!
//! Parties that are deliberately *not* vendors — the posed sites
//! themselves and the SSO identity providers — live in
//! [`SCENARIO_SITES`] and [`SCENARIO_PARTIES`], and a test asserts they
//! never collide with registry domains.

use cg_webgen::{VendorRegistry, VendorSpec};

/// Posed scenario-site domains (one per catalog entry, all fixed so
/// expectations can name them statically).
pub const SCENARIO_SITES: &[&str] = &[
    "cname-cloak-shop.com",
    "contention-news.com",
    "sync-chain-blog.com",
    "ghostwrite-store.com",
    "consent-gate-mag.com",
    "impersonation-cafe.com",
    "sso-boundary-bank.com",
    "respawn-tracker-tv.com",
    "mixed-burst-portal.com",
];

/// Non-vendor third parties scenarios pose (SSO providers and readers).
/// These are scenario-local by design: an SSO flow's endpoints are not
/// tracker vendors and must not enter the filter lists.
pub const SCENARIO_PARTIES: &[&str] = &["idp-login.net", "account-portal.com"];

/// The registry-backed fixture set for the catalog.
pub struct Fixtures {
    registry: VendorRegistry,
}

impl Fixtures {
    /// Builds the core-vendor registry (no long tail: scenarios pose
    /// named vendors only).
    pub fn new() -> Fixtures {
        Fixtures {
            registry: VendorRegistry::new(Vec::new()),
        }
    }

    /// The underlying registry (drives the blocklist condition, so the
    /// matrix's filter lists are the generator's own).
    pub fn registry(&self) -> &VendorRegistry {
        &self.registry
    }

    /// The vendor registered for `domain`; panics with a catalog-drift
    /// message when absent (a test exercises every catalog lookup).
    pub fn vendor(&self, domain: &str) -> &VendorSpec {
        self.registry.by_domain(domain).unwrap_or_else(|| {
            panic!("scenario fixture drift: {domain:?} is not in cg-webgen's vendor registry")
        })
    }

    /// The signature cookie the registry says `domain` ghost-writes;
    /// panics when the vendor sets no `document.cookie` cookie.
    pub fn cookie_of(&self, domain: &str) -> &str {
        let v = self.vendor(domain);
        v.signature_cookie().unwrap_or_else(|| {
            panic!("scenario fixture drift: {domain:?} ghost-writes no document.cookie cookie")
        })
    }
}

impl Default for Fixtures {
    fn default() -> Fixtures {
        Fixtures::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_local_domains_do_not_shadow_registry_vendors() {
        let f = Fixtures::new();
        for d in SCENARIO_SITES.iter().chain(SCENARIO_PARTIES) {
            assert!(
                f.registry().by_domain(d).is_none(),
                "{d} collides with a registry vendor"
            );
        }
    }

    #[test]
    fn registry_lookups_used_by_the_catalog_resolve() {
        let f = Fixtures::new();
        for d in [
            "googletagmanager.com",
            "google-analytics.com",
            "doubleclick.net",
            "facebook.net",
            "licdn.com",
            "criteo.net",
            "pubmatic.com",
            "cookielaw.org",
            "bing.com",
            "crwdcntrl.net",
            "segment.com",
            "cdn-cookieyes.com",
        ] {
            assert!(f.registry().by_domain(d).is_some(), "{d} missing");
        }
        assert_eq!(f.cookie_of("facebook.net"), "_fbp");
        assert_eq!(f.cookie_of("googletagmanager.com"), "_ga");
        assert_eq!(f.cookie_of("criteo.net"), "cto_bundle");
    }
}
