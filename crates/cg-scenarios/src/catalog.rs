//! The scenario catalog: nine posed adversarial cookie interactions.
//!
//! Each entry composes a [`cg_webgen::SiteBuilder`] blueprint,
//! registry-backed vendor behaviours ([`crate::fixtures`]), and an
//! expectation list binding claims to defense conditions. The catalog
//! is fully deterministic: no randomness is consumed at construction,
//! so the same build always poses byte-identical sites.

use crate::fixtures::Fixtures;
use crate::scenario::{ConditionKind, Expect, Party, Scenario};
use cg_http::RequestKind;
use cg_script::{
    AttrChanges, CookieAttrs, CookieSelection, Encoding, ScriptOp, SegmentPolicy, ValueSpec,
};
use cg_webgen::{SiteBuilder, SsoKind};

use ConditionKind::{GuardDns, GuardEntity, GuardStrict, GuardWhitelist, Vanilla};

const YEAR: i64 = 31_536_000;
const DAY: i64 = 86_400;

fn set(name: &str, value: ValueSpec, max_age_s: Option<i64>, site_wide: bool) -> ScriptOp {
    ScriptOp::SetCookie {
        name: name.to_string(),
        value,
        attrs: CookieAttrs {
            max_age_s,
            site_wide,
            path: None,
            secure: false,
        },
    }
}

fn exfil(dest: &str, path: &str, names: &[&str]) -> ScriptOp {
    ScriptOp::Exfiltrate {
        dest_host: dest.to_string(),
        path: path.to_string(),
        selection: CookieSelection::Named(names.iter().map(|n| n.to_string()).collect()),
        segment: SegmentPolicy::Full,
        encoding: Encoding::Plain,
        kind: RequestKind::Image,
        via_store: false,
    }
}

fn defer(delay_ms: u64, ops: Vec<ScriptOp>) -> ScriptOp {
    ScriptOp::Defer {
        delay_ms,
        ops,
        lose_attribution: false,
    }
}

fn dom(d: &str) -> Party {
    Party::Domain(d.to_string())
}

/// Builds the full catalog (≥ 8 scenarios, deterministic order).
pub fn catalog() -> Vec<Scenario> {
    let f = Fixtures::new();
    vec![
        cname_cloaked_set_cookie(&f),
        cross_entity_contention(&f),
        cookie_sync_chain(&f),
        subdomain_ghost_write(&f),
        consent_gated_late_setter(&f),
        first_party_impersonation(&f),
        sso_whitelist_boundary(&f),
        cookie_respawn_on_delete(&f),
        mixed_burst_stress(&f),
    ]
}

/// CNAME-cloaked collection: a tracker script and its `Set-Cookie`
/// arrive from a first-party subdomain that is a DNS alias for an ad
/// exchange. Stack-trace attribution sees a first-party script, so the
/// default guard admits everything — only DNS-aware attribution
/// ([`ConditionKind::GuardDns`]) uncloaks and contains it (§8).
fn cname_cloaked_set_cookie(f: &Fixtures) -> Scenario {
    let dc = f.vendor("doubleclick.net");
    let site = SiteBuilder::new("cname-cloak-shop.com")
        // The server response carries the tracker id as a first-party
        // HTTP cookie (what CNAME cloaking is for).
        .server_cookie("_dcid=9f3ab2c477de11aa; Max-Age=33696000; Path=/")
        .cname("metrics.cname-cloak-shop.com", &dc.host)
        .first_party_hosted(
            "metrics",
            "/t.js",
            vec![
                ScriptOp::ReadAllCookies,
                defer(
                    600,
                    vec![exfil(&format!("ad.{}", dc.domain), "/rtb/bid", &["_dcid"])],
                ),
            ],
        )
        .build();
    Scenario {
        name: "cname-cloaked-set-cookie",
        title: "CNAME-cloaked HTTP Set-Cookie and collection",
        paper_ref: "§8 (CNAME cloaking limitation), §5.7",
        description: "A DNS alias turns an ad exchange's script and its \
                      Set-Cookie into first-party traffic. Stack-based \
                      attribution admits it; only CNAME-resolving \
                      attribution contains the exfiltration.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Writes {
                    cookie: "_dcid".into(),
                    by: Party::Site,
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: "_dcid".into(),
                    by: Party::Site,
                },
            ),
            // The default guard is blind to the cloak: the script is
            // first-party to it, so the leak persists.
            (
                GuardStrict,
                Expect::Exfiltrates {
                    cookie: "_dcid".into(),
                    by: Party::Site,
                },
            ),
            (GuardStrict, Expect::ReadClean { by: Party::Site }),
            // DNS-aware attribution uncloaks the caller and cuts it off.
            (
                GuardDns,
                Expect::NoExfil {
                    cookie: "_dcid".into(),
                    by: Party::Site,
                },
            ),
            (GuardDns, Expect::ReadFiltered { by: Party::Site }),
        ],
    }
}

/// Two unrelated ad-tech vendors fight over one identifier: Criteo
/// mints `cto_bundle`, Pubmatic blind-overwrites it, and a consent
/// manager deletes it (the §5.5 contention case study, posed
/// deterministically).
fn cross_entity_contention(f: &Fixtures) -> Scenario {
    let criteo = f.vendor("criteo.net");
    let pubmatic = f.vendor("pubmatic.com");
    let cky = f.vendor("cdn-cookieyes.com");
    let cto = f.cookie_of("criteo.net").to_string();
    let site = SiteBuilder::new("contention-news.com")
        .category(cg_webgen::SiteCategory::News)
        .vendor_script(
            criteo,
            vec![set(&cto, ValueSpec::HexId(194), Some(390 * DAY), true)],
        )
        .vendor_script(
            pubmatic,
            vec![defer(
                800,
                vec![ScriptOp::OverwriteCookie {
                    target: cto.clone(),
                    value: ValueSpec::HexId(258),
                    changes: AttrChanges::value_and_expiry(),
                    blind: true,
                }],
            )],
        )
        .vendor_script(
            cky,
            vec![defer(
                1_500,
                vec![ScriptOp::DeleteCookie {
                    target: cto.clone(),
                    via_store: false,
                }],
            )],
        )
        .build();
    Scenario {
        name: "cross-entity-overwrite-contention",
        title: "Cross-entity overwrite/delete contention",
        paper_ref: "§5.5, Table 5",
        description: "Pubmatic blind-overwrites Criteo's cto_bundle and a \
                      consent manager deletes it. The guard must pin the \
                      cookie to its creator: overwrite and delete blocked, \
                      Criteo's own write untouched.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Writes {
                    cookie: cto.clone(),
                    by: dom("pubmatic.com"),
                },
            ),
            (
                Vanilla,
                Expect::Deletes {
                    cookie: cto.clone(),
                    by: dom("cdn-cookieyes.com"),
                },
            ),
            (
                GuardStrict,
                Expect::Writes {
                    cookie: cto.clone(),
                    by: dom("criteo.net"),
                },
            ),
            (
                GuardStrict,
                Expect::WriteBlocked {
                    cookie: cto.clone(),
                    by: dom("pubmatic.com"),
                },
            ),
            (
                GuardStrict,
                Expect::DeleteBlocked {
                    cookie: cto.clone(),
                    by: dom("cdn-cookieyes.com"),
                },
            ),
            // Entity grouping must NOT heal this: the two belong to
            // different organizations.
            (
                GuardEntity,
                Expect::WriteBlocked {
                    cookie: cto,
                    by: dom("pubmatic.com"),
                },
            ),
        ],
    }
}

/// A cookie-sync chain: GTM mints `_ga`; a data broker copies the id
/// into its own namespace and ships both to its sync endpoint. The
/// guard cuts the chain at the broker's first (read) hop.
fn cookie_sync_chain(f: &Fixtures) -> Scenario {
    let gtm = f.vendor("googletagmanager.com");
    let lotame = f.vendor("crwdcntrl.net");
    let ga = f.cookie_of("googletagmanager.com").to_string();
    let site = SiteBuilder::new("sync-chain-blog.com")
        .category(cg_webgen::SiteCategory::Blog)
        .vendor_script(
            gtm,
            vec![
                set(&ga, ValueSpec::GaStyle, Some(2 * YEAR), true),
                defer(
                    400,
                    vec![exfil("www.google-analytics.com", "/g/collect", &[&ga])],
                ),
            ],
        )
        .vendor_script(
            lotame,
            vec![defer(
                900,
                vec![
                    ScriptOp::CopyCookie {
                        from: ga.clone(),
                        to: "_cc_ga".to_string(),
                        max_age_s: Some(390 * DAY),
                        site_wide: true,
                    },
                    exfil("bcp.crwdcntrl.net", "/5/c", &["_cc_ga", &ga]),
                ],
            )],
        )
        .build();
    Scenario {
        name: "cookie-sync-chain",
        title: "Cookie-sync chain (mint, adopt, exfiltrate)",
        paper_ref: "§5.3–§5.4, Table 2 (cookie synchronization)",
        description: "crwdcntrl.net copies GTM's _ga into _cc_ga and \
                      exfiltrates both. CookieGuard must let the creator's \
                      own telemetry through while making the broker's read \
                      — and therefore the whole chain — impossible.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Writes {
                    cookie: "_cc_ga".into(),
                    by: dom("crwdcntrl.net"),
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: ga.clone(),
                    by: dom("crwdcntrl.net"),
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: "_cc_ga".into(),
                    by: dom("crwdcntrl.net"),
                },
            ),
            // Creator telemetry survives under the guard…
            (
                GuardStrict,
                Expect::Exfiltrates {
                    cookie: ga.clone(),
                    by: dom("googletagmanager.com"),
                },
            ),
            // …the broker's chain does not.
            (
                GuardStrict,
                Expect::NoWrite {
                    cookie: "_cc_ga".into(),
                    by: dom("crwdcntrl.net"),
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: ga,
                    by: dom("crwdcntrl.net"),
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: "_cc_ga".into(),
                    by: dom("crwdcntrl.net"),
                },
            ),
        ],
    }
}

/// Ghost-writing with downstream parasitism: the Meta pixel writes
/// `_fbp` site-wide into the first-party jar; LinkedIn's insight tag
/// free-rides on it. Isolation must *scope*, not block: Meta keeps its
/// own cookie, LinkedIn loses the foreign read, the site sees its jar
/// untouched.
fn subdomain_ghost_write(f: &Fixtures) -> Scenario {
    let fb = f.vendor("facebook.net");
    let licdn = f.vendor("licdn.com");
    let fbp = f.cookie_of("facebook.net").to_string();
    let site = SiteBuilder::new("ghostwrite-store.com")
        .category(cg_webgen::SiteCategory::Shopping)
        .vendor_script(
            fb,
            vec![
                // site_wide: Domain=ghostwrite-store.com, so every
                // subdomain shares the identifier — the ghost-write shape.
                set(&fbp, ValueSpec::FbpStyle, Some(90 * DAY), true),
                defer(500, vec![exfil("www.facebook.com", "/tr/", &[&fbp])]),
            ],
        )
        .vendor_script(
            licdn,
            vec![defer(
                1_000,
                vec![exfil(
                    "px.ads.linkedin.com",
                    "/attribution_trigger",
                    &[&fbp],
                )],
            )],
        )
        .external_script(
            "https://www.ghostwrite-store.com/app.js",
            vec![ScriptOp::ReadAllCookies],
        )
        .build();
    Scenario {
        name: "subdomain-ghost-write",
        title: "Subdomain-wide ghost-write with a free-riding reader",
        paper_ref: "§5.2 (ghost-writing), §5.4 case study",
        description: "Meta ghost-writes _fbp with Domain=<site>; LinkedIn \
                      exfiltrates it. The guard must scope, not block: \
                      Meta's write and own-cookie telemetry stay, the \
                      free-rider is cut off, the site reads clean.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Writes {
                    cookie: fbp.clone(),
                    by: dom("facebook.net"),
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: fbp.clone(),
                    by: dom("licdn.com"),
                },
            ),
            // Ghost-writing itself is admitted (NewCookie) — isolation
            // scopes visibility instead of refusing writes.
            (
                GuardStrict,
                Expect::Writes {
                    cookie: fbp.clone(),
                    by: dom("facebook.net"),
                },
            ),
            (
                GuardStrict,
                Expect::Exfiltrates {
                    cookie: fbp.clone(),
                    by: dom("facebook.net"),
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: fbp,
                    by: dom("licdn.com"),
                },
            ),
            (GuardStrict, Expect::ReadClean { by: Party::Site }),
        ],
    }
}

/// A consent-gated late setter: Bing's tag polls for the CMP's consent
/// cookie and only then mints its identifier. Under the guard the gate
/// cookie is foreign, so the tracker never sees consent and never sets —
/// the guard's deliberate fail-closed trade-off.
fn consent_gated_late_setter(f: &Fixtures) -> Scenario {
    let onetrust = f.vendor("cookielaw.org");
    let bing = f.vendor("bing.com");
    let consent = f.cookie_of("cookielaw.org").to_string();
    let uet = f.cookie_of("bing.com").to_string();
    let site = SiteBuilder::new("consent-gate-mag.com")
        .category(cg_webgen::SiteCategory::News)
        .vendor_script(
            onetrust,
            vec![set(&consent, ValueSpec::ConsentString, Some(YEAR), true)],
        )
        .vendor_script(
            bing,
            vec![defer(
                700,
                vec![ScriptOp::IfCookieVisible {
                    cookie: consent.clone(),
                    then_ops: vec![
                        set(&uet, ValueSpec::HexId(32), Some(390 * DAY), true),
                        exfil("bat.bing.com", "/action/0", &[&uet]),
                    ],
                    else_ops: vec![],
                }],
            )],
        )
        .build();
    Scenario {
        name: "consent-gated-late-setter",
        title: "Consent-gated late setter",
        paper_ref: "§5.5 (consent managers), §7.2 (functional trade-offs)",
        description: "bat.bing.com sets _uetsid only after OptanonConsent \
                      becomes visible. Unguarded, the gate opens; guarded, \
                      the CMP's cookie is foreign to the tracker, the gate \
                      stays shut, and no identifier is ever minted.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Writes {
                    cookie: uet.clone(),
                    by: dom("bing.com"),
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: uet.clone(),
                    by: dom("bing.com"),
                },
            ),
            (
                GuardStrict,
                Expect::ReadFiltered {
                    by: dom("bing.com"),
                },
            ),
            (
                GuardStrict,
                Expect::NoWrite {
                    cookie: uet.clone(),
                    by: dom("bing.com"),
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: uet,
                    by: dom("bing.com"),
                },
            ),
            // The CMP keeps access to its own consent record.
            (
                GuardStrict,
                Expect::Writes {
                    cookie: consent,
                    by: dom("cookielaw.org"),
                },
            ),
        ],
    }
}

/// First-party impersonation: the site inlines a copy of the GTM tag
/// (a common "performance" practice), so the vendor behaviour runs with
/// no attributable origin. Strict inline policy must treat it as
/// untrusted; the genuine external tag on the same page keeps working.
fn first_party_impersonation(f: &Fixtures) -> Scenario {
    let gtm = f.vendor("googletagmanager.com");
    let ga = f.cookie_of("googletagmanager.com").to_string();
    let site = SiteBuilder::new("impersonation-cafe.com")
        .inline_script(vec![
            // Verbatim vendor behaviour, inlined into the page.
            set(&ga, ValueSpec::GaStyle, Some(2 * YEAR), true),
            ScriptOp::ReadAllCookies,
            defer(
                300,
                vec![exfil("www.google-analytics.com", "/g/collect", &[&ga])],
            ),
        ])
        .vendor_script(
            gtm,
            vec![set("_gcl_au", ValueSpec::GaStyle, Some(90 * DAY), true)],
        )
        .build();
    Scenario {
        name: "first-party-impersonation",
        title: "Vendor code inlined as a first-party script",
        paper_ref: "§6.1 (inline policy), §8 (signature attribution)",
        description: "An inline copy of the GTM behaviour has no stack \
                      origin. Strict CookieGuard denies it everything \
                      (fail closed); the attributable external tag on the \
                      same page is unaffected.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Writes {
                    cookie: ga.clone(),
                    by: Party::Inline,
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: ga.clone(),
                    by: Party::Inline,
                },
            ),
            (
                GuardStrict,
                Expect::WriteBlocked {
                    cookie: ga.clone(),
                    by: Party::Inline,
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: ga,
                    by: Party::Inline,
                },
            ),
            (
                GuardStrict,
                Expect::Writes {
                    cookie: "_gcl_au".into(),
                    by: dom("googletagmanager.com"),
                },
            ),
        ],
    }
}

/// A cross-entity SSO flow: the identity provider's script sets the
/// session cookie, an unrelated portal widget reads it. Strict
/// isolation breaks login; entity grouping cannot heal it (different
/// organizations); the site-operator whitelist is the designed escape
/// hatch.
fn sso_whitelist_boundary(_f: &Fixtures) -> Scenario {
    let site = SiteBuilder::new("sso-boundary-bank.com")
        .category(cg_webgen::SiteCategory::Finance)
        .sso(SsoKind::CrossEntity {
            provider: "idp-login.net".to_string(),
            reader: "account-portal.com".to_string(),
        })
        .external_script(
            "https://login.idp-login.net/sso.js",
            vec![set("idp_session", ValueSpec::Uuid, Some(DAY), true)],
        )
        .external_script(
            "https://cdn.account-portal.com/widget.js",
            vec![defer(
                400,
                vec![ScriptOp::Probe {
                    feature: "sso".to_string(),
                    cookie: "idp_session".to_string(),
                }],
            )],
        )
        .build();
    Scenario {
        name: "sso-whitelist-boundary",
        title: "Whitelist-boundary SSO flow",
        paper_ref: "§7.2, Table 3 (SSO breakage)",
        description: "idp-login.net sets the session cookie; the unrelated \
                      account-portal.com widget must read it to keep the \
                      user signed in. Strict and entity-grouped guards \
                      break the flow; whitelisting the reader restores it.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::ProbeOk {
                    feature: "sso".into(),
                },
            ),
            (
                GuardStrict,
                Expect::ProbeFails {
                    feature: "sso".into(),
                },
            ),
            // Unrelated entities: grouping is not an escape hatch.
            (
                GuardEntity,
                Expect::ProbeFails {
                    feature: "sso".into(),
                },
            ),
            (
                GuardWhitelist,
                Expect::ProbeOk {
                    feature: "sso".into(),
                },
            ),
            (GuardWhitelist, Expect::NoProbeRegression),
        ],
    }
}

/// A respawning tracker: the Meta pixel watches its identifier through
/// CookieStore change events and re-mints it the moment a consent
/// manager deletes it. The guard prevents the respawn war upstream: the
/// foreign delete is blocked, so the watcher never fires.
fn cookie_respawn_on_delete(f: &Fixtures) -> Scenario {
    let fb = f.vendor("facebook.net");
    let cky = f.vendor("cdn-cookieyes.com");
    let fbp = f.cookie_of("facebook.net").to_string();
    let site = SiteBuilder::new("respawn-tracker-tv.com")
        .category(cg_webgen::SiteCategory::Entertainment)
        .vendor_script(
            fb,
            vec![
                set(&fbp, ValueSpec::FbpStyle, Some(90 * DAY), true),
                ScriptOp::OnCookieChange {
                    watch: Some(fbp.clone()),
                    deletions_only: true,
                    ops: vec![set(&fbp, ValueSpec::FbpStyle, Some(90 * DAY), true)],
                },
            ],
        )
        .vendor_script(
            cky,
            vec![defer(
                1_200,
                vec![ScriptOp::DeleteCookie {
                    target: fbp.clone(),
                    via_store: false,
                }],
            )],
        )
        .build();
    Scenario {
        name: "cookie-respawn-on-delete",
        title: "Respawn-on-delete contention",
        paper_ref: "§5.5 (deletion), CookieStore change events",
        description: "facebook.net re-mints _fbp whenever it is deleted; a \
                      consent manager tries to purge it. Unguarded this is \
                      a delete/respawn war; guarded, the foreign delete is \
                      blocked and the respawn handler never fires.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Deletes {
                    cookie: fbp.clone(),
                    by: dom("cdn-cookieyes.com"),
                },
            ),
            // Initial mint + at least one respawn.
            (
                Vanilla,
                Expect::WritesAtLeast {
                    cookie: fbp.clone(),
                    by: dom("facebook.net"),
                    n: 2,
                },
            ),
            (
                GuardStrict,
                Expect::DeleteBlocked {
                    cookie: fbp.clone(),
                    by: dom("cdn-cookieyes.com"),
                },
            ),
            (
                GuardStrict,
                Expect::Writes {
                    cookie: fbp,
                    by: dom("facebook.net"),
                },
            ),
        ],
    }
}

/// Mixed-burst stress: seven registry vendors interleave creates,
/// bursts of reads, a tag-manager injection chain, a blind overwrite,
/// deletes, and fan-out exfiltration on one page — the densest
/// single-page workload the catalog poses, for profiling and for
/// checking that scoping still holds under load.
fn mixed_burst_stress(f: &Fixtures) -> Scenario {
    let gtm = f.vendor("googletagmanager.com");
    let ga_v = f.vendor("google-analytics.com");
    let fb = f.vendor("facebook.net");
    let criteo = f.vendor("criteo.net");
    let pubmatic = f.vendor("pubmatic.com");
    let segment = f.vendor("segment.com");
    let cky = f.vendor("cdn-cookieyes.com");
    let ga = f.cookie_of("googletagmanager.com").to_string();
    let fbp = f.cookie_of("facebook.net").to_string();
    let cto = f.cookie_of("criteo.net").to_string();
    let ajs = f.cookie_of("segment.com").to_string();
    let site = SiteBuilder::new("mixed-burst-portal.com")
        .category(cg_webgen::SiteCategory::News)
        .server_cookie("session_id=8c1f0a2e5b7d4e66; Path=/; HttpOnly")
        .server_cookie("prefs=compact; Max-Age=31536000")
        .vendor_script(
            gtm,
            vec![
                set(&ga, ValueSpec::GaStyle, Some(2 * YEAR), true),
                ScriptOp::ReadAllCookies,
                ScriptOp::InjectScript {
                    url: ga_v.script_url(),
                },
                defer(
                    500,
                    vec![exfil("www.google-analytics.com", "/g/collect", &[&ga])],
                ),
            ],
        )
        .injectable(
            &ga_v.script_url(),
            vec![
                set("_gid", ValueSpec::GaStyle, Some(DAY), true),
                ScriptOp::ReadAllCookies,
                defer(
                    650,
                    vec![exfil(
                        "www.google-analytics.com",
                        "/collect",
                        &["_gid", &ga],
                    )],
                ),
            ],
        )
        .vendor_script(
            fb,
            vec![
                set(&fbp, ValueSpec::FbpStyle, Some(90 * DAY), true),
                defer(550, vec![exfil("www.facebook.com", "/tr/", &[&fbp])]),
            ],
        )
        .vendor_script(
            criteo,
            vec![
                set(&cto, ValueSpec::HexId(194), Some(390 * DAY), true),
                ScriptOp::ReadAllCookies,
            ],
        )
        .vendor_script(
            pubmatic,
            vec![
                ScriptOp::ReadAllCookies,
                defer(
                    900,
                    vec![
                        ScriptOp::OverwriteCookie {
                            target: cto.clone(),
                            value: ValueSpec::HexId(258),
                            changes: AttrChanges::value_and_expiry(),
                            blind: true,
                        },
                        exfil("image8.pubmatic.com", "/AdServer/PugMaster", &[&cto, &fbp]),
                    ],
                ),
            ],
        )
        .vendor_script(
            segment,
            vec![
                set(&ajs, ValueSpec::Uuid, Some(YEAR), true),
                ScriptOp::Microtask {
                    ops: vec![ScriptOp::ReadAllCookies],
                },
            ],
        )
        .vendor_script(
            cky,
            vec![defer(
                1_400,
                vec![
                    ScriptOp::DeleteCookie {
                        target: fbp.clone(),
                        via_store: false,
                    },
                    ScriptOp::DeleteCookie {
                        target: ga.clone(),
                        via_store: false,
                    },
                ],
            )],
        )
        .subpage(
            "/article-1",
            vec![cg_webgen::ScriptBlueprint {
                url: Some(gtm.script_url()),
                ops: vec![ScriptOp::ReadAllCookies],
            }],
        )
        .build();
    Scenario {
        name: "mixed-burst-stress",
        title: "Mixed-burst stress page",
        paper_ref: "§5 end-to-end (all interaction classes on one page)",
        description: "Seven registry vendors interleave creates, read \
                      bursts, an injection chain, a blind overwrite, \
                      deletes, and fan-out exfiltration. Scoping must hold \
                      op-for-op under load: own cookies flow, every \
                      foreign op is refused.",
        site,
        expectation: vec![
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: ga.clone(),
                    by: dom("google-analytics.com"),
                },
            ),
            (
                Vanilla,
                Expect::Exfiltrates {
                    cookie: fbp.clone(),
                    by: dom("pubmatic.com"),
                },
            ),
            (
                Vanilla,
                Expect::Deletes {
                    cookie: fbp.clone(),
                    by: dom("cdn-cookieyes.com"),
                },
            ),
            (
                GuardStrict,
                Expect::Writes {
                    cookie: ga.clone(),
                    by: dom("googletagmanager.com"),
                },
            ),
            (
                GuardStrict,
                Expect::Exfiltrates {
                    cookie: ga.clone(),
                    by: dom("googletagmanager.com"),
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: ga.clone(),
                    by: dom("google-analytics.com"),
                },
            ),
            (
                GuardStrict,
                Expect::NoExfil {
                    cookie: fbp.clone(),
                    by: dom("pubmatic.com"),
                },
            ),
            (
                GuardStrict,
                Expect::WriteBlocked {
                    cookie: cto,
                    by: dom("pubmatic.com"),
                },
            ),
            (
                GuardStrict,
                Expect::DeleteBlocked {
                    cookie: fbp,
                    by: dom("cdn-cookieyes.com"),
                },
            ),
            (
                GuardStrict,
                Expect::ReadFiltered {
                    by: dom("pubmatic.com"),
                },
            ),
            // google-analytics.com is grouped with googletagmanager.com
            // in the builtin entity map: grouping restores the Google
            // stack's shared read without admitting Pubmatic.
            (
                GuardEntity,
                Expect::Exfiltrates {
                    cookie: ga.clone(),
                    by: dom("google-analytics.com"),
                },
            ),
            (
                GuardEntity,
                Expect::NoExfil {
                    cookie: ga,
                    by: dom("pubmatic.com"),
                },
            ),
        ],
    }
}
