//! The scenario matrix: every catalog scenario × every defense
//! condition, with per-cell counters and per-check verdicts.
//!
//! Output is **deterministic**: for a given master seed the JSON
//! rendering is byte-identical regardless of thread count (workers
//! write into index-addressed slots; nothing depends on completion
//! order), which is what lets CI diff the matrix against a checked-in
//! golden file.

use crate::catalog::catalog;
use crate::fixtures::Fixtures;
use crate::scenario::Scenario;
use cg_baselines::BlocklistDefense;
use cg_browser::{visit_site, VisitConfig, VisitOutcome};
use cg_instrument::WriteKind;
use cookieguard_core::{GuardConfig, GuardEngine};
use serde::Serialize;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Matrix column names, in rendering order.
pub const CONDITIONS: &[&str] = &[
    "vanilla",
    "blocklist",
    "partitioning-tcp",
    "cookieguard",
    "cookieguard-entity",
    "cookieguard-whitelist",
    "cookieguard-dns",
];

/// One (scenario, condition) cell: counters summarizing what the visit
/// log showed.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ConditionCell {
    /// Condition (column) name.
    pub condition: String,
    /// Admitted creates/overwrites.
    pub sets_applied: usize,
    /// Guard-blocked creates/overwrites.
    pub sets_blocked: usize,
    /// Admitted deletes.
    pub deletes_applied: usize,
    /// Guard-blocked deletes.
    pub deletes_blocked: usize,
    /// Total cookies withheld across reads.
    pub reads_filtered: usize,
    /// Outbound requests whose query string carries a cookie written
    /// (or attempted) during this visit.
    pub exfil_requests: usize,
    /// All outbound requests.
    pub requests: usize,
    /// Functional probes that succeeded.
    pub probes_ok: usize,
    /// Functional probes that failed.
    pub probes_failed: usize,
    /// Total cookie API operations.
    pub cookie_ops: usize,
    /// Cookies left in the jar after the visit.
    pub final_jar_size: usize,
}

/// One expectation's verdict in one cell.
#[derive(Debug, Clone, Serialize)]
pub struct CheckOutcome {
    /// The condition the claim was checked against.
    pub condition: String,
    /// Human-readable claim.
    pub check: String,
    /// Whether the visit log satisfied it.
    pub pass: bool,
}

/// One scenario row: cells across all conditions plus check verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRow {
    /// Scenario identifier.
    pub scenario: String,
    /// Display title.
    pub title: String,
    /// Paper anchor.
    pub paper_ref: String,
    /// The posed site's domain.
    pub site: String,
    /// One cell per entry of [`CONDITIONS`], in order.
    pub cells: Vec<ConditionCell>,
    /// Every expectation verdict.
    pub checks: Vec<CheckOutcome>,
    /// True when every check passed.
    pub verdict: bool,
}

/// The full matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioMatrix {
    /// Master seed the visits derived from.
    pub seed: u64,
    /// Column names, in cell order.
    pub conditions: Vec<String>,
    /// One row per catalog scenario, in catalog order.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioMatrix {
    /// Scenarios whose expectation list fully passed.
    pub fn passing(&self) -> usize {
        self.rows.iter().filter(|r| r.verdict).count()
    }

    /// The canonical JSON rendering (pretty, stable field order) — the
    /// byte-exact artifact CI compares against the golden file.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("matrix serializes");
        s.push('\n');
        s
    }
}

/// Runs the whole catalog under every condition.
///
/// `seed` drives behaviour randomness (each scenario's visit seed is
/// derived from it by index); `threads` shards scenarios across worker
/// threads without affecting output bytes.
pub fn run_matrix(seed: u64, threads: usize) -> ScenarioMatrix {
    let fixtures = Fixtures::new();
    let scenarios = catalog();
    let blocker = BlocklistDefense::from_registry(fixtures.registry());

    // Compile each guard engine once; every scenario visit opens a
    // cheap per-site session on the shared engine.
    let strict = GuardEngine::shared(GuardConfig::strict());
    let entity = GuardEngine::shared(
        GuardConfig::strict().with_entity_grouping(cg_entity::builtin_entity_map()),
    );
    let whitelist =
        GuardEngine::shared(GuardConfig::strict().with_whitelisted("account-portal.com"));

    let threads = threads.max(1).min(scenarios.len().max(1));
    let mut rows: Vec<Option<ScenarioRow>> = vec![None; scenarios.len()];
    std::thread::scope(|scope| {
        let mut pending: Vec<(usize, &Scenario, &mut Option<ScenarioRow>)> = scenarios
            .iter()
            .enumerate()
            .zip(rows.iter_mut())
            .map(|((i, s), slot)| (i, s, slot))
            .collect();
        let chunk = pending.len().div_ceil(threads);
        while !pending.is_empty() {
            let batch: Vec<_> = pending.drain(..chunk.min(pending.len())).collect();
            let blocker = &blocker;
            let strict = &strict;
            let entity = &entity;
            let whitelist = &whitelist;
            scope.spawn(move || {
                for (i, s, slot) in batch {
                    let visit_seed = cg_webgen::site::splitmix64(seed ^ (i as u64 + 1));
                    *slot = Some(run_scenario(
                        s, visit_seed, blocker, strict, entity, whitelist,
                    ));
                }
            });
        }
    });

    ScenarioMatrix {
        seed,
        conditions: CONDITIONS.iter().map(|c| c.to_string()).collect(),
        rows: rows.into_iter().map(|r| r.expect("row computed")).collect(),
    }
}

fn run_scenario(
    s: &Scenario,
    visit_seed: u64,
    blocker: &BlocklistDefense,
    strict: &Arc<GuardEngine>,
    entity: &Arc<GuardEngine>,
    whitelist: &Arc<GuardEngine>,
) -> ScenarioRow {
    let vanilla_cfg = VisitConfig::regular();
    // The unmodified-blueprint conditions all go through the scenario
    // visit entry point with one shared seed.
    let plain_conditions = vec![
        ("vanilla".to_string(), vanilla_cfg.clone()),
        (
            "cookieguard".to_string(),
            VisitConfig::guarded_by(Arc::clone(strict)),
        ),
        (
            "cookieguard-entity".to_string(),
            VisitConfig::guarded_by(Arc::clone(entity)),
        ),
        (
            "cookieguard-whitelist".to_string(),
            VisitConfig::guarded_by(Arc::clone(whitelist)),
        ),
        (
            "cookieguard-dns".to_string(),
            VisitConfig {
                resolve_cnames: true,
                ..VisitConfig::guarded_by(Arc::clone(strict))
            },
        ),
    ];
    let plain: Vec<(String, VisitOutcome)> =
        cg_browser::visit_under_conditions(&s.site, &plain_conditions, visit_seed)
            .into_iter()
            .map(|c| (c.condition, c.outcome))
            .collect();
    let by_name = |name: &str| -> &VisitOutcome {
        &plain
            .iter()
            .find(|(n, _)| n == name)
            .expect("condition visited")
            .1
    };
    let outcomes: Vec<(String, VisitOutcome)> = CONDITIONS
        .iter()
        .map(|name| {
            let outcome = match *name {
                // Blocklist is a blueprint transform, not a visit config:
                // listed vendor scripts never load.
                "blocklist" => visit_site(&blocker.prune_site(&s.site).0, &vanilla_cfg, visit_seed),
                // Partitioning re-keys embedded-context storage only; the
                // main-frame visit this harness measures is untouched by
                // construction (§2.1), so its cell IS the vanilla outcome.
                "partitioning-tcp" => by_name("vanilla").clone(),
                other => by_name(other).clone(),
            };
            (name.to_string(), outcome)
        })
        .collect();

    let vanilla_log = &outcomes
        .iter()
        .find(|(n, _)| n == "vanilla")
        .expect("vanilla is always a matrix condition")
        .1
        .log;
    let site = s.site_domain();

    let cells = outcomes
        .iter()
        .map(|(name, o)| summarize(name, o))
        .collect();

    let mut checks = Vec::with_capacity(s.expectation.len());
    let mut verdict = true;
    for (kind, expect) in &s.expectation {
        let cond = kind.condition_name();
        let log = &outcomes
            .iter()
            .find(|(n, _)| n == cond)
            .expect("expectation names a known condition")
            .1
            .log;
        let pass = expect.eval(log, vanilla_log, site);
        verdict &= pass;
        checks.push(CheckOutcome {
            condition: cond.to_string(),
            check: expect.describe(),
            pass,
        });
    }

    ScenarioRow {
        scenario: s.name.to_string(),
        title: s.title.to_string(),
        paper_ref: s.paper_ref.to_string(),
        site: site.to_string(),
        cells,
        checks,
        verdict,
    }
}

fn summarize(condition: &str, o: &VisitOutcome) -> ConditionCell {
    let log = &o.log;
    // Names written (or attempted) this visit: the exfiltration
    // detector's watch set.
    let watched: BTreeSet<&str> = log.sets.iter().map(|s| s.name.as_str()).collect();
    let exfil_requests = log
        .requests
        .iter()
        .filter(|r| {
            r.url
                .split_once('?')
                .map(|(_, q)| {
                    q.split('&')
                        .filter_map(|kv| kv.split_once('=').map(|(k, _)| k))
                        .any(|k| watched.contains(k))
                })
                .unwrap_or(false)
        })
        .count();
    let write = |k: WriteKind| matches!(k, WriteKind::Create | WriteKind::Overwrite);
    ConditionCell {
        condition: condition.to_string(),
        sets_applied: log
            .sets
            .iter()
            .filter(|s| write(s.kind) && !s.blocked)
            .count(),
        sets_blocked: log
            .sets
            .iter()
            .filter(|s| write(s.kind) && s.blocked)
            .count(),
        deletes_applied: log
            .sets
            .iter()
            .filter(|s| s.kind == WriteKind::Delete && !s.blocked)
            .count(),
        deletes_blocked: log
            .sets
            .iter()
            .filter(|s| s.kind == WriteKind::Delete && s.blocked)
            .count(),
        reads_filtered: log.reads.iter().map(|r| r.filtered_count).sum(),
        exfil_requests,
        requests: log.requests.len(),
        probes_ok: log.probes.iter().filter(|p| p.ok).count(),
        probes_failed: log.probes.iter().filter(|p| !p.ok).count(),
        cookie_ops: o.cookie_ops,
        final_jar_size: o.final_jar_size,
    }
}

/// Renders the matrix as a fixed-width text table (one line per
/// scenario × condition block, then the failed checks, if any).
pub fn render_table(m: &ScenarioMatrix) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario matrix — seed {:#x}, {} scenarios, {} conditions",
        m.seed,
        m.rows.len(),
        m.conditions.len()
    );
    for row in &m.rows {
        let _ = writeln!(out, "\n{} ({}) — {}", row.scenario, row.site, row.paper_ref);
        let _ = writeln!(
            out,
            "  {:<22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>5} {:>6}",
            "condition", "set", "blk", "del", "dblk", "filt", "exfil", "req", "probe"
        );
        for c in &row.cells {
            let _ = writeln!(
                out,
                "  {:<22} {:>5} {:>5} {:>5} {:>5} {:>5} {:>6} {:>5} {:>3}/{}",
                c.condition,
                c.sets_applied,
                c.sets_blocked,
                c.deletes_applied,
                c.deletes_blocked,
                c.reads_filtered,
                c.exfil_requests,
                c.requests,
                c.probes_ok,
                c.probes_ok + c.probes_failed,
            );
        }
        let passed = row.checks.iter().filter(|c| c.pass).count();
        let _ = writeln!(
            out,
            "  checks: {passed}/{} {}",
            row.checks.len(),
            if row.verdict { "ok" } else { "FAILED" }
        );
        for c in row.checks.iter().filter(|c| !c.pass) {
            let _ = writeln!(out, "    FAIL [{}] {}", c.condition, c.check);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_full_shape_and_passes() {
        let m = run_matrix(0xC00C1E, 2);
        assert!(m.rows.len() >= 8, "catalog must pose >= 8 scenarios");
        assert_eq!(m.conditions.len(), CONDITIONS.len());
        for row in &m.rows {
            assert_eq!(row.cells.len(), CONDITIONS.len());
            assert!(
                row.verdict,
                "scenario {} failed: {:#?}",
                row.scenario,
                row.checks.iter().filter(|c| !c.pass).collect::<Vec<_>>()
            );
        }
    }
}
