//! One test per catalog scenario, asserting its expectation list
//! against the guarded (and vanilla) runs — so a policy regression
//! names the exact scenario and claim it broke.

use cg_scenarios::{run_matrix, ScenarioMatrix};

fn matrix() -> ScenarioMatrix {
    run_matrix(0xC00C1E, 1)
}

fn assert_scenario(m: &ScenarioMatrix, name: &str) {
    let row = m
        .rows
        .iter()
        .find(|r| r.scenario == name)
        .unwrap_or_else(|| panic!("scenario {name:?} missing from the catalog"));
    for c in &row.checks {
        assert!(c.pass, "{name}: [{}] {}", c.condition, c.check);
    }
    assert!(row.verdict);
}

#[test]
fn cname_cloaked_set_cookie_expectations() {
    assert_scenario(&matrix(), "cname-cloaked-set-cookie");
}

#[test]
fn cross_entity_overwrite_contention_expectations() {
    assert_scenario(&matrix(), "cross-entity-overwrite-contention");
}

#[test]
fn cookie_sync_chain_expectations() {
    assert_scenario(&matrix(), "cookie-sync-chain");
}

#[test]
fn subdomain_ghost_write_expectations() {
    assert_scenario(&matrix(), "subdomain-ghost-write");
}

#[test]
fn consent_gated_late_setter_expectations() {
    assert_scenario(&matrix(), "consent-gated-late-setter");
}

#[test]
fn first_party_impersonation_expectations() {
    assert_scenario(&matrix(), "first-party-impersonation");
}

#[test]
fn sso_whitelist_boundary_expectations() {
    assert_scenario(&matrix(), "sso-whitelist-boundary");
}

#[test]
fn cookie_respawn_on_delete_expectations() {
    assert_scenario(&matrix(), "cookie-respawn-on-delete");
}

#[test]
fn mixed_burst_stress_expectations() {
    assert_scenario(&matrix(), "mixed-burst-stress");
}

/// Every expectation list checks the vanilla *and* at least one guard
/// condition: a scenario that only describes the attack (or only the
/// defense) is half a scenario.
#[test]
fn every_scenario_checks_both_sides() {
    use cg_scenarios::ConditionKind;
    for s in cg_scenarios::catalog() {
        let has_vanilla = s
            .expectation
            .iter()
            .any(|(k, _)| *k == ConditionKind::Vanilla);
        let has_guard = s
            .expectation
            .iter()
            .any(|(k, _)| *k != ConditionKind::Vanilla);
        assert!(
            has_vanilla && has_guard,
            "{} must pose claims for vanilla and a guard condition",
            s.name
        );
    }
}
