//! Scenario-matrix determinism: the properties CI's golden-file diff
//! relies on.

use cg_scenarios::run_matrix;

/// Same seed ⇒ byte-identical JSON, regardless of worker threads.
#[test]
fn matrix_json_is_byte_identical_across_thread_counts() {
    let single = run_matrix(0xC00C1E, 1).to_json();
    let eight = run_matrix(0xC00C1E, 8).to_json();
    assert_eq!(single, eight, "thread count leaked into the matrix bytes");
    // And re-running at the same thread count is a fixed point.
    assert_eq!(single, run_matrix(0xC00C1E, 1).to_json());
}

/// Different seeds change cookie values/timings but never the catalog
/// shape — and every expectation still holds (the claims are about
/// policy decisions, not sampled values).
#[test]
fn matrix_verdicts_hold_across_seeds() {
    for seed in [1u64, 0xDEAD_BEEF, 0xC00C1E] {
        let m = run_matrix(seed, 4);
        assert!(m.rows.len() >= 8);
        assert_eq!(m.passing(), m.rows.len(), "seed {seed:#x} broke a verdict");
    }
}

/// The checked-in golden file matches a fresh default-seed run — the
/// same comparison CI performs through the CLI. Regenerate with:
/// `cargo run --release --example scenario_matrix -- --json \
///  crates/cg-scenarios/golden/scenario_matrix.json`
#[test]
fn matrix_matches_checked_in_golden_file() {
    let golden = include_str!("../golden/scenario_matrix.json");
    let fresh = run_matrix(0xC00C1E, 2).to_json();
    assert_eq!(
        golden, fresh,
        "golden scenario matrix is stale; regenerate it (see test doc)"
    );
}
