//! Minimal, dependency-free stand-in for `criterion` covering the
//! workspace's usage: `Criterion::{bench_function, benchmark_group,
//! sample_size}`, groups with `bench_function` / `bench_with_input` /
//! `finish`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (including the
//! `name/config/targets` form). Reports mean wall-clock time per
//! iteration; no statistics, plotting, or outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.function.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

/// Runs the measured closure and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Calibrates an iteration count so one measurement takes roughly
/// `target`, then reports mean time per iteration.
fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up / calibration round.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter_ns = calib.elapsed.as_nanos().max(1) as f64;
    let target_ns = 5_000_000.0; // ~5 ms per sample
    let iters = ((target_ns / per_iter_ns).clamp(1.0, 1_000_000.0)) as u64;

    let samples = sample_size.clamp(1, 1000) as u64;
    let mut best = f64::INFINITY;
    let mut total_ns = 0.0;
    let mut total_iters = 0u64;
    for _ in 0..samples.min(16) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let sample_ns = b.elapsed.as_nanos() as f64;
        best = best.min(sample_ns / iters as f64);
        total_ns += sample_ns;
        total_iters += iters;
    }
    let mean = total_ns / total_iters as f64;
    println!(
        "{name:<60} mean {:>12}   best {:>12}",
        format_ns(mean),
        format_ns(best)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.criterion.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_bench(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label()
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// `criterion_main!` entry: honors `--bench` (ignored) and exits
    /// cleanly under `cargo bench --no-run` compile checks.
    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
