//! Minimal, dependency-free stand-in for the `rand` crate covering the
//! workspace's usage: `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}` over integer and float ranges. Deterministic by
//! construction (splitmix64 seeding feeding xoshiro256++), which is what
//! the synthetic-ecosystem generators rely on.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: anything that yields uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample(rng) as f32
    }
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
int_range!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

macro_rules! float_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::sample(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = f64::sample(rng) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}
float_range!(f32 f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&w| w == 0) {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAD_5EED, 0x1234_5678];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs one generator quality level.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&w));
            let x: usize = rng.gen_range(0..=4);
            assert!(x <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
