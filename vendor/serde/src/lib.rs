//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The container image has no network access to crates.io, so the
//! workspace vendors a small serde-compatible facade: the same trait
//! names and call-site syntax (`#[derive(Serialize, Deserialize)]`,
//! `value.serialize(serializer)`, `T::deserialize(deserializer)`,
//! `#[serde(default)]`, `#[serde(with = "module")]`), backed by a
//! value-based data model ([`Content`]) instead of real serde's
//! visitor machinery. `serde_json` (also vendored) is the only
//! serializer in the tree, so the simplified model is sufficient and
//! round-trips everything the workspace derives.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Map lookup by string key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the content's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error type shared by the whole facade.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub mod de {
    //! Deserializer-side error plumbing (`serde::de::Error::custom`).
    use std::fmt;

    pub trait Error: Sized {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::DeError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            super::DeError(msg.to_string())
        }
    }
}

pub mod ser {
    //! Serializer-side error plumbing (`serde::ser::Error::custom`).
    use std::fmt;

    pub trait Error: Sized {
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// A sink consuming the [`Content`] tree of one value.
pub trait Serializer: Sized {
    type Ok;
    type Error;
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A source producing the [`Content`] tree of one value.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// Serializable values. Implementors provide [`Serialize::to_content`];
/// `serialize` keeps real serde's call-site shape.
pub trait Serialize {
    fn to_content(&self) -> Content;

    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

/// Deserializable values. Implementors provide
/// [`Deserialize::from_content`]; `deserialize` keeps real serde's
/// call-site shape.
pub trait Deserialize<'de>: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;

    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.take_content()?;
        Self::from_content(&content).map_err(<D::Error as de::Error>::custom)
    }
}

/// Owned-deserializable marker, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8 i16 i32 i64 isize);

macro_rules! ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8 u16 u32 u64 usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Canonical sort key so hash-map serialization is deterministic.
fn content_sort_key(c: &Content) -> String {
    match c {
        Content::Str(s) => s.clone(),
        other => format!("{other:?}"),
    }
}

fn serialize_map_entries<'a, K, V, I>(entries: I, sort: bool) -> Content
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(Content, Content)> = entries
        .map(|(k, v)| (k.to_content(), v.to_content()))
        .collect();
    if sort {
        out.sort_by_key(|(k, _)| content_sort_key(k));
    }
    Content::Map(out)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        serialize_map_entries(self.iter(), true)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        serialize_map_entries(self.iter(), false)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by_key(content_sort_key);
        Content::Seq(items)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

fn type_err(expected: &str, got: &Content) -> DeError {
    DeError(format!(
        "invalid type: expected {expected}, found {}",
        got.kind()
    ))
}

macro_rules! de_int {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError(format!("integer {v} out of range"))),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(type_err("integer", other)),
                }
            }
        }
    )*};
}
de_int!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

macro_rules! de_float {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(type_err("float", other)),
                }
            }
        }
    )*};
}
de_float!(f32 f64);

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_err("char", other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(type_err("null", other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(type_err("sequence", other)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_content).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError("array length mismatch".into()))
            }
            Content::Seq(items) => Err(DeError(format!(
                "invalid length: expected array of {N}, found {}",
                items.len()
            ))),
            other => Err(type_err("sequence", other)),
        }
    }
}

macro_rules! de_tuple {
    ($len:expr; $($name:ident : $idx:tt),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    Content::Seq(items) => Err(DeError(format!(
                        "invalid length: expected tuple of {}, found {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(type_err("sequence", other)),
                }
            }
        }
    };
}
de_tuple!(1; A: 0);
de_tuple!(2; A: 0, B: 1);
de_tuple!(3; A: 0, B: 1, C: 2);
de_tuple!(4; A: 0, B: 1, C: 2, D: 3);
de_tuple!(5; A: 0, B: 1, C: 2, D: 3, E: 4);

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(type_err("map", other)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(type_err("map", other)),
        }
    }
}

impl<'de, T, S> Deserialize<'de> for HashSet<T, S>
where
    T: Deserialize<'de> + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(type_err("sequence", other)),
        }
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(type_err("sequence", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Support machinery for derive-generated code
// ---------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    use super::{de, Content, DeError, Deserialize, Deserializer, Serializer};
    use std::convert::Infallible;

    /// Serializer whose output *is* the content tree (never fails); lets
    /// `#[serde(with = "m")]` modules feed derived serialization.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = Infallible;
        fn serialize_content(self, content: Content) -> Result<Content, Infallible> {
            Ok(content)
        }
    }

    /// Deserializer over an owned content tree, for `#[serde(with = "m")]`.
    pub struct ContentDeserializer(Content);

    impl ContentDeserializer {
        pub fn new(content: Content) -> ContentDeserializer {
            ContentDeserializer(content)
        }
    }

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = DeError;
        fn take_content(self) -> Result<Content, DeError> {
            Ok(self.0)
        }
    }

    /// Unwraps the `Result` of a `with`-module serialize call routed
    /// through [`ContentSerializer`] (the error type is uninhabited).
    pub fn into_content(result: Result<Content, Infallible>) -> Content {
        match result {
            Ok(c) => c,
            Err(never) => match never {},
        }
    }

    /// Field lookup in a serialized struct map.
    pub fn find<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
        entries
            .iter()
            .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
            .map(|(_, v)| v)
    }

    /// Missing-field recovery: types that accept `null` (e.g. `Option`)
    /// default; everything else reports the missing field.
    pub fn missing_field<'de, T: Deserialize<'de>>(name: &str) -> Result<T, DeError> {
        T::from_content(&Content::Null)
            .map_err(|_| <DeError as de::Error>::custom(format!("missing field `{name}`")))
    }

    /// Error helper for derive-generated enum/struct mismatches.
    pub fn unexpected(expected: &str, got: &Content) -> DeError {
        super::type_err(expected, got)
    }
}
