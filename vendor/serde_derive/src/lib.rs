//! Dependency-free `#[derive(Serialize, Deserialize)]` for the vendored
//! serde facade. Parses the type definition directly from the
//! `proc_macro` token stream (no syn/quote — the container image has no
//! crates.io access) and emits impls of the value-based traits in the
//! vendored `serde` crate.
//!
//! Supported shapes: structs with named fields; enums with unit,
//! newtype, tuple, and struct variants. Supported attributes:
//! `#[serde(default)]` and `#[serde(with = "module")]` on named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
    with: Option<String>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Input {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extracts `default` / `with = "path"` from one `#[serde(...)]`
/// attribute body, merging into `(default, with)`.
fn parse_serde_attr(group: &proc_macro::Group, default: &mut bool, with: &mut Option<String>) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // Expect: Ident("serde") Group(paren)
    if inner.len() != 2 {
        return;
    }
    let is_serde = matches!(&inner[0], TokenTree::Ident(i) if i.to_string() == "serde");
    if !is_serde {
        return;
    }
    let body = match &inner[1] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                *default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "path"
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        *with = Some(raw.trim_matches('"').to_string());
                    }
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Consumes any number of leading `#[...]` attributes starting at
/// `*i`, returning the serde field options found.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut default = false;
    let mut with = None;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    parse_serde_attr(g, &mut default, &mut with);
                    *i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (default, with)
}

/// Consumes a `pub` / `pub(...)` visibility prefix if present.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Skips a type expression: everything up to a comma at angle-bracket
/// depth zero (or the end of the token list).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Parses the named fields inside a struct (or struct-variant) brace
/// group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (default, with) = skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1; // name
        i += 1; // ':'
        skip_type(&toks, &mut i);
        i += 1; // ','
        fields.push(Field {
            name,
            default,
            with,
        });
    }
    fields
}

/// Number of comma-separated types at top level of a tuple-variant
/// paren group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if idx + 1 == toks.len() {
                    trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let _ = skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant (`= expr`) is not supported; skip to comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1; // ','
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: unexpected token {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type `{name}`)");
    }
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => i += 1,
            None => panic!("serde_derive: type `{name}` has no braced body"),
        }
    };
    match keyword.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut body = String::new();
            for f in &fields {
                let push = match &f.with {
                    Some(path) => format!(
                        "__fields.push((::serde::Content::Str(\"{n}\".to_string()), \
                         ::serde::__private::into_content({path}::serialize(&self.{n}, \
                         ::serde::__private::ContentSerializer))));",
                        n = f.name,
                    ),
                    None => format!(
                        "__fields.push((::serde::Content::Str(\"{n}\".to_string()), \
                         ::serde::Serialize::to_content(&self.{n})));",
                        n = f.name,
                    ),
                };
                body.push_str(&push);
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         let mut __fields: ::std::vec::Vec<(::serde::Content, ::serde::Content)> = ::std::vec::Vec::new();\n\
                         {body}\n\
                         ::serde::Content::Map(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(\"{vn}\".to_string()), \
                             ::serde::Serialize::to_content(__f0))]),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({bind}) => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(\"{vn}\".to_string()), \
                             ::serde::Content::Seq(vec![{items}]))]),\n",
                            bind = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(\"{n}\".to_string()), \
                                     ::serde::Serialize::to_content({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bind} }} => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(\"{vn}\".to_string()), \
                             ::serde::Content::Map(vec![{items}]))]),\n",
                            bind = binders.join(", "),
                            items = items.join(", "),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Emits the deserialization expression for one named field out of
/// `__entries`.
fn field_expr(f: &Field) -> String {
    match (&f.with, f.default) {
        (Some(path), _) => format!(
            "{path}::deserialize(::serde::__private::ContentDeserializer::new(\
             match ::serde::__private::find(__entries, \"{n}\") {{\
                 Some(__v) => __v.clone(),\
                 None => ::serde::Content::Null,\
             }}))?",
            n = f.name,
        ),
        (None, true) => format!(
            "match ::serde::__private::find(__entries, \"{n}\") {{\
                 Some(__v) => ::serde::Deserialize::from_content(__v)?,\
                 None => ::core::default::Default::default(),\
             }}",
            n = f.name,
        ),
        (None, false) => format!(
            "match ::serde::__private::find(__entries, \"{n}\") {{\
                 Some(__v) => ::serde::Deserialize::from_content(__v)?,\
                 None => ::serde::__private::missing_field(\"{n}\")?,\
             }}",
            n = f.name,
        ),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, field_expr(f)))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __content {{\n\
                             ::serde::Content::Map(__entries) => Ok({name} {{ {inits} }}),\n\
                             __other => Err(::serde::__private::unexpected(\"map\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits = inits.join(", "),
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&__items[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __v {{\
                                 ::serde::Content::Seq(__items) if __items.len() == {n} => \
                                     Ok({name}::{vn}({items})),\
                                 __other => Err(::serde::__private::unexpected(\"sequence\", __other)),\
                             }},\n",
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: {}", f.name, field_expr(f)))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __v {{\
                                 ::serde::Content::Map(__entries) => Ok({name}::{vn} {{ {inits} }}),\
                                 __other => Err(::serde::__private::unexpected(\"map\", __other)),\
                             }},\n",
                            inits = inits.join(", "),
                        ));
                    }
                }
            }
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __content {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::de::Error::custom(format!(\
                                     \"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__k, __v) = &__entries[0];\n\
                                 let __k = match __k {{\n\
                                     ::serde::Content::Str(__s) => __s.as_str(),\n\
                                     __other => return Err(::serde::__private::unexpected(\"string key\", __other)),\n\
                                 }};\n\
                                 match __k {{\n\
                                     {data_arms}\n\
                                     __other => Err(::serde::de::Error::custom(format!(\
                                         \"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::__private::unexpected(\"enum\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
