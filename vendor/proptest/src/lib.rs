//! Minimal, dependency-free stand-in for `proptest` covering the
//! workspace's usage: the `proptest!` macro over `arg in strategy`
//! bindings, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! `prop::sample::select`, `prop::collection::vec`, `prop::option::of`,
//! `prop::bool::ANY`, and `any::<T>()`. Strategies are plain samplers
//! (no shrinking); each property runs a fixed number of deterministic
//! cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Number of cases each `proptest!` property runs.
pub const DEFAULT_CASES: usize = 96;

/// Why a test case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failure: the property is false.
    Fail(String),
    /// `prop_assume!` rejection: the input is out of scope.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// A value generator. Unlike real proptest there is no shrinking — a
/// failing case reports the sampled inputs directly.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical arbitrary strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Samples a full `bool`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_int {
    ($($t:ty => $name:ident),*) => {$(
        #[derive(Debug, Clone, Copy)]
        pub struct $name;
        impl Strategy for $name {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Standard::sample(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name { $name }
        }
    )*};
}
arbitrary_int!(u64 => AnyU64, u32 => AnyU32, f64 => AnyF64);

/// Regex-shaped string strategies: in real proptest any `&str` is a
/// regex pattern. This sampler covers the pattern subset the workspace
/// uses: literals, escaped chars, `\PC` (any printable), char classes
/// with ranges, groups with alternation, and `{n}` / `{n,m}` / `?` /
/// `*` / `+` quantifiers.
mod pattern {
    use rand::rngs::StdRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Lit(char),
        Class(Vec<(char, char)>),
        AnyPrintable,
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Repeat(Box<Node>, usize, usize),
    }

    struct Parser<'a> {
        chars: Vec<char>,
        pos: usize,
        src: &'a str,
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<char> {
            let c = self.peek();
            if c.is_some() {
                self.pos += 1;
            }
            c
        }

        fn parse_alt(&mut self) -> Node {
            let mut branches = vec![self.parse_seq()];
            while self.peek() == Some('|') {
                self.bump();
                branches.push(self.parse_seq());
            }
            if branches.len() == 1 {
                branches.pop().unwrap()
            } else {
                Node::Alt(branches)
            }
        }

        fn parse_seq(&mut self) -> Node {
            let mut items = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.parse_atom();
                items.push(self.parse_quantifier(atom));
            }
            if items.len() == 1 {
                items.pop().unwrap()
            } else {
                Node::Seq(items)
            }
        }

        fn parse_atom(&mut self) -> Node {
            match self.bump() {
                Some('\\') => match self.bump() {
                    // proptest's `\PC`: any non-control character.
                    Some('P') | Some('p') => {
                        self.bump(); // the category letter
                        Node::AnyPrintable
                    }
                    Some('d') => Node::Class(vec![('0', '9')]),
                    Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    Some(c) => Node::Lit(c),
                    None => panic!("pattern `{}`: dangling escape", self.src),
                },
                Some('[') => self.parse_class(),
                Some('(') => {
                    let inner = self.parse_alt();
                    assert_eq!(
                        self.bump(),
                        Some(')'),
                        "pattern `{}`: unclosed group",
                        self.src
                    );
                    inner
                }
                Some('.') => Node::AnyPrintable,
                Some(c) => Node::Lit(c),
                None => panic!("pattern `{}`: unexpected end", self.src),
            }
        }

        fn parse_class(&mut self) -> Node {
            let mut ranges = Vec::new();
            loop {
                let c = match self.bump() {
                    Some(']') => break,
                    Some('\\') => self.bump().expect("escape in class"),
                    Some(c) => c,
                    None => panic!("pattern `{}`: unclosed class", self.src),
                };
                if self.peek() == Some('-')
                    && self
                        .chars
                        .get(self.pos + 1)
                        .copied()
                        .is_some_and(|n| n != ']')
                {
                    self.bump(); // '-'
                    let end = self.bump().expect("range end");
                    ranges.push((c, end));
                } else {
                    ranges.push((c, c));
                }
            }
            Node::Class(ranges)
        }

        fn parse_quantifier(&mut self, atom: Node) -> Node {
            match self.peek() {
                Some('{') => {
                    self.bump();
                    let mut min = String::new();
                    let mut max = String::new();
                    let mut in_max = false;
                    loop {
                        match self.bump() {
                            Some('}') => break,
                            Some(',') => in_max = true,
                            Some(c) if c.is_ascii_digit() => {
                                if in_max {
                                    max.push(c);
                                } else {
                                    min.push(c);
                                }
                            }
                            other => panic!("pattern `{}`: bad quantifier {other:?}", self.src),
                        }
                    }
                    let lo: usize = min.parse().unwrap_or(0);
                    let hi: usize = if in_max {
                        max.parse().unwrap_or(lo + 8)
                    } else {
                        lo
                    };
                    Node::Repeat(Box::new(atom), lo, hi)
                }
                Some('?') => {
                    self.bump();
                    Node::Repeat(Box::new(atom), 0, 1)
                }
                Some('*') => {
                    self.bump();
                    Node::Repeat(Box::new(atom), 0, 8)
                }
                Some('+') => {
                    self.bump();
                    Node::Repeat(Box::new(atom), 1, 8)
                }
                _ => atom,
            }
        }
    }

    pub fn parse(pattern: &str) -> Node {
        let mut p = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
            src: pattern,
        };
        let node = p.parse_alt();
        assert_eq!(p.pos, p.chars.len(), "pattern `{pattern}`: trailing input");
        node
    }

    /// A few multi-byte characters so `\PC` exercises non-ASCII paths.
    const EXOTIC: &[char] = &['é', 'ß', '中', '→', '✓', '\u{00a0}'];

    pub fn sample(node: &Node, rng: &mut StdRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::AnyPrintable => {
                if rng.gen_bool(0.08) {
                    out.push(EXOTIC[rng.gen_range(0..EXOTIC.len())]);
                } else {
                    out.push(char::from(rng.gen_range(0x20u8..0x7f)));
                }
            }
            Node::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u32) - (*a as u32) + 1)
                    .sum();
                let mut pick = rng.gen_range(0..total);
                for (a, b) in ranges {
                    let span = (*b as u32) - (*a as u32) + 1;
                    if pick < span {
                        out.push(char::from_u32(*a as u32 + pick).unwrap_or(*a));
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Seq(items) => {
                for item in items {
                    sample(item, rng, out);
                }
            }
            Node::Alt(branches) => {
                let b = &branches[rng.gen_range(0..branches.len())];
                sample(b, rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    sample(inner, rng, out);
                }
            }
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize f32 f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let node = pattern::parse(self);
        let mut out = String::new();
        pattern::sample(&node, rng, &mut out);
        out
    }
}

pub mod sample {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Uniform choice from a fixed pool (`prop::sample::select`).
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option pool");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Accepted size specifications: an exact length or a half-open
    /// range (mirrors proptest's `Into<SizeRange>`).
    pub trait IntoSizeRange {
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// `prop::collection::vec(element, size_range)`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let size = size.into_size_range();
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// `prop::option::of(inner)`: `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod bool {
    /// `prop::bool::ANY`.
    pub const ANY: super::AnyBool = super::AnyBool;
}

pub mod num {
    pub mod f64 {
        /// Positive finite floats.
        #[derive(Debug, Clone, Copy)]
        pub struct Positive;
        pub const POSITIVE: Positive = Positive;

        impl super::super::Strategy for Positive {
            type Value = f64;
            fn sample(&self, rng: &mut super::super::StdRng) -> f64 {
                use rand::Rng;
                rng.gen_range(1e-6..1e9)
            }
        }
    }
}

pub mod strategy {
    pub use super::{Just, Strategy};
}

pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        Strategy, TestCaseError,
    };
    pub use rand::rngs::StdRng;
}

/// The `prop` facade module (`prop::sample::…`, `prop::collection::…`).
pub mod prop {
    pub use super::bool;
    pub use super::collection;
    pub use super::num;
    pub use super::option;
    pub use super::sample;
    pub use super::strategy;
}

/// Runs one property over `DEFAULT_CASES` sampled cases. Used by the
/// `proptest!` macro; not public API in real proptest, but harmless.
pub fn run_property<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Seed derived from the property name so failures reproduce.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rejected = 0usize;
    let mut ran = 0usize;
    while ran < DEFAULT_CASES {
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < DEFAULT_CASES * 16,
                    "property `{name}`: too many prop_assume! rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {ran} passing case(s): {msg}");
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}",
                __l, __r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn select_yields_members(x in prop::sample::select(vec![1, 2, 3])) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(prop::bool::ANY, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_filters(x in prop::sample::select(vec![0usize, 1, 2, 3])) {
            prop_assume!(x != 0);
            prop_assert!(x > 0);
        }

        #[test]
        fn option_of_works(o in prop::option::of(prop::sample::select(vec!["a", "b"]))) {
            if let Some(v) = o {
                prop_assert!(v == "a" || v == "b");
            }
        }

        #[test]
        #[allow(clippy::overly_complex_bool_expr)]
        fn any_bool_compiles(b in any::<bool>()) {
            prop_assert!(b || !b);
        }
    }
}
