//! Minimal, dependency-free stand-in for `serde_json`, matching the API
//! surface the workspace uses: [`Value`], insertion-ordered [`Map`],
//! [`to_value`], [`to_string`], [`to_string_pretty`], [`from_str`], and
//! [`from_value`]. Backed by the vendored serde facade's [`Content`]
//! data model.

use serde::{de, Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// A JSON number (integer or float), mirroring `serde_json::Number`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::I64(v) => Some(*v as f64),
            Number::U64(v) => Some(*v as f64),
            Number::F64(v) => Some(*v),
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::I64(v) => Some(*v),
            Number::U64(v) => i64::try_from(*v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::I64(v) => u64::try_from(*v).ok(),
            Number::U64(v) => Some(*v),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 => {
                write!(f, "{v:.1}")
            }
            Number::F64(v) => write!(f, "{v}"),
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A JSON value.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn from_content(content: &Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => {
                let mut map = Map::new();
                for (k, v) in entries {
                    let key = match k {
                        Content::Str(s) => s.clone(),
                        other => content_key_string(other),
                    };
                    map.insert(key, Value::from_content(v));
                }
                Value::Object(map)
            }
        }
    }

    fn to_content_tree(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content_tree).collect()),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (Content::Str(k.clone()), v.to_content_tree()))
                    .collect(),
            ),
        }
    }
}

/// Non-string map keys are rendered to their JSON text (JSON object keys
/// must be strings).
fn content_key_string(c: &Content) -> String {
    let mut out = String::new();
    write_content(&Value::from_content(c), &mut out, None, 0);
    out
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_tree()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Value::from_content(content))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(self, &mut out, None, 0);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` as JSON into `out`; `indent = Some(step)` pretty-prints.
fn write_content(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(step) => (
            "\n",
            " ".repeat(step * level),
            " ".repeat(step * (level + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("unexpected character"),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{kw}`"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole run up to the next quote or escape
                    // in one go. Validating per-character with
                    // `from_utf8(&bytes[pos..])` is quadratic in string
                    // length — ruinous for multi-kilobyte JSONL records.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(v)));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F64(v)))
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Converts any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_content(&value.to_content()))
}

/// Reconstructs a deserializable type from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::from_content(&value.to_content_tree()).map_err(Error::from)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_content(&v, &mut out, None, 0);
    Ok(out)
}

/// Pretty-printed JSON text (two-space indent, like real serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let v = to_value(value)?;
    let mut out = String::new();
    write_content(&v, &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    from_value(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2);
        }
    }

    #[test]
    fn object_round_trip_preserves_order() {
        let v: Value = from_str(r#"{"b": 1, "a": [true, null, {"x": "y"}]}"#).unwrap();
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"b":1,"a":[true,null,{"x":"y"}]}"#
        );
    }

    #[test]
    fn pretty_print_shape() {
        let v: Value = from_str(r#"{"a":1}"#).unwrap();
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }
}
