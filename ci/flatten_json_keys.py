#!/usr/bin/env python3
"""Flatten a JSON file's key paths, one sorted dotted path per line.

Used by CI to diff BENCH_crawlstore.json's key set against the
checked-in schema (ci/bench_crawlstore_keys.txt): values change every
run, the key set is a contract. Arrays contribute their element keys
under `[]` (index-independent, so schema does not depend on counts).
"""

import json
import sys


def walk(value, prefix, out):
    if isinstance(value, dict):
        for key, child in value.items():
            walk(child, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(value, list):
        for child in value:
            walk(child, f"{prefix}[]", out)
        if not value:
            out.add(f"{prefix}[]")
    else:
        out.add(prefix)


def main():
    if len(sys.argv) != 2:
        print("usage: flatten_json_keys.py FILE.json", file=sys.stderr)
        return 2
    with open(sys.argv[1]) as fh:
        data = json.load(fh)
    paths = set()
    walk(data, "", paths)
    for path in sorted(paths):
        print(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
