//! CNAME cloaking end-to-end (§8): a tracker served from a first-party
//! subdomain bypasses URL-keyed isolation; a DNS-aware guard uncloaks it.

use cookieguard_repro::browser::{visit_site, VisitConfig};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::url::CnameMap;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn cloaked_site(
    gen: &WebGenerator,
    limit: usize,
) -> Option<cookieguard_repro::webgen::SiteBlueprint> {
    (1..=limit)
        .map(|r| gen.blueprint(r))
        .find(|b| b.spec.cname_cloaked && b.spec.crawl_ok)
}

#[test]
fn some_sites_are_cloaked_and_records_resolve() {
    let gen = WebGenerator::new(GenConfig::small(600), 0xC10A);
    let bp = cloaked_site(&gen, 600).expect("cloaked sites must exist at 3% incidence");
    assert!(!bp.cnames.is_empty());
    let alias = format!("metrics.{}", bp.spec.domain);
    // The alias resolves out of the first party.
    assert!(bp.cnames.is_cloaked(&alias));
    assert_ne!(
        bp.cnames.uncloaked_domain(&alias).as_deref(),
        cookieguard_repro::url::registrable_domain(&alias).as_deref()
    );
}

#[test]
fn cloaked_tracker_bypasses_url_keyed_guard() {
    let gen = WebGenerator::new(GenConfig::small(600), 0xC10A);
    let bp = cloaked_site(&gen, 600).expect("cloaked site");
    let seed = gen.site_seed(bp.spec.rank);

    // URL-keyed guard (the paper's prototype): the cloaked script's
    // eTLD+1 equals the site's, so it is the site owner — full access.
    let out = visit_site(&bp, &VisitConfig::guarded(GuardConfig::strict()), seed);
    let cloaked_reads: Vec<_> = out
        .log
        .reads
        .iter()
        .filter(|r| r.actor.as_deref() == Some(bp.spec.domain.as_str()))
        .collect();
    assert!(
        !cloaked_reads.is_empty(),
        "cloaked script must have read the jar"
    );
    // The cloaked exfiltration request fires with cookie payload access.
    assert!(
        out.log.requests.iter().any(|r| r.url.contains("/cloaked")),
        "cloaked exfiltration request expected"
    );
}

#[test]
fn dns_aware_guard_uncloaks_and_blocks() {
    let gen = WebGenerator::new(GenConfig::small(600), 0xC10A);
    let bp = cloaked_site(&gen, 600).expect("cloaked site");
    let seed = gen.site_seed(bp.spec.rank);

    let cfg = VisitConfig {
        resolve_cnames: true,
        ..VisitConfig::guarded(GuardConfig::strict())
    };
    let out = visit_site(&bp, &cfg, seed);

    // The measurement layer still logs the *cloaked* actor (an extension
    // cannot see DNS — faithful to the paper), but the guard now filters
    // the cloaked script's reads: some site-actor read has cookies
    // withheld, which never happens under a URL-keyed guard (the site
    // owner sees everything).
    let filtered_site_reads: Vec<_> = out
        .log
        .reads
        .iter()
        .filter(|r| r.actor.as_deref() == Some(bp.spec.domain.as_str()) && r.filtered_count > 0)
        .collect();
    assert!(
        !filtered_site_reads.is_empty(),
        "DNS-aware guard must filter the cloaked script"
    );
    for read in &filtered_site_reads {
        for (name, _) in &read.cookies {
            assert_eq!(
                name, "_cloaked_uid",
                "uncloaked tracker must only see its own cookie"
            );
        }
    }

    // Control: under the URL-keyed guard, no site-actor read is filtered.
    let url_keyed = visit_site(&bp, &VisitConfig::guarded(GuardConfig::strict()), seed);
    assert!(url_keyed
        .log
        .reads
        .iter()
        .filter(|r| r.actor.as_deref() == Some(bp.spec.domain.as_str()))
        .all(|r| r.filtered_count == 0));
}

#[test]
fn resolver_is_inert_on_uncloaked_hosts() {
    let mut map = CnameMap::new();
    map.insert("metrics.a.com", "t.tracker.io");
    assert_eq!(map.resolve("www.b.com"), "www.b.com");
    assert_eq!(map.uncloaked_domain("www.b.com").as_deref(), Some("b.com"));
}
