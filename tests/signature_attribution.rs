//! Signature-based inline attribution (§8, after Chen et al.): an inline
//! copy of a known tracker behaviour is attributed to the tracker's
//! domain at the policy layer, closing the "embed the tracker inline"
//! evasion in *both* inline modes:
//!
//! * relaxed mode: an inline tracker would otherwise enjoy first-party
//!   (full-jar) access — attribution demotes it to its own cookies;
//! * strict mode: attribution lets a benign known script keep working
//!   (reading its own cookies) instead of being denied everything.

use cookieguard_repro::browser::Page;
use cookieguard_repro::cookieguard::{CookieGuard, GuardConfig};
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{
    CookieAttrs, CookieSelection, Encoding, EventLoop, ScriptOp, SegmentPolicy, SignatureDb,
    ValueSpec,
};
use cookieguard_repro::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH: i64 = 1_750_000_000_000;

/// A tracker behaviour: set own id, read the jar, exfiltrate.
fn tracker_ops() -> Vec<ScriptOp> {
    vec![
        ScriptOp::SetCookie {
            name: "_tid".into(),
            value: ValueSpec::Uuid,
            attrs: CookieAttrs::default(),
        },
        ScriptOp::ReadAllCookies,
        ScriptOp::Exfiltrate {
            dest_host: "sink.tracker.io".into(),
            path: "/c".into(),
            selection: CookieSelection::All,
            segment: SegmentPolicy::Full,
            encoding: Encoding::Plain,
            kind: cookieguard_repro::http::RequestKind::Image,
            via_store: false,
        },
    ]
}

fn run(
    guard: &mut CookieGuard,
    db: Option<SignatureDb>,
) -> cookieguard_repro::instrument::VisitLog {
    let url = Url::parse("https://www.site.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("site.example", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(
        url,
        EPOCH,
        &mut jar,
        Some(guard),
        &mut recorder,
        &injectables,
        3,
    );
    if let Some(db) = db {
        page = page.with_signatures(db);
    }
    let mut el = EventLoop::new(EPOCH);
    // The site's own script sets a session cookie.
    let own = page.register_markup_script(
        Some("https://www.site.example/app.js"),
        vec![ScriptOp::SetCookie {
            name: "site_sess".into(),
            value: ValueSpec::HexId(24),
            attrs: CookieAttrs::default(),
        }],
    );
    // The tracker, embedded INLINE (no src attribute).
    let inline_tracker = page.register_markup_script(None, tracker_ops());
    el.push_script(own, 0);
    el.push_script(inline_tracker, 25);
    let mut rng = StdRng::seed_from_u64(4);
    el.run(&mut page, &mut rng);
    recorder.finish()
}

fn learned_db() -> SignatureDb {
    let mut db = SignatureDb::new();
    db.learn("tracker.io", &tracker_ops());
    db
}

#[test]
fn relaxed_mode_without_signatures_leaks_to_inline_tracker() {
    let mut guard = CookieGuard::new(GuardConfig::relaxed(), "site.example");
    let log = run(&mut guard, None);
    // The inline tracker read the full jar (site_sess included) and
    // exfiltrated it.
    let leak = log.requests.iter().any(|r| r.url.contains("site_sess="));
    assert!(
        leak,
        "relaxed mode must leak to the unattributed inline tracker"
    );
}

#[test]
fn signature_attribution_demotes_inline_tracker_in_relaxed_mode() {
    let mut guard = CookieGuard::new(GuardConfig::relaxed(), "site.example");
    let log = run(&mut guard, Some(learned_db()));
    // Attribution turned the inline script into tracker.io: it only sees
    // its own cookie and cannot exfiltrate the site session.
    assert!(
        !log.requests.iter().any(|r| r.url.contains("site_sess=")),
        "attributed inline tracker must not see the site session"
    );
    assert!(
        log.requests.iter().any(|r| r.url.contains("_tid=")),
        "the tracker still syncs its own identifier"
    );
    // The measurement still records the script as inline (the extension
    // cannot see signatures — only the policy layer does).
    assert!(log.inclusions.iter().any(|i| i.url == "<inline>"));
}

#[test]
fn strict_mode_with_signatures_restores_own_cookie_access() {
    // Strict mode denies unattributed inline scripts everything; with a
    // signature match the script regains access to its own cookies —
    // safe-by-default without breaking known-benign inline embeds.
    let mut strict = CookieGuard::new(GuardConfig::strict(), "site.example");
    let without = run(&mut strict, None);
    assert!(
        !without.requests.iter().any(|r| r.url.contains("_tid=")),
        "strict mode denies the unattributed inline script even its own cookie"
    );
    let mut strict2 = CookieGuard::new(GuardConfig::strict(), "site.example");
    let with = run(&mut strict2, Some(learned_db()));
    assert!(
        with.requests.iter().any(|r| r.url.contains("_tid=")),
        "signature attribution restores own-cookie access"
    );
    assert!(!with.requests.iter().any(|r| r.url.contains("site_sess=")));
}
