//! Integration: the baseline defenses the paper positions CookieGuard
//! against, exercised end-to-end on one generated population.
//!
//! Pins the qualitative claims of §1/§2.1/§9:
//! * storage partitioning stops embedded-context tracking but not
//!   main-frame cross-domain access;
//! * blocklists protect until URL manipulation [65] out-runs them;
//! * ML cookie blocking (CookieGraph-style) generalizes across sites
//!   but ships false negatives and collateral breakage;
//! * CSP gates loading, not cookie access;
//! * CookieGuard composes with a blocklist (defense in depth).

use cookieguard_repro::analysis::{detect_exfiltration, Dataset};
use cookieguard_repro::baselines::{
    apply_evasion, extract_samples, label_samples, main_frame_leak_demo, run_csp_gap,
    run_defense_matrix, simulate_embedded_tracking, BlocklistDefense, CookieGraphLite, Defense,
    DefenseRow, EvasionConfig, ForestConfig, MatrixOptions, PartitioningModel,
};
use cookieguard_repro::browser::{visit_site, VisitConfig};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

const SEED: u64 = 0xC00C1E;

fn generator(sites: usize) -> WebGenerator {
    WebGenerator::new(GenConfig::small(sites), SEED)
}

fn row<'a>(rows: &'a [DefenseRow], name: &str) -> &'a DefenseRow {
    rows.iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("missing row {name}"))
}

#[test]
fn partitioning_scope_boundary() {
    let sites = [
        "a.example",
        "b.example",
        "c.example",
        "d.example",
        "e.example",
    ];
    for model in [
        PartitioningModel::SafariItp,
        PartitioningModel::FirefoxTcp,
        PartitioningModel::ChromeChips,
    ] {
        // In scope: embedded-context tracking is cut (CHIPS needs the
        // opt-in attribute).
        let partitioned = simulate_embedded_tracking(model, "t.com", &sites, true);
        assert_eq!(
            partitioned.distinct_ids,
            sites.len(),
            "{model:?} embedded contexts"
        );
        // Out of scope: the main frame leaks under every model.
        assert!(
            main_frame_leak_demo(model, "site.com").leaked,
            "{model:?} main frame"
        );
    }
    // The pre-partitioning web: one profile everywhere.
    let legacy =
        simulate_embedded_tracking(PartitioningModel::Unpartitioned, "t.com", &sites, true);
    assert_eq!(legacy.distinct_ids, 1);
}

#[test]
fn blocklist_evasion_arms_race() {
    let gen = generator(240);
    let entities = builtin_entity_map();
    let opts = MatrixOptions {
        eval_ranks: 1..=140,
        entities,
    };
    let rows = run_defense_matrix(
        &gen,
        &[
            Defense::Blocklist,
            Defense::BlocklistUnderEvasion(EvasionConfig::default()),
            Defense::Partitioning(PartitioningModel::SafariItp),
            Defense::CookieGuard(GuardConfig::strict()),
        ],
        &opts,
    );
    let none = row(&rows, "no defense");
    let blocklist = row(&rows, "blocklist");
    let evaded = row(&rows, "blocklist vs evasion");
    let partitioned = row(&rows, "partitioning (safari-itp)");
    let guard = row(&rows, "cookieguard strict");

    // The population exhibits all three cross-domain actions unguarded.
    assert!(none.exfil_sites_pct > 30.0);
    assert!(none.overwrite_sites_pct > 5.0);

    // Blocklist with perfect coverage protects, at a breakage cost
    // (consent managers and ad-funded features are on the lists).
    assert!(blocklist.exfil_sites_pct < none.exfil_sites_pct / 3.0);
    assert!(blocklist.probe_break_pct > 0.0);

    // Evasion restores a large share of the tracking.
    assert!(
        evaded.exfil_sites_pct > blocklist.exfil_sites_pct + 10.0,
        "evasion must restore ≥10pp of exfiltration ({:.1} vs {:.1})",
        evaded.exfil_sites_pct,
        blocklist.exfil_sites_pct,
    );

    // Partitioning: bit-identical to no defense in the main frame.
    assert_eq!(partitioned.exfil_sites_pct, none.exfil_sites_pct);
    assert_eq!(partitioned.delete_sites_pct, none.delete_sites_pct);
    assert_eq!(partitioned.probe_break_pct, 0.0);

    // CookieGuard needs no list, so evasion does not exist for it:
    // rotated domains are still not the cookie's creator.
    assert!(guard.exfil_sites_pct < evaded.exfil_sites_pct);
}

#[test]
fn rotated_domains_do_not_evade_the_guard() {
    // The decisive mechanism check behind the matrix: take a site,
    // apply domain rotation (which defeats the blocklist), and verify
    // the guard's isolation is unaffected — the rotated tracker still
    // cannot read cookies it did not create.
    let gen = generator(240);
    let blocker = BlocklistDefense::from_registry(gen.registry());
    let evasion = EvasionConfig {
        evade_prob: 1.0,
        technique_weights: [1.0, 0.0, 0.0], // rotation only
        seed: 99,
    };
    let mut checked = 0;
    for rank in 1..=120 {
        let site = gen.blueprint(rank);
        if !site.spec.crawl_ok {
            continue;
        }
        let (evaded, stats) = apply_evasion(&site, &blocker, &evasion);
        if stats.total() == 0 {
            continue;
        }
        let guarded = visit_site(
            &evaded,
            &VisitConfig::guarded(GuardConfig::strict()),
            gen.site_seed(rank),
        );
        let g = guarded.guard_stats.expect("guard attached");
        // Rotation changed every tracker's identity, but each rotated
        // domain is still a distinct non-owner: reads of foreign
        // cookies keep getting filtered.
        let unguarded = visit_site(&evaded, &VisitConfig::regular(), gen.site_seed(rank));
        let leaked_pairs: usize = unguarded.log.reads.iter().map(|r| r.cookies.len()).sum();
        if leaked_pairs > 0 && g.cookies_filtered > 0 {
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "guard must keep filtering on rotated-tracker sites ({checked})"
    );
}

#[test]
fn classifier_generalizes_and_pays_in_breakage() {
    let gen = generator(400);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for rank in 1..=260 {
        let site = gen.blueprint(rank);
        if !site.spec.crawl_ok {
            continue;
        }
        let log = visit_site(&site, &VisitConfig::regular(), gen.site_seed(rank)).log;
        let mut samples = extract_samples(&log);
        label_samples(&mut samples, gen.registry());
        if rank <= 150 {
            train.extend(samples);
        } else {
            test.extend(samples);
        }
    }
    let (clf, report) = CookieGraphLite::train(&train, &ForestConfig::default(), SEED);
    assert!(report.positives > 50, "training needs tracking positives");

    let eval = clf.evaluate(&test);
    assert!(
        eval.accuracy() > 0.85,
        "cross-site accuracy {:.3} ({eval:?})",
        eval.accuracy()
    );
    assert!(eval.recall() > 0.7, "recall {:.3}", eval.recall());
    // The structural gap CookieGuard does not have: some tracking pairs
    // slip through on unseen sites (false negatives) or benign pairs
    // get blocked (false positives). A perfect-classifier world would
    // make this baseline equivalent; the measured web is not that world
    // and neither is the calibrated population.
    assert!(
        eval.fn_ + eval.fp > 0,
        "the classifier baseline should not be oracle-perfect on unseen sites"
    );
}

#[test]
fn csp_gap_quantified() {
    let gen = generator(260);
    let entities = builtin_entity_map();
    let rows = run_csp_gap(&gen, 1..=100, &entities);
    assert_eq!(rows.len(), 4);
    let none = &rows[0];
    let direct = &rows[1];
    let full = &rows[2];
    let guard = &rows[3];

    // Load-level: only the gapped policy blocks anything.
    assert_eq!(none.scripts_blocked, 0);
    assert!(direct.scripts_blocked > 0);
    assert_eq!(full.scripts_blocked, 0);

    // Cookie-level: a fully allowlisting CSP changes nothing; the
    // guard, which blocks no loads at all, collapses exposure.
    assert_eq!(full.exfil_sites_pct, none.exfil_sites_pct);
    assert_eq!(full.exfiltrated_pairs, none.exfiltrated_pairs);
    assert_eq!(guard.scripts_blocked, 0);
    assert!(guard.exfil_sites_pct < none.exfil_sites_pct / 2.0);
}

#[test]
fn blocklist_and_guard_compose() {
    // Defense in depth: prune listed trackers at load time AND isolate
    // the jar at access time. The composition must be at least as
    // strong as each layer alone on every metric.
    let gen = generator(240);
    let entities = builtin_entity_map();
    let blocker = BlocklistDefense::from_registry(gen.registry());

    let exfil_pct = |logs: Vec<cookieguard_repro::instrument::VisitLog>| {
        let ds = Dataset::from_logs(logs);
        let exfil = detect_exfiltration(&ds, &entities);
        100.0 * exfil.sites_with_cross_exfil_doc.len() as f64 / ds.site_count().max(1) as f64
    };

    let ranks = 1..=120;
    let plain: Vec<_> = ranks
        .clone()
        .map(|r| visit_site(&gen.blueprint(r), &VisitConfig::regular(), gen.site_seed(r)).log)
        .collect();
    let guard_only: Vec<_> = ranks
        .clone()
        .map(|r| {
            visit_site(
                &gen.blueprint(r),
                &VisitConfig::guarded(GuardConfig::strict()),
                gen.site_seed(r),
            )
            .log
        })
        .collect();
    let both: Vec<_> = ranks
        .clone()
        .map(|r| {
            let pruned = blocker.prune_site(&gen.blueprint(r)).0;
            visit_site(
                &pruned,
                &VisitConfig::guarded(GuardConfig::strict()),
                gen.site_seed(r),
            )
            .log
        })
        .collect();

    let p_plain = exfil_pct(plain);
    let p_guard = exfil_pct(guard_only);
    let p_both = exfil_pct(both);
    assert!(p_guard < p_plain);
    assert!(
        p_both <= p_guard + 1e-9,
        "stacking must not weaken the guard ({p_both:.1} vs {p_guard:.1})"
    );
}
