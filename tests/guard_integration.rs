//! CookieGuard enforcement through the full browser stack: the §7
//! evaluation properties at integration level.

use cookieguard_repro::analysis::{
    cross_domain_summary, detect_exfiltration, detect_manipulation, Dataset,
};
use cookieguard_repro::browser::{crawl_range, visit_site, VisitConfig};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn rates(sites: usize, guard: Option<GuardConfig>) -> (f64, f64, f64) {
    let gen = WebGenerator::new(GenConfig::small(sites), 0xC00C1E);
    let cfg = match guard {
        Some(g) => VisitConfig::guarded(g),
        None => VisitConfig::regular(),
    };
    let (outcomes, _) = crawl_range(&gen, &cfg, 1, sites, 4);
    let ds = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
    let entities = builtin_entity_map();
    let exfil = detect_exfiltration(&ds, &entities);
    let manip = detect_manipulation(&ds, &entities);
    let t1 = cross_domain_summary(&ds, &exfil, &manip);
    (
        t1.doc_exfiltration.sites_pct,
        t1.doc_overwriting.sites_pct,
        t1.doc_deleting.sites_pct,
    )
}

#[test]
fn guard_substantially_reduces_all_cross_domain_actions() {
    // The Figure 5 property: large reductions, but not to zero —
    // site-owner scripts retain full access by design (§6.1).
    let (ex0, ow0, del0) = rates(300, None);
    let (ex1, ow1, del1) = rates(300, Some(GuardConfig::strict()));
    assert!(ex1 < ex0 * 0.45, "exfiltration: {ex0:.1}% -> {ex1:.1}%");
    assert!(ow1 < ow0 * 0.45, "overwriting: {ow0:.1}% -> {ow1:.1}%");
    assert!(del1 <= del0, "deleting: {del0:.1}% -> {del1:.1}%");
    // Residual cross-domain activity exists (self-hosted trackers).
    assert!(
        ex1 > 0.0,
        "residual exfiltration expected (site-owner bypass)"
    );
}

#[test]
fn relaxed_inline_mode_is_weaker_than_strict() {
    let gen = WebGenerator::new(GenConfig::small(150), 11);
    let mut strict_filtered = 0u64;
    let mut relaxed_filtered = 0u64;
    for rank in 1..=150 {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank);
        if let Some(s) =
            visit_site(&bp, &VisitConfig::guarded(GuardConfig::strict()), seed).guard_stats
        {
            strict_filtered += s.cookies_filtered;
        }
        if let Some(s) =
            visit_site(&bp, &VisitConfig::guarded(GuardConfig::relaxed()), seed).guard_stats
        {
            relaxed_filtered += s.cookies_filtered;
        }
    }
    assert!(
        strict_filtered > relaxed_filtered,
        "strict ({strict_filtered}) must filter more than relaxed ({relaxed_filtered})"
    );
}

#[test]
fn entity_grouping_reduces_filtering_but_keeps_isolation() {
    let gen = WebGenerator::new(GenConfig::small(150), 13);
    let strict = GuardConfig::strict();
    let grouped = GuardConfig::strict().with_entity_grouping(builtin_entity_map());
    let mut f_strict = 0u64;
    let mut f_grouped = 0u64;
    for rank in 1..=150 {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank);
        f_strict += visit_site(&bp, &VisitConfig::guarded(strict.clone()), seed)
            .guard_stats
            .map(|s| s.cookies_filtered)
            .unwrap_or(0);
        f_grouped += visit_site(&bp, &VisitConfig::guarded(grouped.clone()), seed)
            .guard_stats
            .map(|s| s.cookies_filtered)
            .unwrap_or(0);
    }
    assert!(
        f_grouped <= f_strict,
        "grouping can only relax within entities"
    );
    assert!(f_grouped > 0, "grouping must still isolate across entities");
}

#[test]
fn guarded_visits_never_leak_foreign_cookies_to_third_party_readers() {
    // Strongest enforcement property, checked against raw logs: under
    // strict CookieGuard, every cookie a third-party reader receives was
    // created by that reader's own domain (site-owner reads excluded;
    // same-name recreations after an authorized delete excluded by
    // checking the guard's view, which the log reflects).
    let gen = WebGenerator::new(GenConfig::small(120), 17);
    for rank in 1..=120 {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let out = visit_site(
            &bp,
            &VisitConfig::guarded(GuardConfig::strict()),
            gen.site_seed(rank),
        );
        let site = out.spec.domain.clone();
        // Reconstruct the guard's ownership view: only *creations* assign
        // an owner (authorized overwrites keep the original creator, like
        // the metadata store); authorized deletes forget the name so a
        // later creation re-assigns. Log order is chronological.
        let mut owner: std::collections::HashMap<String, String> = std::collections::HashMap::new();
        for s in &out.log.sets {
            if s.blocked {
                continue;
            }
            let actor = s.actor.clone().unwrap_or_else(|| site.clone());
            match s.kind {
                cookieguard_repro::instrument::WriteKind::Create => {
                    owner.entry(s.name.clone()).or_insert(actor);
                }
                cookieguard_repro::instrument::WriteKind::Delete => {
                    owner.remove(&s.name);
                }
                cookieguard_repro::instrument::WriteKind::Overwrite => {}
            }
        }
        for read in &out.log.reads {
            let Some(actor) = &read.actor else { continue };
            if actor == &site {
                continue; // site owner may see everything
            }
            for (name, _) in &read.cookies {
                if let Some(creator) = owner.get(name) {
                    assert_eq!(
                        creator, actor,
                        "site {site} rank {rank}: {actor} read cookie {name} created by {creator}"
                    );
                }
            }
        }
    }
}
