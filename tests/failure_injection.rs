//! Failure injection and adversarial semantics: the stack must stay
//! sound when fed malformed inputs or actively hostile script behaviour.

use cookieguard_repro::browser::{visit_site, Page, VisitConfig};
use cookieguard_repro::cookieguard::{Caller, CookieGuard, GuardConfig};
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{CookieAttrs, EventLoop, ScriptOp, ValueSpec};
use cookieguard_repro::url::Url;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH: i64 = 1_750_000_000_000;

fn run_scripts(
    guard: Option<&mut CookieGuard>,
    server_cookies: &[String],
    scripts: Vec<(Option<&str>, Vec<ScriptOp>)>,
) -> (cookieguard_repro::instrument::VisitLog, CookieJar) {
    let url = Url::parse("https://www.site.com/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("site.com", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(url, EPOCH, &mut jar, guard, &mut recorder, &injectables, 7);
    page.apply_server_cookies(server_cookies);
    let mut el = EventLoop::new(EPOCH);
    for (i, (u, ops)) in scripts.into_iter().enumerate() {
        let exec = page.register_markup_script(u, ops);
        el.push_script(exec, i as u64 * 25);
    }
    let mut rng = StdRng::seed_from_u64(3);
    el.run(&mut page, &mut rng);
    (recorder.finish(), jar)
}

#[test]
fn malformed_server_headers_are_survivable() {
    // Garbage Set-Cookie headers: empty, separators only, control bytes,
    // truncated attributes, enormous names. Nothing may panic; malformed
    // entries are dropped, valid ones stored.
    let headers = vec![
        String::new(),
        ";;;;".to_string(),
        "=".to_string(),
        "\u{0}\u{1}\u{2}=\u{3}".to_string(),
        "ok=1; Max-Age=".to_string(),
        "ok2=2; Domain=".to_string(),
        format!("{}=v", "n".repeat(4096)),
        "trunc=v; Expires=Wed, 99 Xyz".to_string(),
    ];
    let (log, jar) = run_scripts(
        None,
        &headers,
        vec![(
            Some("https://www.site.com/a.js"),
            vec![ScriptOp::ReadAllCookies],
        )],
    );
    // The valid cookies made it; the page survived to run its script.
    assert!(
        jar.len() >= 2,
        "valid cookies should be stored, jar={}",
        jar.len()
    );
    assert_eq!(log.reads.len(), 1);
}

#[test]
fn runaway_change_listener_is_budgeted() {
    // A listener that re-sets on EVERY change to its own cookie feeds
    // itself forever. The op budget must end the loop; the harness must
    // not hang or panic.
    let url = Url::parse("https://www.site.com/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("site.com", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(url, EPOCH, &mut jar, None, &mut recorder, &injectables, 7);
    let mut el = EventLoop::new(EPOCH).with_max_ops(500);
    let exec = page.register_markup_script(
        Some("https://loop.evil/l.js"),
        vec![
            ScriptOp::OnCookieChange {
                watch: Some("self_feed".into()),
                deletions_only: false,
                ops: vec![ScriptOp::SetCookie {
                    name: "self_feed".into(),
                    value: ValueSpec::Short,
                    attrs: CookieAttrs::default(),
                }],
            },
            ScriptOp::SetCookie {
                name: "self_feed".into(),
                value: ValueSpec::Short,
                attrs: CookieAttrs::default(),
            },
        ],
    );
    el.push_script(exec, 0);
    let mut rng = StdRng::seed_from_u64(3);
    let stats = el.run(&mut page, &mut rng);
    assert!(
        stats.truncated,
        "the self-feeding listener must hit the budget"
    );
    assert!(stats.ops_run <= 500);
}

#[test]
fn name_squatting_is_first_writer_wins() {
    // Adversarial consequence of ownership-by-first-write: a squatter
    // claiming "_ga" before the analytics vendor locks the vendor out.
    // This is CookieGuard's documented semantics — the squatter gains
    // nothing (it owns a cookie the victim simply re-creates under
    // another name in practice), but the test pins the behaviour.
    let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
    assert!(guard
        .authorize_write(&Caller::external("squatter.evil"), "_ga")
        .is_allow());
    assert!(!guard
        .authorize_write(&Caller::external("googletagmanager.com"), "_ga")
        .is_allow());
    assert_eq!(guard.metadata().creator("_ga"), Some("squatter.evil"));
    // The squatter cannot, however, see anyone else's cookies…
    assert!(guard
        .filter_names(&Caller::external("squatter.evil"), &["other"])
        .is_empty());
    // …and the site owner can always delete the squatted name.
    assert!(guard
        .authorize_delete(&Caller::external("site.com"), "_ga")
        .is_allow());
    // After which the legitimate vendor re-claims it.
    assert!(guard
        .authorize_write(&Caller::external("googletagmanager.com"), "_ga")
        .is_allow());
}

#[test]
fn blind_overwrite_flood_is_fully_blocked_and_counted() {
    let mut guard = CookieGuard::new(GuardConfig::strict(), "site.com");
    let (log, _) = run_scripts(
        Some(&mut guard),
        &["session_id=abc; Path=/".to_string()],
        vec![
            (
                Some("https://owner.net/o.js"),
                vec![ScriptOp::SetCookie {
                    name: "target".into(),
                    value: ValueSpec::HexId(16),
                    attrs: CookieAttrs::default(),
                }],
            ),
            (
                Some("https://flood.evil/f.js"),
                (0..25)
                    .map(|_| ScriptOp::OverwriteCookie {
                        target: "target".into(),
                        value: ValueSpec::HexId(24),
                        changes: cookieguard_repro::script::AttrChanges::value_and_expiry(),
                        blind: true,
                    })
                    .collect(),
            ),
        ],
    );
    let blocked = log.sets.iter().filter(|s| s.blocked).count();
    assert_eq!(blocked, 25, "every blind overwrite must be blocked");
    assert_eq!(guard.stats().writes_blocked, 25);
    // Ownership never moved.
    assert_eq!(guard.metadata().creator("target"), Some("owner.net"));
}

#[test]
fn crawl_failures_do_not_poison_aggregates() {
    // Sites whose crawl failed must contribute nothing: no events, no
    // cookies, excluded from the dataset — even under guard configs.
    let gen = WebGenerator::new(GenConfig::small(120), 0xFA11);
    let mut failed = 0;
    for rank in 1..=120 {
        let bp = gen.blueprint(rank);
        if bp.spec.crawl_ok {
            continue;
        }
        failed += 1;
        let out = visit_site(&bp, &VisitConfig::guarded(GuardConfig::strict()), 1);
        assert!(!out.log.complete);
        assert!(out.log.sets.is_empty());
        assert!(out.log.requests.is_empty());
        assert_eq!(out.final_jar_size, 0);
    }
    assert!(
        failed > 10,
        "expected crawl failures in 120 sites, got {failed}"
    );
}

#[test]
fn http_scheme_disables_cookie_store_and_change_events() {
    // CookieStore requires a secure context; on http the API is inert
    // and change listeners never fire, but document.cookie still works.
    let url = Url::parse("http://www.plain.com/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("plain.com", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(url, EPOCH, &mut jar, None, &mut recorder, &injectables, 7);
    let mut el = EventLoop::new(EPOCH);
    let exec = page.register_markup_script(
        Some("http://t.plain.com/t.js"),
        vec![
            ScriptOp::OnCookieChange {
                watch: None,
                deletions_only: false,
                ops: vec![ScriptOp::SetCookie {
                    name: "fired".into(),
                    value: ValueSpec::Short,
                    attrs: CookieAttrs::default(),
                }],
            },
            ScriptOp::CookieStoreSet {
                name: "via_store".into(),
                value: ValueSpec::Short,
                expires_in_ms: None,
            },
            ScriptOp::SetCookie {
                name: "via_doc".into(),
                value: ValueSpec::Short,
                attrs: CookieAttrs::default(),
            },
        ],
    );
    el.push_script(exec, 0);
    let mut rng = StdRng::seed_from_u64(3);
    let stats = el.run(&mut page, &mut rng);
    assert_eq!(stats.change_events_fired, 0, "no change events on http");
    let u = Url::parse("http://www.plain.com/").unwrap();
    let s = jar.document_cookie(&u, EPOCH + 1_000);
    assert!(
        s.contains("via_doc"),
        "document.cookie must work on http: {s}"
    );
    assert!(
        !s.contains("via_store"),
        "cookieStore.set must be inert on http: {s}"
    );
    assert!(!s.contains("fired"));
}
