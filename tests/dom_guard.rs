//! DOM isolation (§8 future work) through the full stack: the DomGuard
//! blocks cross-domain element mutations the pilot measured, while
//! leaving own-element and site-owner activity untouched.

use cookieguard_repro::analysis::{dom_pilot_stats, Dataset};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::domguard::DomGuardConfig;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn pilot(
    n: usize,
    dom: Option<DomGuardConfig>,
) -> cookieguard_repro::analysis::dom_pilot::DomPilotStats {
    let gen = WebGenerator::new(GenConfig::small(n), 0xC00C1E);
    let cfg = match dom {
        Some(d) => VisitConfig::regular().with_dom_guard(d),
        None => VisitConfig::regular(),
    };
    let (outcomes, _) = crawl_range(&gen, &cfg, 1, n, 4);
    dom_pilot_stats(&Dataset::from_logs(
        outcomes.into_iter().map(|o| o.log).collect(),
    ))
}

#[test]
fn unguarded_pilot_reproduces_the_section8_signal() {
    let stats = pilot(600, None);
    // Paper pilot: 9.4% of sites show cross-domain DOM modification. The
    // synthetic ecosystem lands in the mid-teens under the vendored RNG
    // stream; the claim under test is "present, but on a clear minority
    // of sites".
    assert!(
        (4.0..=22.0).contains(&stats.sites_with_cross_dom_pct),
        "pilot share {:.1}% out of band",
        stats.sites_with_cross_dom_pct
    );
    assert_eq!(
        stats.blocked_events, 0,
        "nothing blocks in an unguarded crawl"
    );
}

#[test]
fn strict_domguard_blocks_the_cross_domain_mutations() {
    let unguarded = pilot(600, None);
    let guarded = pilot(600, Some(DomGuardConfig::strict()));
    assert!(
        guarded.sites_with_cross_dom_pct < unguarded.sites_with_cross_dom_pct * 0.3,
        "guard too weak: {:.1}% -> {:.1}%",
        unguarded.sites_with_cross_dom_pct,
        guarded.sites_with_cross_dom_pct
    );
    assert!(
        guarded.blocked_events > 0,
        "the guard must actually block events"
    );
    assert!(guarded.sites_fully_protected_pct > 0.0);
}

#[test]
fn kind_scoped_enforcement_is_a_middle_ground() {
    // Enforcing only content/removal lets style/attribute tweaks through:
    // strictly more applied cross-domain events than full enforcement,
    // strictly fewer than no guard (given enough sites).
    let full = pilot(400, Some(DomGuardConfig::strict()));
    let scoped = pilot(400, Some(DomGuardConfig::content_and_removal()));
    let none = pilot(400, None);
    assert!(scoped.events >= full.events);
    assert!(scoped.events <= none.events);
}

#[test]
fn domguard_composes_with_cookieguard() {
    // Both guards attached: cookie isolation and DOM isolation act on
    // independent channels without interfering.
    let gen = WebGenerator::new(GenConfig::small(300), 0xC00C1E);
    let cfg = VisitConfig::guarded(cookieguard_repro::cookieguard::GuardConfig::strict())
        .with_dom_guard(DomGuardConfig::strict());
    let (outcomes, _) = crawl_range(&gen, &cfg, 1, 300, 4);
    let mut cookie_filtered = 0u64;
    let mut dom_blocked = 0u64;
    for o in &outcomes {
        cookie_filtered += o.guard_stats.map_or(0, |s| s.cookies_filtered);
        dom_blocked += o.dom_guard_stats.map_or(0, |s| s.blocked);
    }
    assert!(cookie_filtered > 0, "CookieGuard inactive");
    assert!(dom_blocked > 0, "DomGuard inactive");
}
