//! §8 staged deployment through the full stack: grandfathering for
//! returning visitors, preset ordering, and ladder monotonicity.

use cookieguard_repro::browser::{visit_site, visit_site_with_jar, VisitConfig};
use cookieguard_repro::cookieguard::{DeploymentStage, GuardConfig, PrivacyPreset};
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn generator(n: usize) -> WebGenerator {
    WebGenerator::new(GenConfig::small(n), 0xC00C1E)
}

#[test]
fn returning_visitor_keeps_legacy_visibility_under_grandfathering() {
    let gen = generator(200);
    let mut with_total = 0u64;
    let mut without_total = 0u64;
    let mut sites = 0;
    for rank in 1..=200 {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank);
        let mut jar = CookieJar::new();
        visit_site_with_jar(&bp, &VisitConfig::regular(), seed, &mut jar);
        if jar.is_empty() {
            continue;
        }
        let plain = VisitConfig::guarded(GuardConfig::strict());
        let grandfathered = VisitConfig {
            grandfather_preexisting: true,
            ..plain.clone()
        };
        let mut jar_a = jar.clone();
        let mut jar_b = jar;
        let a = visit_site_with_jar(&bp, &plain, seed, &mut jar_a);
        let b = visit_site_with_jar(&bp, &grandfathered, seed, &mut jar_b);
        without_total += a.guard_stats.unwrap().cookies_filtered;
        with_total += b.guard_stats.unwrap().cookies_filtered;
        sites += 1;
    }
    assert!(sites > 50, "too few returning-visitor sites ({sites})");
    assert!(
        without_total > 0,
        "strict guard must filter something on return visits"
    );
    assert!(
        with_total < without_total,
        "grandfathering must reduce filtering: {with_total} vs {without_total}"
    );
}

#[test]
fn grandfathering_is_transitional_not_permanent() {
    // Once a tracker re-sets its grandfathered cookie, ownership is
    // relearned and isolation applies again: a third visit filters more
    // than the grandfathered second visit allowed through.
    let gen = generator(300);
    for rank in 1..=300 {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let seed = gen.site_seed(rank);
        let mut jar = CookieJar::new();
        visit_site_with_jar(&bp, &VisitConfig::regular(), seed, &mut jar);
        if jar.is_empty() {
            continue;
        }
        let gf = VisitConfig {
            grandfather_preexisting: true,
            ..VisitConfig::guarded(GuardConfig::strict())
        };
        // Second visit: grandfathered; writes relearn ownership. The
        // guard is per-visit state, so the third visit demonstrates the
        // steady state: fresh guard, same jar, cookies now relearnable
        // only through their creators' writes.
        let second = visit_site_with_jar(&bp, &gf, seed, &mut jar);
        let strict = VisitConfig::guarded(GuardConfig::strict());
        let third = visit_site_with_jar(&bp, &strict, seed, &mut jar);
        if let (Some(s2), Some(s3)) = (second.guard_stats, third.guard_stats) {
            if s3.cookies_filtered > s2.cookies_filtered {
                return; // found a site where isolation re-tightened
            }
        }
    }
    panic!("no site showed the grandfathering → steady-state transition");
}

#[test]
fn presets_order_protection_and_compatibility() {
    // Permissive filters the least; strict filters the most.
    let gen = generator(200);
    let entities = cookieguard_repro::entity::builtin_entity_map();
    let mut filtered = Vec::new();
    for preset in PrivacyPreset::all() {
        let cfg = VisitConfig::guarded(preset.config(&entities));
        let mut total = 0u64;
        for rank in 1..=200 {
            let bp = gen.blueprint(rank);
            if !bp.spec.crawl_ok {
                continue;
            }
            let out = visit_site(&bp, &cfg, gen.site_seed(rank));
            total += out.guard_stats.unwrap().cookies_filtered;
        }
        filtered.push((preset.label(), total));
    }
    let get = |label: &str| filtered.iter().find(|(l, _)| *l == label).unwrap().1;
    assert!(get("permissive") <= get("balanced"), "{filtered:?}");
    assert!(get("balanced") <= get("strict"), "{filtered:?}");
}

#[test]
fn ladder_protection_shares_are_monotone() {
    let shares: Vec<f64> = DeploymentStage::ladder()
        .iter()
        .map(|s| s.guarded_share())
        .collect();
    assert_eq!(shares.first(), Some(&0.0));
    assert_eq!(shares.last(), Some(&1.0));
    for w in shares.windows(2) {
        assert!(w[0] <= w[1]);
    }
}
