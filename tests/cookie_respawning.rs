//! Cookie respawning through the full stack: a tracker's CookieStore
//! `change` listener re-sets its identifier the moment a consent manager
//! deletes it — and CookieGuard dismantles the whole dance, because the
//! cross-domain deletion is blocked and foreign changes are invisible.

use cookieguard_repro::browser::{crawl_range, visit_site, VisitConfig};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::instrument::WriteKind;
use cookieguard_repro::webgen::{GenConfig, SiteBlueprint, WebGenerator};

fn generator(n: usize) -> WebGenerator {
    WebGenerator::new(GenConfig::small(n), 0xC00C1E)
}

/// Finds a crawlable site with a designated respawning tracker whose
/// deletion trigger actually fires during the visit.
fn respawning_site(gen: &WebGenerator, n: usize) -> Option<(SiteBlueprint, String, String)> {
    for rank in 1..=n {
        let bp = gen.blueprint(rank);
        if !bp.spec.crawl_ok {
            continue;
        }
        let Some((domain, cookie)) = bp.spec.respawning_tracker.clone() else {
            continue;
        };
        let out = visit_site(&bp, &VisitConfig::regular(), gen.site_seed(rank));
        let deleted = out.log.sets.iter().any(|s| {
            s.kind == WriteKind::Delete && s.name == cookie && s.actor.as_deref() != Some(&domain)
        });
        if deleted {
            return Some((bp, domain, cookie));
        }
    }
    None
}

#[test]
fn respawner_survives_consent_deletion_in_regular_browser() {
    let gen = generator(600);
    let (bp, tracker, cookie) =
        respawning_site(&gen, 600).expect("no respawning site with a firing deletion in 600 sites");
    let out = visit_site(&bp, &VisitConfig::regular(), gen.site_seed(bp.spec.rank));

    // The deletion happened…
    let delete_at = out
        .log
        .sets
        .iter()
        .find(|s| s.kind == WriteKind::Delete && s.name == cookie)
        .map(|s| s.time_ms)
        .expect("deletion event");
    // …and the tracker re-set its identifier afterwards.
    let respawn = out.log.sets.iter().find(|s| {
        s.kind == WriteKind::Create
            && s.name == cookie
            && s.actor.as_deref() == Some(tracker.as_str())
            && s.time_ms >= delete_at
    });
    assert!(
        respawn.is_some(),
        "expected {tracker} to respawn {cookie} after {delete_at}ms"
    );
}

#[test]
fn guard_prevents_both_deletion_and_respawn_trigger() {
    let gen = generator(600);
    let (bp, _, cookie) =
        respawning_site(&gen, 600).expect("no respawning site with a firing deletion in 600 sites");
    let out = visit_site(
        &bp,
        &VisitConfig::guarded(GuardConfig::strict()),
        gen.site_seed(bp.spec.rank),
    );

    // The consent manager's cross-domain deletion is blocked…
    let blocked_delete = out
        .log
        .sets
        .iter()
        .any(|s| s.kind == WriteKind::Delete && s.name == cookie && s.blocked);
    // …so the respawn listener never fires: at most the initial create
    // exists for this cookie from the tracker.
    let creates = out
        .log
        .sets
        .iter()
        .filter(|s| s.kind == WriteKind::Create && s.name == cookie && !s.blocked)
        .count();
    assert!(
        blocked_delete,
        "cross-domain deletion should be blocked under the guard"
    );
    assert!(
        creates <= 1,
        "respawn should not fire under the guard (creates={creates})"
    );
}

#[test]
fn respawning_sites_exist_at_ecosystem_scale() {
    // The generator plants respawners on a meaningful fraction of
    // consent-managed sites; the crawl must surface them.
    let gen = generator(500);
    let (outcomes, _) = crawl_range(&gen, &VisitConfig::regular(), 1, 500, 4);
    let with_respawner = outcomes
        .iter()
        .filter(|o| o.spec.respawning_tracker.is_some() && o.log.complete)
        .count();
    assert!(
        with_respawner >= 3,
        "only {with_respawner} respawning sites in 500"
    );
}
