//! End-to-end integration: generator → browser → instrumentation →
//! analysis, across crate boundaries.

use cookieguard_repro::analysis::{
    cross_domain_summary, detect_exfiltration, detect_manipulation, Dataset,
};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn crawl(sites: usize, seed: u64, threads: usize) -> Dataset {
    let gen = WebGenerator::new(GenConfig::small(sites), seed);
    let (outcomes, _) = crawl_range(&gen, &VisitConfig::regular(), 1, sites, threads);
    Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect())
}

#[test]
fn crawl_is_deterministic_across_runs_and_threads() {
    let a = crawl(80, 42, 1);
    let b = crawl(80, 42, 4);
    assert_eq!(a.site_count(), b.site_count());
    for (la, lb) in a.logs.iter().zip(&b.logs) {
        assert_eq!(la.site_domain, lb.site_domain);
        assert_eq!(la.sets, lb.sets);
        assert_eq!(la.requests, lb.requests);
        assert_eq!(la.probes, lb.probes);
    }
}

#[test]
fn different_seeds_produce_different_webs() {
    let a = crawl(40, 1, 2);
    let b = crawl(40, 2, 2);
    let domains_a: Vec<&str> = a.logs.iter().map(|l| l.site_domain.as_str()).collect();
    let domains_b: Vec<&str> = b.logs.iter().map(|l| l.site_domain.as_str()).collect();
    assert_ne!(domains_a, domains_b);
}

#[test]
fn analysis_pipeline_produces_consistent_table1() {
    let ds = crawl(250, 0xC00C1E, 4);
    let entities = builtin_entity_map();
    let exfil = detect_exfiltration(&ds, &entities);
    let manip = detect_manipulation(&ds, &entities);
    let t1 = cross_domain_summary(&ds, &exfil, &manip);

    // Percentages are well-formed.
    for row in [&t1.doc_exfiltration, &t1.doc_overwriting, &t1.doc_deleting] {
        assert!((0.0..=100.0).contains(&row.sites_pct));
        assert!((0.0..=100.0).contains(&row.cookies_pct));
        assert!(row.cookies_count <= t1.doc_pairs_total);
    }
    // The paper's ordering: exfiltration > overwriting > deleting.
    assert!(t1.doc_exfiltration.sites_pct > t1.doc_overwriting.sites_pct);
    assert!(t1.doc_overwriting.sites_pct > t1.doc_deleting.sites_pct);
    // All three actions must actually occur at this scale.
    assert!(t1.doc_deleting.sites_pct > 0.0);
}

#[test]
fn exfiltrated_pairs_subset_of_all_pairs() {
    let ds = crawl(150, 7, 4);
    let entities = builtin_entity_map();
    let exfil = detect_exfiltration(&ds, &entities);
    let all_doc = ds.unique_pairs(cookieguard_repro::instrument::CookieApi::DocumentCookie);
    let all_http = ds.unique_pairs(cookieguard_repro::instrument::CookieApi::HttpHeader);
    for pair in &exfil.cross_exfiltrated_pairs_doc {
        assert!(
            all_doc.contains(pair) || all_http.contains(pair),
            "exfiltrated pair {pair:?} not in dataset"
        );
    }
}

#[test]
fn incomplete_visits_are_excluded_from_analysis() {
    let gen = WebGenerator::new(GenConfig::small(120), 3);
    let (outcomes, summary) = crawl_range(&gen, &VisitConfig::regular(), 1, 120, 2);
    assert!(summary.complete < summary.visited);
    let ds = Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect());
    assert_eq!(ds.site_count(), summary.complete);
    assert_eq!(ds.crawled, 120);
}
