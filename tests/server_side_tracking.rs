//! §5.7 end-to-end: first-party server-side gateways relay the cookie
//! jar to trackers outside any client-side defense's reach.

use cookieguard_repro::analysis::{detect_server_side, Dataset, ForwardMap};
use cookieguard_repro::browser::{crawl_range, VisitConfig};
use cookieguard_repro::cookieguard::GuardConfig;
use cookieguard_repro::webgen::{GenConfig, WebGenerator};

fn crawl(n: usize, guard: Option<GuardConfig>) -> (Dataset, ForwardMap, usize) {
    let gen = WebGenerator::new(GenConfig::small(n), 0xC00C1E);
    let cfg = match guard {
        Some(g) => VisitConfig::guarded(g),
        None => VisitConfig::regular(),
    };
    let (outcomes, _) = crawl_range(&gen, &cfg, 1, n, 4);
    let mut forwards = ForwardMap::new();
    let mut sst_sites = 0;
    for o in &outcomes {
        if !o.spec.server_forwards.is_empty() {
            sst_sites += 1;
            forwards.insert(
                o.spec.domain.clone(),
                o.spec
                    .server_forwards
                    .iter()
                    .map(|f| (f.path_prefix.clone(), f.forwards_to.clone()))
                    .collect(),
            );
        }
    }
    (
        Dataset::from_logs(outcomes.into_iter().map(|o| o.log).collect()),
        forwards,
        sst_sites,
    )
}

#[test]
fn gateways_relay_foreign_cookies_server_side() {
    let (ds, forwards, sst_sites) = crawl(500, None);
    assert!(
        sst_sites >= 15,
        "expected server-side tagging adopters, got {sst_sites}"
    );
    let report = detect_server_side(&ds, &forwards);
    assert!(report.sites_with_gateway > 0);
    assert!(report.gateway_requests > 0);
    assert!(
        report.sites_with_server_relay > 0,
        "server-side relays must carry cross-domain cookies: {report:?}"
    );
    assert!(
        report.requests_with_header_payload > 0,
        "Cookie header must ride gateway requests"
    );
}

#[test]
fn first_party_gateway_requests_invisible_to_client_side_exfil_detection() {
    let (ds, forwards, _) = crawl(500, None);
    let entities = cookieguard_repro::entity::builtin_entity_map();
    let exfil = cookieguard_repro::analysis::detect_exfiltration(&ds, &entities);
    // No client-side exfiltration event points at the site's own domain:
    // the §4.4 pipeline (faithfully) treats first-party requests as benign.
    for e in &exfil.events {
        assert!(
            !forwards.contains_key(&e.destination) || e.site != e.destination,
            "gateway request misclassified as client-side exfiltration: {e:?}"
        );
    }
    // Yet the ground-truth relay resolution finds the leak.
    let report = detect_server_side(&ds, &forwards);
    assert!(report.cross_domain_cookies_relayed > 0);
}

#[test]
fn guard_does_not_stop_server_side_relay() {
    let (ds0, fw0, _) = crawl(500, None);
    let (ds1, fw1, _) = crawl(500, Some(GuardConfig::strict()));
    let before = detect_server_side(&ds0, &fw0);
    let after = detect_server_side(&ds1, &fw1);
    // The sGTM collector is site-owned: the guard hands it the full jar,
    // and the Cookie header is attached below the script layer entirely.
    assert!(
        after.sites_with_server_relay as f64 >= before.sites_with_server_relay as f64 * 0.8,
        "guard should NOT meaningfully reduce server-side relay: {} -> {}",
        before.sites_with_server_relay,
        after.sites_with_server_relay
    );
    assert!(after.requests_with_header_payload > 0);
}

#[test]
fn capi_gateway_payload_shrinks_under_guard_but_header_does_not() {
    // The third-party CAPI pixel posts to the first-party gateway. Under
    // the guard its script-visible jar shrinks to its own cookies, so its
    // query payload shrinks — but the browser-attached Cookie header is
    // untouched. Find paired requests and compare.
    let gen = WebGenerator::new(GenConfig::small(600), 0xC00C1E);
    let find_capi = |guard: Option<GuardConfig>| {
        let cfg = match guard {
            Some(g) => VisitConfig::guarded(g),
            None => VisitConfig::regular(),
        };
        let (outcomes, _) = crawl_range(&gen, &cfg, 1, 600, 4);
        outcomes
            .into_iter()
            .flat_map(|o| o.log.requests)
            .filter(|r| r.url.contains("/capi-events"))
            .collect::<Vec<_>>()
    };
    let regular = find_capi(None);
    let guarded = find_capi(Some(GuardConfig::strict()));
    assert!(!regular.is_empty(), "expected CAPI gateway traffic");
    assert!(
        !guarded.is_empty(),
        "CAPI gateway traffic must survive the guard"
    );
    // Headers ride in both conditions.
    assert!(guarded.iter().any(|r| r.cookie_header.is_some()));
    // The guarded query payloads never contain more parameters than the
    // regular ones' maximum (the pixel lost its view of foreign cookies).
    let params = |url: &str| {
        url.split_once('?')
            .map(|(_, q)| q.split('&').count())
            .unwrap_or(0)
    };
    let max_regular = regular.iter().map(|r| params(&r.url)).max().unwrap();
    let max_guarded = guarded.iter().map(|r| params(&r.url)).max().unwrap();
    assert!(
        max_guarded <= max_regular,
        "guarded CAPI payload should not exceed regular ({max_guarded} > {max_regular})"
    );
}
