//! The §4.4 exfiltration-detection pipeline, end to end through the real
//! browser: every encoding path, the attribution-loss limitation, and
//! the consent-signal flag case.

use cookieguard_repro::analysis::{detect_exfiltration, Dataset};
use cookieguard_repro::browser::Page;
use cookieguard_repro::cookiejar::CookieJar;
use cookieguard_repro::entity::builtin_entity_map;
use cookieguard_repro::instrument::Recorder;
use cookieguard_repro::script::{
    CookieAttrs, CookieSelection, Encoding, EventLoop, ScriptOp, SegmentPolicy, ValueSpec,
};
use cookieguard_repro::url::Url;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const EPOCH: i64 = 1_750_000_000_000;

fn run(scripts: Vec<(&str, Vec<ScriptOp>)>) -> Dataset {
    let url = Url::parse("https://www.site.example/").unwrap();
    let mut jar = CookieJar::new();
    let mut recorder = Recorder::new("site.example", 1);
    let injectables = HashMap::new();
    let mut page = Page::new(url, EPOCH, &mut jar, None, &mut recorder, &injectables, 3);
    let mut el = EventLoop::new(EPOCH);
    for (i, (u, ops)) in scripts.into_iter().enumerate() {
        let exec = page.register_markup_script(Some(u), ops);
        el.push_script(exec, i as u64 * 20);
    }
    let mut rng = StdRng::seed_from_u64(9);
    el.run(&mut page, &mut rng);
    Dataset::from_logs(vec![recorder.finish()])
}

fn exfil_op(names: &[&str], seg: SegmentPolicy, enc: Encoding) -> ScriptOp {
    ScriptOp::Exfiltrate {
        dest_host: "sink.collector.example".into(),
        path: "/c".into(),
        selection: CookieSelection::Named(names.iter().map(|s| s.to_string()).collect()),
        segment: seg,
        encoding: enc,
        kind: cookieguard_repro::http::RequestKind::Image,
        via_store: false,
    }
}

#[test]
fn all_four_encodings_are_detected() {
    for enc in [
        Encoding::Plain,
        Encoding::Base64,
        Encoding::Md5,
        Encoding::Sha1,
    ] {
        let ds = run(vec![
            (
                "https://owner.tracker.example/set.js",
                vec![ScriptOp::SetCookie {
                    name: "uid".into(),
                    value: ValueSpec::Fixed("user98765432".into()),
                    attrs: CookieAttrs::default(),
                }],
            ),
            (
                "https://grabber.other.example/grab.js",
                vec![exfil_op(&["uid"], SegmentPolicy::LongestSegment, enc)],
            ),
        ]);
        let analysis = detect_exfiltration(&ds, &builtin_entity_map());
        assert!(
            analysis
                .events
                .iter()
                .any(|e| e.cross_domain && e.pair.name == "uid"),
            "encoding {enc:?} must be detected"
        );
    }
}

#[test]
fn short_values_are_never_flagged() {
    // Values under the 8-character candidate threshold cannot be
    // identifiers per §4.4.
    let ds = run(vec![
        (
            "https://owner.tracker.example/set.js",
            vec![ScriptOp::SetCookie {
                name: "flag".into(),
                value: ValueSpec::Fixed("on".into()),
                attrs: CookieAttrs::default(),
            }],
        ),
        (
            "https://grabber.other.example/grab.js",
            vec![exfil_op(&["flag"], SegmentPolicy::Full, Encoding::Plain)],
        ),
    ]);
    let analysis = detect_exfiltration(&ds, &builtin_entity_map());
    assert!(analysis.events.is_empty(), "short values must not match");
}

#[test]
fn async_attribution_loss_hides_the_exfiltrator() {
    // §8: a deferred callback with a lost stack cannot be attributed, so
    // the request has no initiator and the event is not counted.
    let ds = run(vec![
        (
            "https://owner.tracker.example/set.js",
            vec![ScriptOp::SetCookie {
                name: "uid".into(),
                value: ValueSpec::Fixed("user98765432".into()),
                attrs: CookieAttrs::default(),
            }],
        ),
        (
            "https://grabber.other.example/grab.js",
            vec![ScriptOp::Defer {
                delay_ms: 100,
                ops: vec![exfil_op(&["uid"], SegmentPolicy::Full, Encoding::Plain)],
                lose_attribution: true,
            }],
        ),
    ]);
    let analysis = detect_exfiltration(&ds, &builtin_entity_map());
    assert!(
        analysis.events.is_empty(),
        "unattributable requests fall outside per-script analysis (the paper's limitation)"
    );
    // …but the request itself was observed.
    assert!(ds.logs[0]
        .requests
        .iter()
        .any(|r| r.initiator.is_none() && r.url.contains("user98765432")));
}

#[test]
fn us_privacy_consent_signal_flows_but_is_short() {
    // The IAB us_privacy string ("1YNN") is intended to be read
    // cross-domain; its value is below the identifier threshold, so it
    // never appears as identifier exfiltration — matching the paper's
    // "consent signal, not tracking identifier" discussion.
    let ds = run(vec![
        (
            "https://cdn.ketchjs.example/boot.js",
            vec![ScriptOp::SetCookie {
                name: "us_privacy".into(),
                value: ValueSpec::UsPrivacy,
                attrs: CookieAttrs::default(),
            }],
        ),
        (
            "https://ads.exchange.example/bid.js",
            vec![exfil_op(
                &["us_privacy"],
                SegmentPolicy::Full,
                Encoding::Plain,
            )],
        ),
    ]);
    let analysis = detect_exfiltration(&ds, &builtin_entity_map());
    assert!(analysis.events.is_empty());
    assert!(ds.logs[0]
        .requests
        .iter()
        .any(|r| r.url.contains("us_privacy=1YNN")));
}

#[test]
fn same_entity_cross_domain_still_counts() {
    // §2.1: the unit is the eTLD+1, not the organization — Google
    // exfiltrating a cookie set by googletagmanager.com from a
    // google-analytics.com script is still cross-domain.
    let ds = run(vec![
        (
            "https://www.googletagmanager.com/gtm.js",
            vec![ScriptOp::SetCookie {
                name: "_ga".into(),
                value: ValueSpec::Fixed("GA1.1.444332364.1746838827".into()),
                attrs: CookieAttrs::default(),
            }],
        ),
        (
            "https://www.google-analytics.com/analytics.js",
            vec![exfil_op(&["_ga"], SegmentPolicy::Full, Encoding::Plain)],
        ),
    ]);
    let analysis = detect_exfiltration(&ds, &builtin_entity_map());
    let ev = analysis
        .events
        .iter()
        .find(|e| e.cross_domain)
        .expect("must be detected");
    assert_eq!(ev.exfiltrator, "google-analytics.com");
    assert_eq!(ev.pair.owner, "googletagmanager.com");
    // But Table 2 excludes the owner's own entity from exfiltrator counts.
    let rows = analysis.table2(5);
    assert_eq!(
        rows[0].exfiltrator_entities, 0,
        "Google excluded from its own cookie's count"
    );
    assert_eq!(rows[0].destination_entities, 1);
}
